"""State guards: per-element injection + detection, and the scrubber.

One :class:`StateFaultPlan` owns the spec and the shared stats; each
protected element gets a *guard* wired between the element and the
:class:`~repro.faults.mcu.MachineCheckUnit`:

* :class:`RamGuard` — the register file and flag file, on top of the
  generic :class:`repro.hdl.memory.Protected` shadow (write-indexed
  fates, read-time SECDED check);
* :class:`LockGuard` — the lock-manager scoreboard (update-indexed
  fates on the two lock masks, checked at every scoreboard query);
* :class:`FutableGuard` — the functional-unit table's config bits
  (dispatch-indexed fates; every table consultation re-validates the
  rows against a golden copy before use, like inline config-ROM ECC);
* :class:`ArrayGuard` — smart-memory cell payloads (command-indexed
  fates, applied identically to vector, structural and compiled
  executions; the fold tree's inline ECC corrects singles and raises
  doubles).

:class:`StateScrubber` walks the RAM/scoreboard slots in the background,
repairing latent single-bit upsets before a functional read meets them.
It is wheel-compatible: while nothing is tainted its cycles are pure
aging (``skip`` batches the epoch count), so fault-free protected runs
keep the full fast-forward speedup.
"""

from __future__ import annotations

import dataclasses
import random
import zlib
from dataclasses import replace as dc_replace
from typing import Callable, Optional

from ..fu.protocol import WriteSpace
from ..hdl import Component, Protected
from ..hdl.signal import _UNSET
from .mcu import MachineCheckUnit
from .spec import _SEED_STRIDE, StateFaultSpec, StateFaultStats


def _syndrome_of(fate: tuple) -> int:
    """Pack a fate's bit positions the way the wire syndrome does."""
    if fate[0] == "flip":
        return fate[1] & 0xFF
    if fate[0] == "double":
        lo, hi = sorted(fate[1:3])
        return ((hi & 0xFF) << 8) | (lo & 0xFF)
    return 0


def _xor_of(fate: tuple) -> int:
    if fate[0] == "flip":
        return 1 << fate[1]
    if fate[0] == "double":
        return (1 << fate[1]) | (1 << fate[2])
    return 0


class StateFaultPlan:
    """The state-fault domain of one system: spec + stats + guard registry.

    ``spec=None`` means protection without injection (``state_protection=
    True``): all the shadows, scrubbing and machine-check machinery are
    live, but every fate is clean.
    """

    def __init__(self, spec: Optional[StateFaultSpec] = None):
        self.spec = spec
        self.stats = StateFaultStats()
        self._clock: Optional[Callable[[], int]] = None
        self._guards: list = []

    def bind_clock(self, fn: Callable[[], int]) -> None:
        """Bind the simulator's cycle counter (for latency accounting)."""
        self._clock = fn

    def now(self) -> int:
        return self._clock() if self._clock is not None else 0

    def register(self, guard) -> None:
        self._guards.append(guard)

    @property
    def guards(self) -> list:
        return list(self._guards)

    def fate(self, element_id: str, index: int, width: int) -> tuple:
        if self.spec is None:
            return ("ok",)
        return self.spec.fate(element_id, index, width)

    def placement_rng(self, element_id: str, index: int) -> random.Random:
        """Deterministic auxiliary RNG for where an upset lands."""
        seed = self.spec.seed if self.spec is not None else 0
        return random.Random(
            (seed * _SEED_STRIDE + zlib.crc32(f"{element_id}/placement".encode()))
            * _SEED_STRIDE
            + index
        )

    @property
    def tainted(self) -> bool:
        """Any guard holds a latent (injected, not yet resolved) upset."""
        return any(g.tainted for g in self._guards)


class RamGuard(Protected):
    """ECC shadow over a :class:`~repro.hdl.SyncRam`, wired to the plan/MCU."""

    def __init__(self, element_id: str, ram, plan: StateFaultPlan, mcu: MachineCheckUnit):
        super().__init__(ram)
        self.element_id = element_id
        self.plan = plan
        self.mcu = mcu
        self.code = mcu.register_guard(self)
        plan.register(self)

    # -- Protected overrides --------------------------------------------------------

    def fate(self, index: int, width: int) -> tuple:
        return self.plan.fate(self.element_id, index, width)

    def report(self, addr: int, syndrome: int) -> None:
        self.mcu.raise_check(self, addr, syndrome)

    def now(self) -> int:
        return self.plan.now()

    def _note_injected(self, double: bool) -> None:
        if double:
            self.plan.stats.injected_double += 1
        else:
            self.plan.stats.injected_single += 1

    def _note_corrected(self, injected_at: Optional[int]) -> None:
        stats = self.plan.stats
        stats.corrected += 1
        stats.detections += 1
        if injected_at is not None:
            stats.record_latency(max(0, self.plan.now() - injected_at))

    def _note_uncorrectable(self, injected_at: Optional[int]) -> None:
        stats = self.plan.stats
        stats.uncorrectable += 1
        stats.detections += 1
        if injected_at is not None:
            stats.record_latency(max(0, self.plan.now() - injected_at))

    def _note_overwritten(self) -> None:
        self.plan.stats.overwritten += 1


class LockGuard:
    """Parity shadow over the lock manager's two scoreboard masks.

    Every ``lock``/``unlock`` is one indexed operation; the guard keeps
    the *intended* mask sequence in plain integers and corrupts the
    staged value when a fate says so.  Every scoreboard query checks the
    committed masks first: a one-bit deviation is repaired in place, a
    wider one raises a machine check (a scoreboard that lies about
    in-flight state is exactly the silent-corruption vector the
    multi-tenant roadmap item worries about).
    """

    _SPACES = (WriteSpace.DATA, WriteSpace.FLAG)

    def __init__(self, element_id: str, lockmgr, plan: StateFaultPlan, mcu: MachineCheckUnit):
        self.element_id = element_id
        self.lockmgr = lockmgr
        self.plan = plan
        self.mcu = mcu
        self.code = mcu.register_guard(self)
        plan.register(self)
        lockmgr._guard = self
        self._ops = 0
        self._true = {
            WriteSpace.DATA: lockmgr._data_locks.value,
            WriteSpace.FLAG: lockmgr._flag_locks.value,
        }
        #: upset injection timestamps per space (None key = unknown age)
        self._taint: dict[WriteSpace, int] = {}

    def _width(self, space: WriteSpace) -> int:
        # Tracked register counts, not the architectural config values —
        # under renaming the scoreboard covers the physical pool.
        return (
            self.lockmgr.n_data
            if space is WriteSpace.DATA
            else self.lockmgr.n_flag
        )

    def _reg(self, space: WriteSpace):
        return self.lockmgr._reg_for(space)

    # -- update path (edge phase, called from LockManager.lock/unlock) --------------

    def on_op(self, space: WriteSpace, reg: int, is_lock: bool, staged: int) -> int:
        bit = 1 << reg
        true = self._true[space]
        self._true[space] = (true | bit) if is_lock else (true & ~bit)
        index = self._ops
        self._ops = index + 1
        f = self.plan.fate(self.element_id, index, self._width(space))
        if f[0] == "ok":
            return staged
        if f[0] == "double":
            self.plan.stats.injected_double += 1
        else:
            self.plan.stats.injected_single += 1
        self._taint.setdefault(space, self.plan.now())
        return staged ^ _xor_of(f)

    # -- query path (settle phase, called from every scoreboard read) ---------------

    def check(self) -> None:
        for addr, space in enumerate(self._SPACES):
            reg = self._reg(space)
            value = reg.value
            true = self._true[space]
            if value == true:
                continue
            self._resolve(addr, space, reg, value, true)

    def _resolve(self, addr, space, reg, value, true) -> None:
        xor = value ^ true
        injected_at = self._taint.pop(space, None)
        stats = self.plan.stats
        if bin(xor).count("1") == 1:
            reg.force(true)
            stats.corrected += 1
            stats.detections += 1
        else:
            stats.uncorrectable += 1
            stats.detections += 1
            bits = [i for i in range(xor.bit_length()) if xor >> i & 1]
            syndrome = ((bits[-1] & 0xFF) << 8) | (bits[0] & 0xFF)
            self.mcu.raise_check(self, addr, syndrome)
        if injected_at is not None:
            stats.record_latency(max(0, self.plan.now() - injected_at))

    # -- scrub / clear ----------------------------------------------------------------

    def slots(self) -> tuple:
        return (0, 1)

    def scrub(self, slot: int) -> None:
        space = self._SPACES[slot]
        reg = self._reg(space)
        if reg._staged is not _UNSET:
            return
        value = reg.value
        true = self._true[space]
        if value != true:
            self._resolve(slot, space, reg, value, true)

    def scrub_all(self) -> None:
        for space in self._SPACES:
            reg = self._reg(space)
            if reg.value != self._true[space]:
                reg.force(self._true[space])
        self._taint.clear()

    def clear(self) -> None:
        self._true = {
            WriteSpace.DATA: self.lockmgr._data_locks.value,
            WriteSpace.FLAG: self.lockmgr._flag_locks.value,
        }
        self._taint.clear()

    @property
    def tainted(self) -> bool:
        return bool(self._taint)


class RenameGuard:
    """Parity shadow over the rename table's architectural→physical map.

    Fates are indexed by *rename allocations* (the operations that write
    the map).  An upset flips bits in one staged map entry; every map
    query — source rename, architectural backdoor, checkpoint capture —
    compares the committed map against the intended shadow first.  A
    single-bit deviation in one entry is repaired in place; anything
    wider restores the intended map *and* raises a machine check, because
    a corrupt physical index must never be allowed to steer a register
    read (an out-of-range index would fault the machine, an in-range one
    would silently read the wrong value — the exact failure the
    identical-or-raises contract forbids).
    """

    _SPACES = (WriteSpace.DATA, WriteSpace.FLAG)

    def __init__(self, element_id: str, rename, plan: StateFaultPlan, mcu: MachineCheckUnit):
        self.element_id = element_id
        self.rename = rename
        self.plan = plan
        self.mcu = mcu
        self.code = mcu.register_guard(self)
        plan.register(self)
        rename._guard = self
        self._ops = 0
        self._true = {
            space: rename._map[space].value for space in self._SPACES
        }
        self._taint: dict[WriteSpace, int] = {}

    # -- update path (edge phase, called from RenameTable.allocate) -----------------

    def on_rename(self, space: WriteSpace, arch: int, staged: tuple) -> tuple:
        self._true[space] = staged
        index = self._ops
        self._ops = index + 1
        f = self.plan.fate(self.element_id, index, 8)
        if f[0] == "ok":
            return staged
        if f[0] == "double":
            self.plan.stats.injected_double += 1
        else:
            self.plan.stats.injected_single += 1
        self._taint.setdefault(space, self.plan.now())
        corrupted = list(staged)
        corrupted[arch] = (corrupted[arch] ^ _xor_of(f)) & 0xFF
        return tuple(corrupted)

    # -- query path (settle phase, called from every map read) ----------------------

    def check(self) -> None:
        for addr, space in enumerate(self._SPACES):
            reg = self.rename._map[space]
            value = reg.value
            true = self._true[space]
            if value == true:
                continue
            self._resolve(addr, space, reg, value, true)

    def _resolve(self, addr, space, reg, value, true) -> None:
        diffs = [i for i, (v, t) in enumerate(zip(value, true)) if v != t]
        injected_at = self._taint.pop(space, None)
        stats = self.plan.stats
        # Always restore the intended map before anyone reads through it.
        reg.force(true)
        single = (
            len(diffs) == 1
            and bin(value[diffs[0]] ^ true[diffs[0]]).count("1") == 1
        )
        if single:
            stats.corrected += 1
            stats.detections += 1
        else:
            stats.uncorrectable += 1
            stats.detections += 1
            entry = diffs[0]
            syndrome = ((entry & 0xFF) << 8) | (
                (value[entry] ^ true[entry]) & 0xFF
            )
            self.mcu.raise_check(self, addr, syndrome)
        if injected_at is not None:
            stats.record_latency(max(0, self.plan.now() - injected_at))

    # -- scrub / clear ----------------------------------------------------------------

    def slots(self) -> tuple:
        return (0, 1)

    def scrub(self, slot: int) -> None:
        space = self._SPACES[slot]
        reg = self.rename._map[space]
        if reg._staged is not _UNSET:
            return
        value = reg.value
        true = self._true[space]
        if value != true:
            self._resolve(slot, space, reg, value, true)

    def scrub_all(self) -> None:
        for space in self._SPACES:
            reg = self.rename._map[space]
            if reg.value != self._true[space]:
                reg.force(self._true[space])
        self._taint.clear()

    def clear(self) -> None:
        self._true = {
            space: self.rename._map[space].value for space in self._SPACES
        }
        self._taint.clear()

    @property
    def tainted(self) -> bool:
        return bool(self._taint)


class FutableGuard:
    """Golden-copy protection of the functional-unit table's config bits.

    Fates are indexed by *unit dispatches* (the operations that consume
    the table).  An upset corrupts a row's port bits in the live table;
    the very next consultation — decoder decode, dispatcher port scan —
    re-validates against the golden copy before serving rows, so corrupt
    routing data is never acted on: singles are corrected silently,
    doubles restore the row and raise a machine check.
    """

    def __init__(self, element_id: str, table, plan: StateFaultPlan, mcu: MachineCheckUnit):
        self.element_id = element_id
        self.table = table
        self.plan = plan
        self.mcu = mcu
        self.code = mcu.register_guard(self)
        plan.register(self)
        table._guard = self
        self._golden = dict(table._entries)
        self._ops = 0
        self._pending: Optional[tuple] = None

    def on_dispatch(self) -> None:
        """One unit instruction consumed the table (dispatcher edge)."""
        index = self._ops
        self._ops = index + 1
        if not self._golden:
            return
        f = self.plan.fate(self.element_id, index, 8)
        if f[0] == "ok":
            return
        rng = self.plan.placement_rng(self.element_id, index)
        key = sorted(self._golden)[rng.randrange(len(self._golden))]
        entry = self._golden[key]
        self.table._entries[key] = dc_replace(entry, port=entry.port ^ _xor_of(f))
        self._pending = (f[0] == "double", key, f, self.plan.now())
        if f[0] == "double":
            self.plan.stats.injected_double += 1
        else:
            self.plan.stats.injected_single += 1

    def on_access(self) -> None:
        """Validate the rows before any consumer sees them."""
        p = self._pending
        if p is None:
            return
        self._pending = None
        double, key, f, injected_at = p
        self.table._entries[key] = self._golden[key]
        stats = self.plan.stats
        stats.detections += 1
        stats.record_latency(max(0, self.plan.now() - injected_at))
        if double:
            stats.uncorrectable += 1
            self.mcu.raise_check(self, key & 0xFFFF, _syndrome_of(f))
        else:
            stats.corrected += 1

    # -- scrub / clear ----------------------------------------------------------------

    def slots(self) -> tuple:
        return ()

    def scrub_all(self) -> None:
        self.table._entries.clear()
        self.table._entries.update(self._golden)
        self._pending = None

    def clear(self) -> None:
        self.scrub_all()

    @property
    def tainted(self) -> bool:
        return self._pending is not None


class ArrayGuard:
    """Cell-payload upsets for a smart-memory array, backend-identically.

    Fates are indexed by *applied commands* (the k-th non-NOP edge), the
    same stream in interpreted vector, structural and compiled
    executions.  The upset lands in one deterministic cell; at the next
    fold (the array's output reduction — where inline ECC naturally
    sits) a single is corrected before it can propagate and a double
    corrupts the chosen cell's payload and raises a machine check, so
    the pipeline freeze keeps the corrupt fold result from retiring.
    """

    def __init__(self, element_id: str, array, plan: StateFaultPlan, mcu: MachineCheckUnit):
        self.element_id = element_id
        self.array = array
        self.plan = plan
        self.mcu = mcu
        self.code = mcu.register_guard(self)
        plan.register(self)
        self._ops = 0
        self._pending: Optional[tuple] = None
        self._evt = None  # 1-bit wake reg, bound by the array's attach_guard
        array.attach_guard(self)

    def bind_evt(self, evt) -> None:
        self._evt = evt

    # -- injection (edge phase, once per applied command) ---------------------------

    def after_apply(self) -> None:
        index = self._ops
        self._ops = index + 1
        f = self.plan.fate(self.element_id, index, self.array.word_bits)
        if f[0] == "ok":
            return
        rng = self.plan.placement_rng(self.element_id, index)
        cell = rng.randrange(self.array.n_cells)
        self._pending = (f[0] == "double", cell, f, self.plan.now())
        if f[0] == "double":
            self.plan.stats.injected_double += 1
        else:
            self.plan.stats.injected_single += 1
        if self._evt is not None:
            # wake the application proc under the event-driven kernels
            self._evt.nxt = 1 - self._evt.value

    # -- application + detection (settle phase, before the fold) --------------------

    def pre_fold(self) -> None:
        if self._evt is not None:
            _ = self._evt.value  # tracked read: the wake edge re-runs this proc
        p = self._pending
        if p is None:
            return
        self._pending = None
        double, cell, f, injected_at = p
        stats = self.plan.stats
        stats.detections += 1
        stats.record_latency(max(0, self.plan.now() - injected_at))
        if not double:
            # corrected by the fold-port ECC before it can propagate: the
            # payload never observably changes, only the counters move.
            stats.corrected += 1
            return
        stats.uncorrectable += 1
        state = self.array.state_at(cell)
        self.array.poke_state(cell, self._corrupt(state, _xor_of(f)))
        self.mcu.raise_check(self, cell & 0xFFFF, _syndrome_of(f))

    def _corrupt(self, state, xor: int):
        """Flip payload bits in the first integer field of the state."""
        mask = (1 << self.array.word_bits) - 1
        for fld in dataclasses.fields(state):
            value = getattr(state, fld.name)
            if isinstance(value, bool) or not isinstance(value, int):
                continue
            return dc_replace(state, **{fld.name: (value ^ xor) & mask})
        return state

    # -- scrub / clear ----------------------------------------------------------------

    def slots(self) -> tuple:
        return ()

    def scrub_all(self) -> None:
        self._pending = None

    def clear(self) -> None:
        self._pending = None

    @property
    def tainted(self) -> bool:
        return self._pending is not None


class StateScrubber(Component):
    """Background walker over the scrub slots of every registered guard.

    One slot per cycle, round-robin, active only while some guard holds
    a latent upset — otherwise every cycle is pure aging, batched by the
    wheel hook, so protection costs nothing on idle stretches.
    """

    def __init__(
        self,
        name: str,
        plan: StateFaultPlan,
        mcu: MachineCheckUnit,
        parent: Optional[Component] = None,
    ):
        super().__init__(name, parent)
        self._plan = plan
        self._mcu = mcu
        self._pos = 0
        self._slots: Optional[list] = None

        @self.seq
        def _scrub() -> None:
            stats = self._plan.stats
            stats.scrub_epochs += 1
            if not self._plan.tainted or self._mcu.pending:
                return
            slots = self._slot_list()
            if not slots:
                return
            guard, slot = slots[self._pos % len(slots)]
            self._pos += 1
            stats.scrub_visits += 1
            guard.scrub(slot)

        self.wheel(self._horizon, self._skip)

        @self.on_reset
        def _rewind() -> None:
            self._pos = 0

    def _slot_list(self) -> list:
        if self._slots is None:
            self._slots = [
                (g, s) for g in self._plan.guards for s in g.slots()
            ]
        return self._slots

    # -- time-wheel hooks -------------------------------------------------------------

    def _horizon(self) -> Optional[int]:
        if self._plan.tainted and not self._mcu.pending:
            return 0  # real scrub work next edge
        return None  # pure aging: epochs batch through skip()

    def _skip(self, n: int) -> None:
        self._plan.stats.scrub_epochs += n

"""Machine-check unit: latches uncorrectable state errors for the host.

Guards raise into this unit when a double-bit upset is read back.  The
unit latches the first report (element code, address, syndrome), asserts
``pending`` — which freezes the dispatcher and the write arbiter's unit
grants so no further architectural state is committed from possibly
corrupt data — and asserts ``unreported`` until the execution stage has
pushed one :class:`~repro.messages.types.MachineCheck` message onto the
host stream.  The host then drives recovery (checkpoint rollback and
replay, see :mod:`repro.host.engine`); a bare-simulator system simply
wedges, which the property suite accepts as "raises, never silently
wrong" via the host timeout.

A soft ``Reset`` message clears the check *and* scrubs every guard back
to its intended contents, so a reset after a fault can never replay a
stale syndrome.  A hard simulator reset does the same through the
``on_reset`` hook — but injection counters inside the guards survive
both, so a rollback-replay draws fresh fates instead of re-tripping the
same upset forever.
"""

from __future__ import annotations

from typing import Optional

from ..hdl import Component


class MachineCheckUnit(Component):
    """Sticky first-error latch shared by every state guard."""

    def __init__(self, name: str, parent: Optional[Component] = None):
        super().__init__(name, parent)
        #: a machine check is latched (gates dispatch / unit grants)
        self._check = self.reg("check", 1, 0)
        #: the latched check has not yet left on the host stream
        self._unreported = self.reg("unreported", 1, 0)
        #: (element code, address, syndrome) of the latched check
        self._record: Optional[tuple] = None
        self._guards: list = []
        self.stats = None  # StateFaultStats, bound by the plan
        # Passive: the regs are driven by force() from guard callbacks and
        # read combinationally by the pipeline stages.
        self.comb(lambda: None)

        @self.on_reset
        def _clear() -> None:
            self._record = None
            for guard in self._guards:
                guard.clear()

    # -- guard registry ---------------------------------------------------------

    def register_guard(self, guard) -> int:
        """Enroll a guard; returns its element code (the MachineCheck arg)."""
        code = len(self._guards)
        self._guards.append(guard)
        return code

    @property
    def guards(self) -> list:
        return list(self._guards)

    def element_id(self, code: int) -> str:
        if 0 <= code < len(self._guards):
            return self._guards[code].element_id
        return f"element#{code}"

    # -- raise / report / clear ---------------------------------------------------

    def raise_check(self, guard, address: int, syndrome: int) -> None:
        """Latch an uncorrectable error (first reporter wins)."""
        if self._check.value:
            if self.stats is not None:
                self.stats.checks_suppressed += 1
            return
        self._record = (guard.code, address & 0xFFFF, syndrome & 0xFFFF)
        self._check.force(1)
        self._unreported.force(1)

    @property
    def pending(self) -> bool:
        return bool(self._check.value)

    @property
    def unreported(self) -> bool:
        return bool(self._unreported.value)

    @property
    def record(self) -> Optional[tuple]:
        return self._record

    def report_args(self) -> tuple:
        """(element, address, syndrome) for the outbound MachineCheck."""
        assert self._record is not None
        return self._record

    def mark_reported(self) -> None:
        self._unreported.force(0)

    def soft_clear(self) -> None:
        """Reset-message path: scrub all state clean and drop the check."""
        for guard in self._guards:
            guard.scrub_all()
        self._record = None
        self._check.force(0)
        self._unreported.force(0)

"""repro.faults — the state-fault domain: SEU injection, ECC/parity
scrubbing, machine-check reporting and checkpoint/rollback support.

Counterpart of the link-fault domain in :mod:`repro.messages.faults`:
where that package corrupts words *between* host and coprocessor, this
one corrupts the architectural state *inside* the coprocessor and builds
the detection/reporting/recovery stack that keeps the system "correct or
raises, never silently wrong" anyway.  See docs/ARCHITECTURE.md
("The state-fault domain").
"""

from .checkpoint import Checkpoint, restore_state, snapshot_state
from .guards import (
    ArrayGuard,
    FutableGuard,
    LockGuard,
    RamGuard,
    RenameGuard,
    StateFaultPlan,
    StateScrubber,
)
from .mcu import MachineCheckUnit
from .spec import StateFaultSpec, StateFaultStats

__all__ = [
    "ArrayGuard",
    "Checkpoint",
    "FutableGuard",
    "LockGuard",
    "MachineCheckUnit",
    "RamGuard",
    "RenameGuard",
    "StateFaultPlan",
    "StateFaultSpec",
    "StateFaultStats",
    "StateScrubber",
    "restore_state",
    "snapshot_state",
]

"""Deterministic state-fault schedules for the coprocessor's fabric state.

PR 3 made the host link a failure domain; this package does the same for
the architectural state *inside* the coprocessor — register file, flag
file, lock-manager scoreboard, smart-memory cell arrays and the
functional-unit table — the elements a single-event upset corrupts in
real FPGA fabric.

:class:`StateFaultSpec` mirrors the link-side
:class:`repro.messages.faults.FaultSpec` idiom: fates are a pure function
of ``(seed, element, index)`` where ``index`` counts *operations on the
element* (writes to a RAM, lock-manager updates, applied array commands),
not cycles — so a schedule is pacing-independent and survives engine
batching, window changes and backend swaps unchanged.  An explicit
``schedule`` pins individual fates for targeted tests.

:class:`StateFaultStats` accumulates what the guards actually did:
injections, corrections, machine-checks raised, scrub activity, and the
detection-latency distribution the reliability bench reports.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

#: Multiplier decorrelating per-index fate streams drawn from one seed
#: (same constant as the link-fault injector, applied twice: once to mix
#: the element id in, once per index).
_SEED_STRIDE = 1_000_003

#: Fates a scheduled entry may pin.
_KINDS = ("ok", "flip", "double")


@dataclass(frozen=True)
class StateFaultSpec:
    """A reproducible upset schedule for the protected state elements.

    ``flip_rate`` is the per-operation probability of a single-bit upset
    (correctable under the SECDED-style shadow), ``double_rate`` of a
    double-bit upset (detectable, uncorrectable — raises a machine
    check).  ``targets`` restricts injection to elements whose id starts
    with one of the given prefixes (e.g. ``("rtm.regfile",)``); empty
    means every protected element.  ``schedule`` pins individual fates as
    ``(element_id, index, kind)`` triples and overrides the rates at
    those points.
    """

    seed: int = 0
    flip_rate: float = 0.0
    double_rate: float = 0.0
    targets: tuple = ()
    schedule: tuple = ()

    def __post_init__(self) -> None:
        for name in ("flip_rate", "double_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {rate}")
        if self.flip_rate + self.double_rate > 1.0:
            raise ValueError("fault rates must sum to at most 1")
        seen: set[tuple] = set()
        for entry in self.schedule:
            if not (isinstance(entry, tuple) and len(entry) == 3):
                raise ValueError(
                    f"schedule entries are (element_id, index, kind) triples, got {entry!r}"
                )
            element, index, kind = entry
            if kind not in _KINDS:
                raise ValueError(
                    f"schedule kind must be one of {_KINDS}, got {kind!r}"
                )
            key = (element, index)
            if key in seen:
                raise ValueError(
                    f"schedule pins ({element!r}, {index}) more than once — "
                    "overlapping entries would silently shadow each other"
                )
            seen.add(key)

    @property
    def any_faults(self) -> bool:
        return self.flip_rate > 0 or self.double_rate > 0 or bool(self.schedule)

    def targeted(self, element_id: str) -> bool:
        """Whether rate-driven injection applies to ``element_id``."""
        if not self.targets:
            return True
        return any(element_id.startswith(prefix) for prefix in self.targets)

    def fate(self, element_id: str, index: int, width: int) -> tuple:
        """Fate of the ``index``-th operation on ``element_id``.

        Returns ``("ok",)``, ``("flip", bit)`` or ``("double", b1, b2)``
        with distinct bit positions below ``width``.  Pure function of
        (seed, element, index): the schedule is a property of the spec,
        never of simulation timing.
        """
        rng = random.Random(
            (self.seed * _SEED_STRIDE + zlib.crc32(element_id.encode()))
            * _SEED_STRIDE
            + index
        )
        kind = None
        for element, idx, pinned in self.schedule:
            if element == element_id and idx == index:
                kind = pinned
                break
        if kind is None:
            if not self.targeted(element_id):
                return ("ok",)
            u = rng.random()
            if u < self.flip_rate:
                kind = "flip"
            elif u < self.flip_rate + self.double_rate:
                kind = "double"
            else:
                kind = "ok"
        if kind == "ok":
            return ("ok",)
        if width < 1:
            return ("ok",)
        if kind == "flip":
            return ("flip", rng.randrange(width))
        if width < 2:  # a 1-bit element cannot host a double upset
            return ("flip", 0)
        b1 = rng.randrange(width)
        b2 = rng.randrange(width - 1)
        if b2 >= b1:
            b2 += 1
        return ("double", b1, b2)


@dataclass
class StateFaultStats:
    """What the state-fault domain actually did."""

    injected_single: int = 0     # single-bit upsets injected
    injected_double: int = 0     # double-bit upsets injected
    corrected: int = 0           # single-bit errors repaired from the shadow
    uncorrectable: int = 0       # double-bit errors handed to the machine-check unit
    overwritten: int = 0         # upsets erased by a later write before any read saw them
    detections: int = 0          # total mismatches noticed (corrected + uncorrectable)
    scrub_visits: int = 0        # state slots actively scrubbed
    scrub_epochs: int = 0        # scrubber cycles lived (stepped or wheel-aged)
    checks_suppressed: int = 0   # machine-check raises while one was already pending
    latency_total: int = 0       # Σ cycles from injection to detection (known-age faults)
    latency_max: int = 0
    latency_samples: int = 0

    def record_latency(self, cycles: int) -> None:
        self.latency_total += cycles
        self.latency_samples += 1
        if cycles > self.latency_max:
            self.latency_max = cycles

    @property
    def faults_injected(self) -> int:
        return self.injected_single + self.injected_double

    @property
    def latency_mean(self) -> float:
        if not self.latency_samples:
            return 0.0
        return self.latency_total / self.latency_samples

    def as_dict(self) -> dict:
        return {
            "injected_single": self.injected_single,
            "injected_double": self.injected_double,
            "corrected": self.corrected,
            "uncorrectable": self.uncorrectable,
            "overwritten": self.overwritten,
            "detections": self.detections,
            "scrub_visits": self.scrub_visits,
            "scrub_epochs": self.scrub_epochs,
            "checks_suppressed": self.checks_suppressed,
            "detect_latency_mean": round(self.latency_mean, 2),
            "detect_latency_max": self.latency_max,
        }

"""The complete coprocessor system (paper Fig. 1: CPU ↔ interface ↔ FUs).

`CoprocessorSystem` is the top-level simulated design:

* a :class:`HostPort` standing in for the CPU side of the I/O channel,
* a full-duplex :class:`Link` with configurable latency/bandwidth,
* COTS-style :class:`Receiver`/:class:`Transmitter` modules,
* the :class:`RegisterTransferMachine` with its functional units.

The host driver (:mod:`repro.host.driver`) talks to the ``host`` port; the
rest of the structure is exactly the component diagram of Fig. 2.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import FrameworkConfig
from ..fu.registry import UnitRegistry
from ..hdl import Component
from ..messages.channel import INTEGRATED, ChannelSpec, Link
from ..messages.transceiver import HostPort, Receiver, Transmitter
from ..rtm.rtm import RegisterTransferMachine, _connect


class CoprocessorSystem(Component):
    """Host port + link + transceivers + RTM, fully wired."""

    def __init__(
        self,
        config: FrameworkConfig,
        channel: ChannelSpec = INTEGRATED,
        registry: Optional[UnitRegistry] = None,
        unit_codes: Optional[Sequence[int]] = None,
        name: str = "soc",
        upstream_channel: Optional[ChannelSpec] = None,
        downstream_faults=None,
        upstream_faults=None,
        state_faults=None,
        state_protection: bool = False,
    ):
        super().__init__(name)
        self.config = config
        self.channel_spec = channel
        self.host = HostPort("host", parent=self)
        self.link = Link(
            "link",
            channel,
            parent=self,
            upstream_spec=upstream_channel,
            downstream_faults=downstream_faults,
            upstream_faults=upstream_faults,
        )
        self.receiver = Receiver(
            "receiver", parent=self, depth=config.transceiver_fifo_depth
        )
        self.transmitter = Transmitter(
            "transmitter", parent=self, depth=config.transceiver_fifo_depth
        )
        self.rtm = RegisterTransferMachine(
            "rtm", config, registry=registry, unit_codes=unit_codes,
            state_faults=state_faults, state_protection=state_protection,
            parent=self,
        )

        # host → coprocessor path
        _connect(self, self.host.tx, self.link.downstream.inp)
        _connect(self, self.link.downstream.out, self.receiver.chan)
        _connect(self, self.receiver.out, self.rtm.words_in)
        # coprocessor → host path
        _connect(self, self.rtm.words_out, self.transmitter.inp)
        _connect(self, self.transmitter.chan, self.link.upstream.inp)
        _connect(self, self.link.upstream.out, self.host.rx)

    # -- state-fault domain accessors -------------------------------------------

    @property
    def state_domain(self):
        """The RTM's :class:`~repro.faults.StateFaultPlan` (None unprotected)."""
        return self.rtm.state_domain

    @property
    def mcu(self):
        """The RTM's machine-check unit (None when unprotected)."""
        return self.rtm.mcu

    # -- quiescence check (drivers use this to know when to stop pumping) --------

    @property
    def busy(self) -> bool:
        """True while any word, message or instruction is still in flight."""
        rtm = self.rtm
        return bool(
            self.host.tx_pending
            or self.link.downstream.in_flight
            or self.link.upstream.in_flight
            or self.receiver.buffered
            or self.transmitter.buffered
            or rtm.msgbuffer.pending_message is not None
            or rtm.msgbuffer.backlog
            or rtm.msgbuffer._deframer.mid_frame
            or rtm.decoder._full.value
            or rtm.dispatcher.busy
            or rtm.execution._full.value
            or rtm.encoder.queued
            or rtm.serializer.words_pending
            or rtm.lockmgr.locked_count
        )

"""repro.system — whole-system assembly (paper Fig. 1 / Fig. 2).

Builds the complete simulated installation: host port ↔ full-duplex link ↔
receiver/transmitter ↔ Register Transfer Machine with its functional
units, and wraps it in a :class:`Simulator`.
"""

from ..config import DEFAULT_CONFIG, FrameworkConfig
from .builder import SystemBuilder, build_system
from .multihost import (
    BuiltMultiHostSystem,
    MultiHostCoprocessorSystem,
    build_multihost_system,
)
from .soc import CoprocessorSystem

__all__ = [
    "DEFAULT_CONFIG",
    "FrameworkConfig",
    "SystemBuilder",
    "build_system",
    "BuiltMultiHostSystem",
    "MultiHostCoprocessorSystem",
    "build_multihost_system",
    "CoprocessorSystem",
]

"""Multi-CPU system assembly (paper Fig. 1.1: several CPUs, one interface).

The coprocessor (link, transceivers, RTM, units) is byte-for-byte the same
as in the single-host system — the sharing happens entirely on the host
side of the channel through :class:`SharedHostBus`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..config import FrameworkConfig
from ..fu.registry import UnitRegistry
from ..hdl import Component, Simulator
from ..messages.channel import INTEGRATED, ChannelSpec, Link
from ..messages.multihost import SharedHostBus
from ..messages.transceiver import Receiver, Transmitter
from ..rtm.rtm import RegisterTransferMachine, _connect


class MultiHostCoprocessorSystem(Component):
    """m CPUs → shared bus → link → transceivers → RTM."""

    def __init__(
        self,
        config: FrameworkConfig,
        n_hosts: int = 2,
        channel: ChannelSpec = INTEGRATED,
        registry: Optional[UnitRegistry] = None,
        unit_codes: Optional[Sequence[int]] = None,
        name: str = "mhsoc",
    ):
        super().__init__(name)
        if config.reliable_framing:
            # The shared bus interleaves plain frames from several CPUs on
            # one word stream; per-direction sequence numbering has no
            # single sender to attribute to.
            raise ValueError(
                "reliable_framing is not supported on multi-host systems "
                "(the shared host bus speaks plain framing)"
            )
        self.config = config
        self.channel_spec = channel
        self.bus = SharedHostBus("bus", n_hosts, config.data_words, parent=self)
        self.link = Link("link", channel, parent=self)
        self.receiver = Receiver("receiver", parent=self,
                                 depth=config.transceiver_fifo_depth)
        self.transmitter = Transmitter("transmitter", parent=self,
                                       depth=config.transceiver_fifo_depth)
        self.rtm = RegisterTransferMachine(
            "rtm", config, registry=registry, unit_codes=unit_codes, parent=self
        )
        # bus → coprocessor path
        _connect(self, self.bus.tx, self.link.downstream.inp)
        _connect(self, self.link.downstream.out, self.receiver.chan)
        _connect(self, self.receiver.out, self.rtm.words_in)
        # coprocessor → bus path
        _connect(self, self.rtm.words_out, self.transmitter.inp)
        _connect(self, self.transmitter.chan, self.link.upstream.inp)
        _connect(self, self.link.upstream.out, self.bus.rx)

    @property
    def hosts(self):
        return self.bus.hosts

    @property
    def busy(self) -> bool:
        rtm = self.rtm
        return bool(
            any(h.tx_pending for h in self.bus.hosts)
            or self.link.downstream.in_flight
            or self.link.upstream.in_flight
            or self.receiver.buffered
            or self.transmitter.buffered
            or rtm.msgbuffer.pending_message is not None
            or rtm.msgbuffer.backlog
            or rtm.msgbuffer._deframer.mid_frame
            or rtm.decoder._full.value
            or rtm.dispatcher._full.value
            or rtm.execution._full.value
            or rtm.encoder.queued
            or rtm.serializer.words_pending
            or rtm.lockmgr.locked_count
        )


@dataclass
class BuiltMultiHostSystem:
    """A wired multi-CPU system plus its simulator."""

    soc: MultiHostCoprocessorSystem
    sim: Simulator
    #: default in-flight window for the per-CPU host engines (None → the
    #: engine's own DEFAULT_WINDOW); each CPU's window is independent
    engine_window: Optional[int] = None

    @property
    def config(self) -> FrameworkConfig:
        return self.soc.config


def build_multihost_system(
    config: Optional[FrameworkConfig] = None,
    n_hosts: int = 2,
    channel: ChannelSpec = INTEGRATED,
    registry: Optional[UnitRegistry] = None,
    unit_codes: Optional[Sequence[int]] = None,
    window: Optional[int] = None,
) -> BuiltMultiHostSystem:
    cfg = config if config is not None else FrameworkConfig()
    soc = MultiHostCoprocessorSystem(
        cfg, n_hosts=n_hosts, channel=channel, registry=registry,
        unit_codes=unit_codes,
    )
    sim = Simulator(soc)
    sim.reset()
    return BuiltMultiHostSystem(soc=soc, sim=sim, engine_window=window)

"""System builder — the "configure the interface framework" step (§II).

The paper's workflow for a programmer is: partition the algorithm, define
functional units, then *configure the interface framework by specifying
size parameters for the register file and selecting the appropriate
transmitter and receiver modules*.  :class:`SystemBuilder` is that step as
a fluent API; :func:`build_system` is the one-call convenience wrapper used
throughout the tests, examples and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..config import FrameworkConfig
from ..faults import StateFaultSpec
from ..fu.registry import UnitRegistry, default_registry
from ..hdl import Simulator
from ..messages.channel import INTEGRATED, ChannelSpec
from ..messages.faults import FaultSpec
from .soc import CoprocessorSystem


@dataclass
class BuiltSystem:
    """A wired system plus its simulator (what the builder produces)."""

    soc: CoprocessorSystem
    sim: Simulator
    #: default in-flight window for host engines opened on this system
    #: (None → the engine's own DEFAULT_WINDOW)
    engine_window: Optional[int] = None

    @property
    def config(self) -> FrameworkConfig:
        return self.soc.config


class SystemBuilder:
    """Fluent configuration of a coprocessor installation."""

    def __init__(self, config: Optional[FrameworkConfig] = None):
        self._config = config if config is not None else FrameworkConfig()
        self._channel: ChannelSpec = INTEGRATED
        self._upstream: Optional[ChannelSpec] = None
        self._registry: Optional[UnitRegistry] = None
        self._unit_codes: Optional[Sequence[int]] = None
        self._scheduler: str = "event"
        self._backend: Optional[str] = None
        self._wheel: bool = True
        self._engine_window: Optional[int] = None
        self._downstream_faults: Optional[FaultSpec] = None
        self._upstream_faults: Optional[FaultSpec] = None
        self._state_faults: Optional[StateFaultSpec] = None
        self._state_protection: bool = False
        self._lint: str = "warn"
        self._fp_units: Optional[dict] = None

    def with_lint(self, mode: str) -> "SystemBuilder":
        """Set the elaboration-time design-rule check posture.

        ``"warn"`` (default) runs the lint engine over the freshly wired
        system and prints any findings to stderr; ``"error"`` additionally
        raises :class:`~repro.analysis.lint.LintFailure` when an
        error-severity rule fires; ``"off"`` skips the check (mid-debug
        builds of deliberately broken designs).
        """
        if mode not in ("off", "warn", "error"):
            raise ValueError(f"lint mode must be off/warn/error, got {mode!r}")
        self._lint = mode
        return self

    def with_engine(self, window: int) -> "SystemBuilder":
        """Set the default host-engine in-flight window for this system.

        Drivers opened on the built system inherit it unless they pass
        their own ``window`` — the deployment-level knob for how deep the
        host may pipeline requests into the link.
        """
        if window < 1:
            raise ValueError("engine window must be at least 1")
        self._engine_window = window
        return self

    def with_scheduler(self, scheduler: str) -> "SystemBuilder":
        """Select the settle scheduler (``"event"`` or ``"exhaustive"``).

        Both are cycle-exact; the exhaustive reference kernel exists as the
        equivalence oracle and microbenchmark baseline.
        """
        self._scheduler = scheduler
        return self

    def with_backend(self, backend: Optional[str]) -> "SystemBuilder":
        """Select the simulation backend for the built system.

        ``None`` (default) keeps the :meth:`with_scheduler` choice;
        ``"event"``/``"exhaustive"`` are aliases for the corresponding
        scheduler; ``"compiled"`` selects the codegen backend
        (:mod:`repro.hdl.compile`), which flattens the elaborated graph
        into specialized straight-line Python.  Every backend is
        cycle-exact and produces identical traces.
        """
        self._backend = backend
        return self

    def with_wheel(self, enabled: bool = True) -> "SystemBuilder":
        """Enable or disable the cycle-skipping time wheel.

        On by default (and cycle-exact either way — the wheel only jumps
        when every armed process certifies pure aging); turning it off
        forces every edge to execute, which the equivalence suites use to
        cross-check the fast-forward path.  Ignored by the exhaustive
        scheduler, which always steps every cycle.
        """
        self._wheel = bool(enabled)
        return self

    def with_config(self, **kwargs) -> "SystemBuilder":
        """Override framework generics (word_bits, n_regs, …)."""
        self._config = self._config.with_(**kwargs)
        return self

    def with_channel(
        self, spec: ChannelSpec, upstream: Optional[ChannelSpec] = None
    ) -> "SystemBuilder":
        """Select the link model (transceiver selection in the paper).

        ``upstream`` selects a different spec for the coprocessor→host
        direction (asymmetric fabrics).
        """
        self._channel = spec
        self._upstream = upstream
        return self

    def with_faults(
        self,
        downstream: Optional[FaultSpec],
        upstream: Optional[FaultSpec] = None,
    ) -> "SystemBuilder":
        """Inject a deterministic fault schedule into the link.

        ``downstream`` afflicts the host→coprocessor direction, ``upstream``
        the reverse.  Pair with :meth:`with_reliability` unless the point is
        to demonstrate undetected corruption.
        """
        self._downstream_faults = downstream
        self._upstream_faults = upstream
        return self

    def with_state_faults(self, spec: Optional[StateFaultSpec]) -> "SystemBuilder":
        """Inject a deterministic SEU schedule into the coprocessor's state.

        Enables the whole protection stack (ECC shadows, scrubber,
        machine-check unit) and flips bits in the register files, the lock
        manager's scoreboard, the unit table's config bits and the
        smart-memory cell payloads per the spec's seeded schedule.  Pair
        with a reliable host engine for checkpoint/rollback recovery.
        """
        self._state_faults = spec
        return self

    def with_state_protection(self, enabled: bool = True) -> "SystemBuilder":
        """Enable ECC/parity shadows + scrubbing without injecting faults.

        The zero-fault baseline for measuring protection overhead; also
        the posture a deployment would ship with.
        """
        self._state_protection = bool(enabled)
        return self

    def with_reliability(self, resync_flush_cycles: Optional[int] = None) -> "SystemBuilder":
        """Enable the checksummed, sequence-numbered frame format on both
        directions (see :mod:`repro.messages.reliability`)."""
        overrides = {"reliable_framing": True}
        if resync_flush_cycles is not None:
            overrides["resync_flush_cycles"] = resync_flush_cycles
        self._config = self._config.with_(**overrides)
        return self

    def with_registry(self, registry: UnitRegistry) -> "SystemBuilder":
        """Provide a custom functional-unit registry."""
        self._registry = registry
        return self

    def with_unit(self, code: int, factory) -> "SystemBuilder":
        """Register one extra functional unit on top of the defaults."""
        if self._registry is None:
            self._registry = default_registry(self._config.pipelined_units)
        self._registry.register(code, factory)
        return self

    def with_units(self, codes: Sequence[int]) -> "SystemBuilder":
        """Restrict the build to a subset of registered unit codes."""
        self._unit_codes = tuple(codes)
        return self

    def with_ooo(self, window: Optional[int] = None) -> "SystemBuilder":
        """Enable the out-of-order issue engine (register renaming).

        Replaces the in-order dispatcher with the renaming issue queue
        (:class:`repro.rtm.ooo.OoODispatcher`): independent younger
        instructions bypass a stalled older one while GET/GETF result
        streams stay byte-identical to the in-order machine.  ``window``
        overrides the issue-queue depth (default: the config's
        ``ooo_window``).
        """
        overrides: dict = {"ooo": True}
        if window is not None:
            overrides["ooo_window"] = window
        self._config = self._config.with_(**overrides)
        return self

    def with_fp_units(
        self, add_depth: int = 6, mul_depth: int = 7, fma_depth: int = 8
    ) -> "SystemBuilder":
        """Add the pipelined floating-point family (add/mul/FMA).

        Extends whatever registry is configured so far (default registry
        otherwise) — see :func:`repro.fu.registry.fp_registry`.  Depths
        are the per-unit pipeline stage counts; the actual build happens
        at :meth:`build` time so later ``with_registry`` calls compose.
        """
        self._fp_units = {
            "add_depth": add_depth, "mul_depth": mul_depth, "fma_depth": fma_depth
        }
        return self

    def with_smem_suite(
        self, n_cells: int = 64, array_kind: str = "vector"
    ) -> "SystemBuilder":
        """Register the whole smart-memory suite on top of the defaults.

        Adds ξ-sort, prefix scan, histogram and string match (see
        :func:`repro.fu.registry.smem_suite_registry`) at their default
        opcodes, each with an ``n_cells``-cell array of the given kind.
        Replaces any registry configured so far.
        """
        from ..fu.registry import smem_suite_registry

        self._registry = smem_suite_registry(
            self._config.pipelined_units, n_cells, array_kind
        )
        return self

    def build(self) -> BuiltSystem:
        registry = self._registry
        if self._fp_units is not None:
            from ..fu.registry import fp_registry

            if registry is None:
                registry = default_registry(self._config.pipelined_units)
            registry = fp_registry(registry, **self._fp_units)
        soc = CoprocessorSystem(
            self._config,
            channel=self._channel,
            registry=registry,
            unit_codes=self._unit_codes,
            upstream_channel=self._upstream,
            downstream_faults=self._downstream_faults,
            upstream_faults=self._upstream_faults,
            state_faults=self._state_faults,
            state_protection=self._state_protection,
        )
        sim = Simulator(
            soc,
            scheduler=self._scheduler,
            wheel=self._wheel,
            backend=self._backend,
        )
        sim.reset()
        if soc.state_domain is not None:
            soc.state_domain.bind_clock(lambda: sim.now)
        built = BuiltSystem(soc=soc, sim=sim, engine_window=self._engine_window)
        if self._lint != "off":
            _run_lint(built, self._lint)
        return built


def _run_lint(built: BuiltSystem, mode: str) -> None:
    """Design-rule check a freshly built system (see repro.analysis.lint).

    Imported lazily: the lint package depends on the HDL layer, and pulling
    it in at module import would cycle through ``repro.system``.
    """
    import sys

    from ..analysis.lint import Linter, LintFailure, Severity

    report = Linter().lint(built.soc, sim=built.sim)
    if mode == "error" and report.errors:
        raise LintFailure(report)
    findings = report.at_least(Severity.WARNING)
    if findings:
        print(report.format(Severity.WARNING), file=sys.stderr)


def build_system(
    config: Optional[FrameworkConfig] = None,
    channel: ChannelSpec = INTEGRATED,
    registry: Optional[UnitRegistry] = None,
    unit_codes: Optional[Sequence[int]] = None,
    scheduler: str = "event",
    window: Optional[int] = None,
    faults: Optional[FaultSpec] = None,
    upstream_faults: Optional[FaultSpec] = None,
    state_faults: Optional[StateFaultSpec] = None,
    state_protection: bool = False,
    reliable: bool = False,
    wheel: bool = True,
    lint: str = "warn",
    backend: Optional[str] = None,
    ooo: bool = False,
    ooo_window: Optional[int] = None,
    fp_units: bool = False,
) -> BuiltSystem:
    """One-call system construction with sensible defaults.

    ``faults``/``upstream_faults`` inject a deterministic fault schedule
    into the corresponding link direction; ``state_faults`` injects a
    seeded SEU schedule into the coprocessor's architectural state (and
    enables the ECC/scrub/machine-check stack); ``state_protection=True``
    enables that stack without injection (overhead baseline);
    ``reliable=True`` turns on the
    checksummed frame format that recovers from those faults;
    ``wheel=False`` disables the cycle-skipping time wheel (cycle-exact
    either way — the off switch exists for equivalence cross-checks);
    ``lint`` sets the design-rule check posture (``"warn"`` default,
    ``"error"`` to raise on violations, ``"off"`` to skip — see
    :mod:`repro.analysis.lint`); ``backend="compiled"`` selects the
    codegen simulation backend (:mod:`repro.hdl.compile` — cycle-exact,
    identical traces); ``ooo=True`` swaps in the out-of-order issue
    engine with register renaming (``ooo_window`` sizes its issue
    queue); ``fp_units=True`` adds the pipelined floating-point family
    on top of whatever registry is in effect.
    """
    builder = (
        SystemBuilder(config)
        .with_channel(channel)
        .with_scheduler(scheduler)
        .with_backend(backend)
        .with_wheel(wheel)
        .with_lint(lint)
    )
    if registry is not None:
        builder.with_registry(registry)
    if ooo or ooo_window is not None:
        builder.with_ooo(ooo_window)
    if fp_units:
        builder.with_fp_units()
    if unit_codes is not None:
        builder.with_units(unit_codes)
    if window is not None:
        builder.with_engine(window)
    if faults is not None or upstream_faults is not None:
        builder.with_faults(faults, upstream_faults)
    if state_faults is not None:
        builder.with_state_faults(state_faults)
    if state_protection:
        builder.with_state_protection()
    if reliable:
        builder.with_reliability()
    return builder.build()

"""The pipelined FP family against the Python float oracle (struct-packed
IEEE 754), plus the pipeline properties that make it an OoO workload:
multi-cycle latency, initiation interval 1, and the ternary FMA port.
"""

import math
import struct

import pytest

from repro.fu import UnitOp, run_unit
from repro.fu.fp import FpAdder, FpFma, FpMultiplier
from repro.isa import FLAG_ERROR, FLAG_NEGATIVE, FLAG_OVERFLOW, FLAG_ZERO
from repro.isa.opcodes import FP_FMT64, FP_NEGATE

W = 64


def f32(x: float) -> int:
    return struct.unpack("<I", struct.pack("<f", x))[0]


def to_f32(bits: int) -> float:
    return struct.unpack("<f", struct.pack("<I", bits))[0]


def f64(x: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", x))[0]


def to_f64(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", bits))[0]


def _adder(name, parent):
    return FpAdder(name, W, parent)


def _mul(name, parent):
    return FpMultiplier(name, W, parent)


def _fma(name, parent):
    return FpFma(name, W, parent)


class TestAdder:
    @pytest.mark.parametrize(
        "a,b",
        [(1.5, 2.25), (0.1, 0.2), (-7.5, 7.5), (1e30, -1e30), (3.0, -0.5)],
    )
    def test_f32_add_matches_oracle(self, a, b):
        tb, _ = run_unit(_adder, [UnitOp(0, f32(a), f32(b), dst1=3)])
        (t,) = tb.collected
        expect = struct.unpack("<f", struct.pack("<f", a + b))[0]
        assert to_f32(t.data_value) == expect

    def test_f32_subtract_via_negate(self):
        tb, _ = run_unit(_adder, [UnitOp(FP_NEGATE, f32(10.0), f32(4.5))])
        (t,) = tb.collected
        assert to_f32(t.data_value) == 5.5

    def test_f64_add(self):
        tb, _ = run_unit(
            _adder, [UnitOp(FP_FMT64, f64(1.0000000001), f64(2.0))]
        )
        (t,) = tb.collected
        assert to_f64(t.data_value) == 1.0000000001 + 2.0

    def test_zero_and_negative_flags(self):
        tb, _ = run_unit(_adder, [UnitOp(0, f32(2.5), f32(-2.5))])
        (t,) = tb.collected
        assert t.flag_value & FLAG_ZERO
        tb, _ = run_unit(_adder, [UnitOp(0, f32(1.0), f32(-3.0))])
        (t,) = tb.collected
        assert t.flag_value & FLAG_NEGATIVE

    def test_overflow_to_infinity_sets_overflow(self):
        big = f32(3.4e38)
        tb, _ = run_unit(_adder, [UnitOp(0, big, big)])
        (t,) = tb.collected
        assert math.isinf(to_f32(t.data_value))
        assert t.flag_value & FLAG_OVERFLOW

    def test_nan_sets_error(self):
        tb, _ = run_unit(_adder, [UnitOp(0, f32(float("inf")),
                                         f32(float("-inf")))])
        (t,) = tb.collected
        assert t.flag_value & FLAG_ERROR

    def test_fmt64_on_narrow_machine_errors_but_completes(self):
        tb, _ = run_unit(lambda n, p: FpAdder(n, 32, p),
                         [UnitOp(FP_FMT64, 1, 2, dst1=3)])
        (t,) = tb.collected
        assert t.data_value == 0 and t.flag_value & FLAG_ERROR
        assert t.data_reg == 3  # the promised write still lands


class TestMultiplier:
    @pytest.mark.parametrize(
        "a,b",
        [(1.5, 2.0), (0.1, 10.0), (-3.0, 7.0), (1e10, 1e10), (0.0, 5.5)],
    )
    def test_f32_mul_matches_oracle(self, a, b):
        tb, _ = run_unit(_mul, [UnitOp(0, f32(a), f32(b))])
        (t,) = tb.collected
        expect = struct.unpack("<f", struct.pack("<f", a * b))[0]
        got = to_f32(t.data_value)
        assert got == expect or (math.isnan(got) and math.isnan(expect))

    def test_f64_mul(self):
        tb, _ = run_unit(_mul, [UnitOp(FP_FMT64, f64(math.pi), f64(math.e))])
        (t,) = tb.collected
        assert to_f64(t.data_value) == math.pi * math.e


class TestFma:
    def test_fused_single_rounding(self):
        # binary32 product tails fit exactly in a double (24+24 < 53 sig
        # bits), so double math is an exact oracle for the fused result —
        # and distinguishes it from round-the-product-first mul-then-add.
        a, b, c = 1.0000001, 1.0000001, -1.0000002
        av, bv, cv = to_f32(f32(a)), to_f32(f32(b)), to_f32(f32(c))
        tb, _ = run_unit(_fma, [UnitOp(0, f32(av), f32(bv), op_c=f32(cv))])
        (t,) = tb.collected
        fused = to_f32(t.data_value)
        expect = to_f32(f32(av * bv + cv))
        unfused = to_f32(f32(to_f32(f32(av * bv)) + cv))
        assert fused == expect
        assert fused != unfused, "inputs must actually exercise the fusion"

    def test_negate_product(self):
        # c - a*b
        tb, _ = run_unit(
            _fma,
            [UnitOp(FP_NEGATE, f32(3.0), f32(2.0), op_c=f32(10.0))],
        )
        (t,) = tb.collected
        assert to_f32(t.data_value) == 4.0

    def test_accumulator_rides_in_op_c(self):
        tb, _ = run_unit(
            _fma, [UnitOp(0, f32(2.0), f32(3.0), op_c=f32(1.0), dst1=5)]
        )
        (t,) = tb.collected
        assert to_f32(t.data_value) == 7.0
        assert t.data_reg == 5


class TestPipelineShape:
    def test_initiation_interval_one(self):
        """A dependency-free burst drains at ~1 op/cycle, far below the
        serial latency*n bound — the property the OoO engine exploits."""
        n = 32
        ops = [UnitOp(0, f32(float(i)), f32(1.0)) for i in range(n)]
        tb, cycles = run_unit(_adder, ops)
        assert tb.completed == n
        assert cycles < n + 4 * FpAdder.latency_cycles
        assert cycles >= n  # can't beat one dispatch per cycle

    def test_latency_cycles_honest(self):
        """One op takes at least the declared pipeline latency."""
        tb, cycles = run_unit(_adder, [UnitOp(0, f32(1.0), f32(2.0))])
        assert cycles >= FpAdder.latency_cycles

    def test_results_in_dispatch_order(self):
        ops = [UnitOp(0, f32(float(i)), f32(0.5), dst1=i % 8)
               for i in range(10)]
        tb, _ = run_unit(_adder, ops)
        values = [to_f32(t.data_value) for t in tb.collected if t.has_data]
        assert values == [float(i) + 0.5 for i in range(10)]

    def test_declared_latencies_are_distinct_depths(self):
        assert FpAdder.latency_cycles == FpAdder.default_depth
        assert FpMultiplier.latency_cycles == FpMultiplier.default_depth
        assert FpFma.latency_cycles == FpFma.default_depth

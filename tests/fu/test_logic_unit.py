"""Unit tests for the logic unit (experiment T2, thesis Table 3.2)."""

import pytest

from repro.fu import LogicUnit, PipelinedLogicUnit, UnitOp, logic_datapath, run_unit
from repro.isa import FLAG_NEGATIVE, FLAG_PARITY, FLAG_ZERO, LogicOp

W = 32
MASK = (1 << W) - 1

A, B = 0b1100_1010, 0b1010_0110


class TestDatapath:
    @pytest.mark.parametrize(
        "op,expected",
        [
            (LogicOp.AND, A & B),
            (LogicOp.OR, A | B),
            (LogicOp.XOR, A ^ B),
            (LogicOp.NOT, ~A & MASK),
            (LogicOp.NAND, ~(A & B) & MASK),
            (LogicOp.NOR, ~(A | B) & MASK),
            (LogicOp.XNOR, ~(A ^ B) & MASK),
            (LogicOp.ANDN, A & ~B & MASK),
            (LogicOp.ORN, (A | (~B & MASK)) & MASK),
            (LogicOp.PASS, A),
        ],
    )
    def test_all_varieties(self, op, expected):
        value, _ = logic_datapath(int(op), A, B, W)
        assert value == expected

    def test_zero_flag(self):
        _, flags = logic_datapath(int(LogicOp.XOR), 5, 5, W)
        assert flags & FLAG_ZERO

    def test_negative_flag(self):
        _, flags = logic_datapath(int(LogicOp.NOT), 0, 0, W)
        assert flags & FLAG_NEGATIVE

    def test_parity_flag_even(self):
        _, flags = logic_datapath(int(LogicOp.PASS), 0b11, 0, W)
        assert flags & FLAG_PARITY
        _, flags = logic_datapath(int(LogicOp.PASS), 0b111, 0, W)
        assert not flags & FLAG_PARITY

    def test_undefined_variety_raises(self):
        with pytest.raises(ValueError):
            logic_datapath(0x7F, 1, 2, W)

    def test_one_input_ops_ignore_b(self):
        v1, _ = logic_datapath(int(LogicOp.NOT), A, 0, W)
        v2, _ = logic_datapath(int(LogicOp.NOT), A, MASK, W)
        assert v1 == v2


class TestUnit:
    def test_through_protocol(self):
        tb, _ = run_unit(
            lambda n, p: LogicUnit(n, W, p),
            [UnitOp(int(LogicOp.XOR), 0b1100, 0b1010, dst1=2, dst_flag=1)],
        )
        (t,) = tb.collected
        assert t.data_value == 0b0110
        assert t.data_reg == 2

    def test_issue_rate_every_second_cycle(self):
        n = 30
        ops = [UnitOp(int(LogicOp.AND), i, 0xF, dst1=2, dst_flag=1) for i in range(n)]
        tb, cycles = run_unit(lambda nm, p: LogicUnit(nm, W, p), ops)
        assert tb.completed == n
        assert cycles / n == pytest.approx(2.0, abs=0.2)

    def test_pipelined_variant(self):
        n = 30
        ops = [UnitOp(int(LogicOp.OR), i, 1, dst1=2, dst_flag=1) for i in range(n)]
        tb, cycles = run_unit(lambda nm, p: PipelinedLogicUnit(nm, W, p), ops)
        assert tb.completed == n
        assert cycles / n < 1.5

"""Tests for the paper's other stateful units (§IV.B examples)."""

import random

import pytest

from repro.fu.stateful import (
    CAM_CLEAR,
    CAM_COUNT,
    CAM_DELETE,
    CAM_FLAG_HIT,
    CAM_LOOKUP,
    CAM_STORE,
    HIST_CLEAR,
    HIST_PEAK,
    HIST_READ,
    HIST_SAMPLE,
    HIST_TOTAL,
    PRNG_NEXT,
    PRNG_SEED,
    AssociativeMemoryUnit,
    HistogramUnit,
    PrngUnit,
    cam_factory,
    histogram_factory,
    prng_factory,
    xorshift32,
)
from repro.host import CoprocessorDriver
from repro.isa import instructions as ins
from repro.system import SystemBuilder

HIST, PRNG, CAM = 0x30, 0x31, 0x32


@pytest.fixture
def driver():
    built = (
        SystemBuilder()
        .with_unit(HIST, histogram_factory(n_bins=16))
        .with_unit(PRNG, prng_factory())
        .with_unit(CAM, cam_factory(capacity=4))
        .build()
    )
    return CoprocessorDriver(built)


def _op(driver, unit, variety, a=0, b=0, dst=1, flag=1):
    driver.write_reg(14, a)
    driver.write_reg(15, b)
    driver.execute(ins.dispatch(unit, variety, dst1=dst, src1=14, src2=15,
                                dst_flag=flag))


class TestHistogram:
    def test_samples_accumulate_per_bin(self, driver):
        _op(driver, HIST, HIST_CLEAR)
        for v in (3, 3, 3, 7, 7, 16 + 3):  # bin 3 ×4 (16+3 hashes to 3), bin 7 ×2
            _op(driver, HIST, HIST_SAMPLE, a=v)
        _op(driver, HIST, HIST_READ, a=3, dst=1)
        assert driver.read_reg(1) == 4
        _op(driver, HIST, HIST_READ, a=7, dst=1)
        assert driver.read_reg(1) == 2

    def test_total_and_peak(self, driver):
        _op(driver, HIST, HIST_CLEAR)
        for v in (1, 2, 2, 2, 9):
            _op(driver, HIST, HIST_SAMPLE, a=v)
        _op(driver, HIST, HIST_TOTAL, dst=1)
        assert driver.read_reg(1) == 5
        _op(driver, HIST, HIST_PEAK, dst=1, flag=2)
        assert driver.read_reg(1) == 2
        assert driver.read_flags(2) & 0x1

    def test_clear_resets(self, driver):
        _op(driver, HIST, HIST_SAMPLE, a=5)
        _op(driver, HIST, HIST_CLEAR)
        _op(driver, HIST, HIST_TOTAL, dst=1)
        assert driver.read_reg(1) == 0

    def test_peak_empty_flag_clear(self, driver):
        _op(driver, HIST, HIST_CLEAR)
        _op(driver, HIST, HIST_PEAK, dst=1, flag=2)
        driver.read_reg(1)
        assert not driver.read_flags(2) & 0x1

    def test_matches_software_histogram(self, driver):
        rng = random.Random(5)
        values = [rng.randrange(0, 256) for _ in range(40)]
        _op(driver, HIST, HIST_CLEAR)
        for v in values:
            _op(driver, HIST, HIST_SAMPLE, a=v)
        sw = [0] * 16
        for v in values:
            sw[v % 16] += 1
        for b in range(16):
            _op(driver, HIST, HIST_READ, a=b, dst=1)
            assert driver.read_reg(1) == sw[b]

    def test_bins_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            HistogramUnit("h", 32, n_bins=12)


class TestPrng:
    def test_sequence_matches_reference(self, driver):
        _op(driver, PRNG, PRNG_SEED, a=0xDEADBEEF)
        state = 0xDEADBEEF
        for _ in range(5):
            _op(driver, PRNG, PRNG_NEXT, dst=1)
            state = xorshift32(state)
            assert driver.read_reg(1) == state

    def test_seed_zero_coerced(self, driver):
        _op(driver, PRNG, PRNG_SEED, a=0)
        _op(driver, PRNG, PRNG_NEXT, dst=1)
        assert driver.read_reg(1) == xorshift32(1)

    def test_deterministic_replay(self, driver):
        _op(driver, PRNG, PRNG_SEED, a=7)
        _op(driver, PRNG, PRNG_NEXT, dst=1)
        first = driver.read_reg(1)
        _op(driver, PRNG, PRNG_SEED, a=7)
        _op(driver, PRNG, PRNG_NEXT, dst=1)
        assert driver.read_reg(1) == first

    def test_xorshift_reference_period_smoke(self):
        seen = set()
        s = 1
        for _ in range(1000):
            s = xorshift32(s)
            assert s not in seen
            seen.add(s)


class TestAssociativeMemory:
    def test_store_lookup_roundtrip(self, driver):
        _op(driver, CAM, CAM_CLEAR)
        _op(driver, CAM, CAM_STORE, a=100, b=42)
        _op(driver, CAM, CAM_LOOKUP, a=100, dst=1, flag=2)
        assert driver.read_reg(1) == 42
        assert driver.read_flags(2) & CAM_FLAG_HIT

    def test_miss_clears_hit_flag(self, driver):
        _op(driver, CAM, CAM_CLEAR)
        _op(driver, CAM, CAM_LOOKUP, a=55, dst=1, flag=2)
        driver.read_reg(1)
        assert not driver.read_flags(2) & CAM_FLAG_HIT

    def test_store_overwrites_same_key(self, driver):
        _op(driver, CAM, CAM_CLEAR)
        _op(driver, CAM, CAM_STORE, a=5, b=10)
        _op(driver, CAM, CAM_STORE, a=5, b=20)
        _op(driver, CAM, CAM_LOOKUP, a=5, dst=1, flag=2)
        assert driver.read_reg(1) == 20
        _op(driver, CAM, CAM_COUNT, dst=1)
        assert driver.read_reg(1) == 1

    def test_delete(self, driver):
        _op(driver, CAM, CAM_CLEAR)
        _op(driver, CAM, CAM_STORE, a=5, b=10)
        _op(driver, CAM, CAM_DELETE, a=5)
        _op(driver, CAM, CAM_LOOKUP, a=5, dst=1, flag=2)
        driver.read_reg(1)
        assert not driver.read_flags(2) & CAM_FLAG_HIT

    def test_round_robin_replacement_when_full(self, driver):
        _op(driver, CAM, CAM_CLEAR)
        for k in range(4):                       # fill capacity 4
            _op(driver, CAM, CAM_STORE, a=k, b=k * 10)
        _op(driver, CAM, CAM_STORE, a=99, b=990)  # evicts slot 0 (key 0)
        _op(driver, CAM, CAM_LOOKUP, a=0, dst=1, flag=2)
        driver.read_reg(1)
        assert not driver.read_flags(2) & CAM_FLAG_HIT
        _op(driver, CAM, CAM_LOOKUP, a=99, dst=1, flag=2)
        assert driver.read_reg(1) == 990

    def test_count(self, driver):
        _op(driver, CAM, CAM_CLEAR)
        for k in (1, 2, 3):
            _op(driver, CAM, CAM_STORE, a=k, b=k)
        _op(driver, CAM, CAM_COUNT, dst=1)
        assert driver.read_reg(1) == 3

    def test_matches_python_dict_behaviour(self, driver):
        rng = random.Random(3)
        _op(driver, CAM, CAM_CLEAR)
        model: dict[int, int] = {}
        for _ in range(12):
            k, v = rng.randrange(6), rng.randrange(1000)
            if len(model) < 4 or k in model:   # stay within capacity → no eviction
                _op(driver, CAM, CAM_STORE, a=k, b=v)
                model[k] = v
        for k, v in model.items():
            _op(driver, CAM, CAM_LOOKUP, a=k, dst=1, flag=2)
            assert driver.read_reg(1) == v
            assert driver.read_flags(2) & CAM_FLAG_HIT


class TestCoexistence:
    def test_all_three_share_one_coprocessor(self, driver):
        """Stateful units interleave freely with the stateless case studies."""
        _op(driver, HIST, HIST_CLEAR)
        _op(driver, CAM, CAM_CLEAR)
        _op(driver, PRNG, PRNG_SEED, a=1234)
        driver.write_reg(1, 6)
        driver.write_reg(2, 7)
        driver.execute(ins.add(3, 1, 2, dst_flag=1))    # arithmetic unit
        _op(driver, PRNG, PRNG_NEXT, dst=4)
        _op(driver, HIST, HIST_SAMPLE, a=5)
        _op(driver, CAM, CAM_STORE, a=1, b=111)
        assert driver.read_reg(3) == 13
        assert driver.read_reg(4) == xorshift32(1234)
        _op(driver, CAM, CAM_LOOKUP, a=1, dst=5, flag=3)
        assert driver.read_reg(5) == 111
        driver.execute(ins.fence())
        driver.run_until_quiet()
        assert driver.soc.rtm.lockmgr.all_free

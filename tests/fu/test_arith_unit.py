"""Unit tests for the arithmetic unit through the FU protocol (experiment T1/C2)."""

import pytest

from repro.fu import ArithmeticUnit, PipelinedArithmeticUnit, UnitOp, run_unit
from repro.isa import FLAG_CARRY, FLAG_ZERO, ArithOp

W = 32
MASK = (1 << W) - 1


def _arith_factory(name, parent):
    return ArithmeticUnit(name, W, parent)


def _run_one(op: ArithOp, a: int, b: int, flag_in: int = 0):
    tb, cycles = run_unit(_arith_factory, [UnitOp(int(op), a, b, flag_in, dst1=3, dst_flag=1)])
    return tb, cycles


class TestSingleOperations:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            (ArithOp.ADD, 20, 22, 42),
            (ArithOp.SUB, 100, 58, 42),
            (ArithOp.INC, 41, 0, 42),
            (ArithOp.DEC, 43, 0, 42),
            (ArithOp.NEG, 0, 5, (-5) & MASK),
        ],
    )
    def test_data_result(self, op, a, b, expected):
        tb, _ = _run_one(op, a, b)
        data = [t for t in tb.collected if t.has_data]
        assert len(data) == 1
        assert data[0].data_value == expected
        assert data[0].data_reg == 3

    def test_flags_ride_with_data(self):
        tb, _ = _run_one(ArithOp.ADD, MASK, 1)
        (t,) = tb.collected
        assert t.has_data and t.has_flags
        assert t.data_value == 0
        assert t.flag_value & FLAG_CARRY
        assert t.flag_value & FLAG_ZERO
        assert t.flag_reg == 1

    def test_cmp_sends_flags_only(self):
        tb, _ = _run_one(ArithOp.CMP, 7, 7)
        (t,) = tb.collected
        assert not t.has_data
        assert t.has_flags
        assert t.flag_value & FLAG_ZERO

    def test_adc_consumes_flag_input(self):
        tb, _ = _run_one(ArithOp.ADC, 1, 2, flag_in=FLAG_CARRY)
        (t,) = tb.collected
        assert t.data_value == 4


class TestThroughput:
    def test_area_optimised_every_second_cycle(self):
        """Thesis §3.2.2: 'able to accept an instruction every second clock cycle'."""
        n = 40
        ops = [UnitOp(int(ArithOp.ADD), i, 1, dst1=3, dst_flag=1) for i in range(n)]
        tb, cycles = run_unit(_arith_factory, ops)
        assert tb.completed == n
        assert cycles / n == pytest.approx(2.0, abs=0.2)

    def test_pipelined_one_per_cycle(self):
        n = 40
        ops = [UnitOp(int(ArithOp.ADD), i, 1, dst1=3, dst_flag=1) for i in range(n)]
        tb, cycles = run_unit(
            lambda nm, p: PipelinedArithmeticUnit(nm, W, p), ops
        )
        assert tb.completed == n
        assert cycles / n == pytest.approx(1.0, abs=0.2)

    def test_contended_arbiter_slows_issue(self):
        n = 20
        ops = [UnitOp(int(ArithOp.ADD), i, 1, dst1=3, dst_flag=1) for i in range(n)]
        _, free = run_unit(_arith_factory, ops, ack_every=1)
        _, contended = run_unit(_arith_factory, ops, ack_every=3)
        assert contended > free

    def test_results_in_dispatch_order(self):
        n = 10
        ops = [UnitOp(int(ArithOp.ADD), i, 0, dst1=3, dst_flag=1) for i in range(n)]
        tb, _ = run_unit(_arith_factory, ops)
        values = [t.data_value for t in tb.collected if t.has_data]
        assert values == list(range(n))


class TestMultiWordChains:
    def test_adc_chain_matches_bigint(self):
        a, b = 0xFFFF_FFFF_0000_0001, 0x0000_0001_FFFF_FFFF
        ops = [
            UnitOp(int(ArithOp.ADD), a & MASK, b & MASK, dst1=3, dst_flag=1),
        ]
        tb, _ = run_unit(_arith_factory, ops)
        low = tb.collected[-1]
        ops2 = [
            UnitOp(int(ArithOp.ADC), a >> 32, b >> 32, flag_in=low.flag_value,
                   dst1=4, dst_flag=1),
        ]
        tb2, _ = run_unit(_arith_factory, ops2)
        high = tb2.collected[-1]
        got = (high.data_value << 32) | low.data_value
        assert got == (a + b) & 0xFFFF_FFFF_FFFF_FFFF


def test_wide_word_unit():
    unit_f = lambda n, p: ArithmeticUnit(n, 64, p)
    ops = [UnitOp(int(ArithOp.ADD), (1 << 63) + 5, (1 << 63) + 7, dst1=1, dst_flag=0)]
    tb, _ = run_unit(unit_f, ops)
    (t,) = tb.collected
    assert t.data_value == 12  # wrapped mod 2^64
    assert t.flag_value & FLAG_CARRY

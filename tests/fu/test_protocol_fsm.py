"""Experiment F6: the FU protocol FSM and its monitor.

Verifies the protocol invariants of paper Fig. 6 / thesis Fig. 2.18 on the
case-study units, and that the monitor actually catches violations when a
deliberately broken unit commits them.
"""

import pytest

from repro.fu import (
    ArithmeticUnit,
    FuComputation,
    FunctionalUnit,
    ProtocolMonitor,
    ProtocolViolation,
    Transfer,
    UnitOp,
    run_unit,
)
from repro.hdl import Component, Simulator
from repro.isa import ArithOp

W = 32


class TestMonitorOnGoodUnits:
    def test_arith_unit_is_clean(self):
        ops = [UnitOp(int(ArithOp.ADD), i, 1, dst1=1, dst_flag=0) for i in range(25)]
        tb, _ = run_unit(lambda n, p: ArithmeticUnit(n, W, p), ops)
        assert tb.monitor.dispatch_count == 25
        assert tb.monitor.transfer_count == 25

    def test_transfer_count_tracks_bursts(self):
        class Two(FunctionalUnit):
            pass

        from repro.fu import AreaOptimizedFU

        class TwoOut(AreaOptimizedFU):
            def compute(self, s):
                return FuComputation(data1=1, data2=2)

        ops = [UnitOp(0, dst1=1, dst2=2) for _ in range(4)]
        tb, _ = run_unit(lambda n, p: TwoOut(n, W, p), ops)
        assert tb.monitor.transfer_count == 8  # two transfers per op


class MutatingUnit(FunctionalUnit):
    """Deliberately violates payload stability while awaiting ack."""

    def __init__(self, name, word_bits, parent=None):
        super().__init__(name, word_bits, parent)
        self._counter = self.reg("ctr", 8, 0)
        self._armed = self.reg("armed", 1, 0)

        @self.comb
        def _drive():
            self.dp.idle.set(not self._armed.value)
            if self._armed.value:
                # payload changes every cycle — a protocol violation
                self.rp.present(Transfer(1, self._counter.value))
            else:
                self.rp.present(None)

        @self.seq
        def _tick():
            self._counter.nxt = self._counter.value + 1
            if self.dp.dispatch.value:
                self._armed.nxt = 1
            elif self.rp.ack.value:
                self._armed.nxt = 0


def test_monitor_catches_unstable_payload():
    with pytest.raises(ProtocolViolation, match="pending transfer changed"):
        # never ack, so the unstable payload is observed across cycles
        run_unit(lambda n, p: MutatingUnit(n, W, p),
                 [UnitOp(0, dst1=1)], max_cycles=10, ack_every=1000)


class EmptyTransferUnit(FunctionalUnit):
    """Presents ready with neither write half valid."""

    def __init__(self, name, word_bits, parent=None):
        super().__init__(name, word_bits, parent)

        @self.comb
        def _drive():
            self.dp.idle.set(1)
            self.rp.ready.set(1)
            self.rp.data_valid.set(0)
            self.rp.flag_valid.set(0)

        self.seq(lambda: None)


def test_monitor_catches_empty_transfer():
    from repro.fu.testbench import FuTestbench

    tb = FuTestbench(lambda n, p: EmptyTransferUnit(n, W, p))
    sim = Simulator(tb)
    sim.reset()
    with pytest.raises(ProtocolViolation, match="no write halves"):
        sim.step(3)


class RogueDispatcher(Component):
    """Strobes dispatch while the unit is busy."""

    def __init__(self):
        super().__init__("rogue")
        self.unit = ArithmeticUnit("dut", W, parent=self)
        self.mon = ProtocolMonitor("mon", self.unit.dp, self.unit.rp, parent=self)
        self.cycle = self.reg("cycle", 8, 0)

        @self.comb
        def _drive():
            # dispatch unconditionally, ignoring idle
            self.unit.dp.dispatch.set(1)
            self.unit.dp.variety.set(int(ArithOp.ADD))
            self.unit.rp.ack.set(self.unit.rp.ready.value)

        @self.seq
        def _tick():
            self.cycle.nxt = self.cycle.value + 1


def test_monitor_catches_dispatch_while_busy():
    sim = Simulator(RogueDispatcher())
    sim.reset()
    with pytest.raises(ProtocolViolation, match="not idle"):
        sim.step(5)


def test_fsm_reset_returns_to_idle():
    """'If the reset signal is asserted the FSM moves to state Idle' (Fig. 2.18)."""
    from repro.fu import FuState
    from repro.fu.testbench import FuTestbench

    tb = FuTestbench(lambda n, p: ArithmeticUnit(n, W, p))
    sim = Simulator(tb)
    sim.reset()
    tb.enqueue([UnitOp(int(ArithOp.ADD), 1, 2, dst1=1, dst_flag=0)])
    sim.step(1)  # dispatched; unit now mid-flight
    assert tb.unit.state != FuState.IDLE
    sim.reset()
    assert tb.unit.state == FuState.IDLE
    assert not tb.unit.rp.ready.value

"""Unit tests for the functional-unit registry."""

import pytest

from repro.fu import (
    ArithmeticUnit,
    LogicUnit,
    PipelinedArithmeticUnit,
    UnitRegistry,
    default_registry,
)
from repro.isa import Opcode


class TestRegistry:
    def test_default_registry_has_case_study_units(self):
        reg = default_registry()
        assert set(reg.codes()) == {Opcode.ARITH, Opcode.LOGIC}

    def test_build_produces_units(self):
        reg = default_registry()
        unit = reg.build(Opcode.ARITH, "a", 32)
        assert isinstance(unit, ArithmeticUnit)
        assert isinstance(reg.build(Opcode.LOGIC, "l", 32), LogicUnit)

    def test_pipelined_flag_switches_implementations(self):
        reg = default_registry(pipelined=True)
        assert isinstance(reg.build(Opcode.ARITH, "a", 32), PipelinedArithmeticUnit)

    def test_word_bits_forwarded(self):
        unit = default_registry().build(Opcode.ARITH, "a", 64)
        assert unit.word_bits == 64

    def test_duplicate_code_rejected(self):
        reg = default_registry()
        with pytest.raises(ValueError, match="already registered"):
            reg.register(Opcode.ARITH, lambda n, w, p: ArithmeticUnit(n, w, p))

    def test_code_range_enforced(self):
        reg = UnitRegistry()
        with pytest.raises(ValueError):
            reg.register(0x05, lambda n, w, p: ArithmeticUnit(n, w, p))
        with pytest.raises(ValueError):
            reg.register(0x100, lambda n, w, p: ArithmeticUnit(n, w, p))

    def test_unknown_code(self):
        with pytest.raises(KeyError):
            UnitRegistry().build(0x42, "x", 32)

    def test_copy_is_independent(self):
        reg = default_registry()
        dup = reg.copy()
        dup.register(0x42, lambda n, w, p: ArithmeticUnit(n, w, p))
        assert 0x42 not in reg.codes()
        assert 0x42 in dup.codes()

    def test_user_unit_registration(self):
        reg = default_registry()
        reg.register(0x30, lambda n, w, p: LogicUnit(n, w, p))
        assert isinstance(reg.build(0x30, "u", 32), LogicUnit)


class TestLatencyCrossCheck:
    """The table row's latency must agree with the unit it routes to."""

    def test_fp_registry_rows_match_pipeline_depths(self):
        """Every FP unit registers with latency == its actual pipeline
        depth, with the explicit value accepted by the cross-check."""
        from repro.fu.registry import fp_registry
        from repro.rtm.futable import FunctionalUnitTable

        reg = fp_registry()
        table = FunctionalUnitTable()
        fp_rows = 0
        for code in reg.codes():
            unit = reg.build(code, f"u{code:02x}", 64)
            entry = table.add(code, unit, latency=unit.latency_cycles)
            assert entry.latency == unit.latency_cycles
            depth = getattr(unit, "pipeline_depth", None)
            if depth is not None:
                assert entry.latency == depth
                fp_rows += 1
        assert fp_rows >= 3  # adder, multiplier, FMA

    def test_custom_depths_propagate_to_rows(self):
        from repro.fu.registry import fp_registry
        from repro.isa.opcodes import Opcode as Op
        from repro.rtm.futable import FunctionalUnitTable

        reg = fp_registry(add_depth=9)
        unit = reg.build(Op.FPADD, "fpadd", 64)
        entry = FunctionalUnitTable().add(Op.FPADD, unit)
        assert entry.latency == unit.pipeline_depth == 9

    def test_latency_mismatch_raises_at_registration(self):
        from repro.fu.registry import fp_registry
        from repro.isa.opcodes import Opcode as Op
        from repro.rtm.futable import FunctionalUnitTable

        unit = fp_registry().build(Op.FPMUL, "fpmul", 64)
        with pytest.raises(ValueError, match="contradicts"):
            FunctionalUnitTable().add(Op.FPMUL, unit,
                                      latency=unit.pipeline_depth + 1)

    def test_trust_latency_bypasses_cross_check(self):
        """The deliberate-lie escape hatch used by the lint fixtures."""
        from repro.fu.registry import fp_registry
        from repro.isa.opcodes import Opcode as Op
        from repro.rtm.futable import FunctionalUnitTable

        unit = fp_registry().build(Op.FPADD, "fpadd", 64)
        entry = FunctionalUnitTable().add(Op.FPADD, unit, latency=1,
                                          trust_latency=True)
        assert entry.latency == 1

"""Unit tests for the functional-unit registry."""

import pytest

from repro.fu import (
    ArithmeticUnit,
    LogicUnit,
    PipelinedArithmeticUnit,
    UnitRegistry,
    default_registry,
)
from repro.isa import Opcode


class TestRegistry:
    def test_default_registry_has_case_study_units(self):
        reg = default_registry()
        assert set(reg.codes()) == {Opcode.ARITH, Opcode.LOGIC}

    def test_build_produces_units(self):
        reg = default_registry()
        unit = reg.build(Opcode.ARITH, "a", 32)
        assert isinstance(unit, ArithmeticUnit)
        assert isinstance(reg.build(Opcode.LOGIC, "l", 32), LogicUnit)

    def test_pipelined_flag_switches_implementations(self):
        reg = default_registry(pipelined=True)
        assert isinstance(reg.build(Opcode.ARITH, "a", 32), PipelinedArithmeticUnit)

    def test_word_bits_forwarded(self):
        unit = default_registry().build(Opcode.ARITH, "a", 64)
        assert unit.word_bits == 64

    def test_duplicate_code_rejected(self):
        reg = default_registry()
        with pytest.raises(ValueError, match="already registered"):
            reg.register(Opcode.ARITH, lambda n, w, p: ArithmeticUnit(n, w, p))

    def test_code_range_enforced(self):
        reg = UnitRegistry()
        with pytest.raises(ValueError):
            reg.register(0x05, lambda n, w, p: ArithmeticUnit(n, w, p))
        with pytest.raises(ValueError):
            reg.register(0x100, lambda n, w, p: ArithmeticUnit(n, w, p))

    def test_unknown_code(self):
        with pytest.raises(KeyError):
            UnitRegistry().build(0x42, "x", 32)

    def test_copy_is_independent(self):
        reg = default_registry()
        dup = reg.copy()
        dup.register(0x42, lambda n, w, p: ArithmeticUnit(n, w, p))
        assert 0x42 not in reg.codes()
        assert 0x42 in dup.codes()

    def test_user_unit_registration(self):
        reg = default_registry()
        reg.register(0x30, lambda n, w, p: LogicUnit(n, w, p))
        assert isinstance(reg.build(0x30, "u", 32), LogicUnit)

"""Unit tests for the three FU skeletons (experiments F5, F6, F6b)."""

import pytest

from repro.fu import (
    AreaOptimizedFU,
    FuComputation,
    FuState,
    MinimalFunctionalUnit,
    PipelinedFunctionalUnit,
    Transfer,
    UnitOp,
    run_unit,
)

W = 32
MASK = (1 << W) - 1


class Doubler(MinimalFunctionalUnit):
    def compute(self, s):
        return FuComputation(data1=(s.op_a * 2) & MASK)


class SlowSquare(AreaOptimizedFU):
    """Multi-cycle datapath exercising the EXECUTE countdown."""

    def __init__(self, name, word_bits, parent=None, cycles=3):
        super().__init__(name, word_bits, parent, execute_cycles=cycles)

    def compute(self, s):
        return FuComputation(data1=(s.op_a * s.op_a) & MASK, flags=0)


class TwoResult(AreaOptimizedFU):
    """An instruction with two data results → two transfers (Fig 2.18 states)."""

    def compute(self, s):
        return FuComputation(data1=s.op_a + 1, data2=s.op_b + 1, flags=0x5)


class NoOutput(AreaOptimizedFU):
    """Fig. 2.18 'Completion / No output' arc."""

    def compute(self, s):
        return FuComputation()


class PipeTriple(PipelinedFunctionalUnit):
    def compute(self, s):
        return FuComputation(data1=(s.op_a * 3) & MASK)


class TestMinimal:
    def test_computes_and_routes_destination(self):
        tb, _ = run_unit(lambda n, p: Doubler(n, W, p), [UnitOp(0, 21, dst1=7)])
        (t,) = tb.collected
        assert t.data_value == 42
        assert t.data_reg == 7
        assert not t.has_flags  # minimal units carry no flags

    def test_ack_forwarding_gives_one_per_cycle(self):
        ops = [UnitOp(0, i, dst1=1) for i in range(20)]
        tb, cycles = run_unit(lambda n, p: Doubler(n, W, p, ack_forwarding=True), ops)
        assert cycles / 20 <= 1.2

    def test_without_forwarding_every_second_cycle(self):
        ops = [UnitOp(0, i, dst1=1) for i in range(20)]
        tb, cycles = run_unit(lambda n, p: Doubler(n, W, p, ack_forwarding=False), ops)
        assert cycles / 20 == pytest.approx(2.0, abs=0.2)

    def test_minimal_must_produce_data(self):
        class Broken(MinimalFunctionalUnit):
            def compute(self, s):
                return FuComputation()

        with pytest.raises(ValueError):
            run_unit(lambda n, p: Broken(n, W, p), [UnitOp(0, 1, dst1=1)])


class TestAreaOptimized:
    def test_fsm_walks_idle_execute_send(self):
        tb, _ = run_unit(lambda n, p: SlowSquare(n, W, p, cycles=3),
                         [UnitOp(0, 6, dst1=2, dst_flag=0)])
        assert tb.collected[0].data_value == 36
        assert tb.unit.state == FuState.IDLE

    def test_multi_cycle_execute_latency(self):
        ops = [UnitOp(0, 3, dst1=2, dst_flag=0)]
        _, fast = run_unit(lambda n, p: SlowSquare(n, W, p, cycles=1), ops)
        _, slow = run_unit(lambda n, p: SlowSquare(n, W, p, cycles=5), ops)
        assert slow == fast + 4

    def test_two_result_instruction_takes_two_transfers(self):
        tb, _ = run_unit(lambda n, p: TwoResult(n, W, p),
                         [UnitOp(0, 10, 20, dst1=1, dst2=2, dst_flag=3)])
        assert len(tb.collected) == 2
        first, second = tb.collected
        assert first.data_value == 11 and first.data_reg == 1
        assert first.has_flags and not first.last
        assert second.data_value == 21 and second.data_reg == 2
        assert second.last

    def test_no_output_completes_without_transfer(self):
        tb, cycles = run_unit(lambda n, p: NoOutput(n, W, p), [UnitOp(0, 1)])
        assert tb.collected == []
        assert tb.dispatched == 1
        assert tb.unit.state == FuState.IDLE

    def test_invalid_execute_cycles(self):
        with pytest.raises(ValueError):
            SlowSquare("x", W, cycles=0)


class TestPipelined:
    def test_results_correct_and_ordered(self):
        ops = [UnitOp(0, i, dst1=1) for i in range(12)]
        tb, _ = run_unit(lambda n, p: PipeTriple(n, W, p, pipeline_depth=4), ops)
        assert [t.data_value for t in tb.collected] == [3 * i for i in range(12)]

    def test_throughput_one_per_cycle(self):
        n = 32
        ops = [UnitOp(0, i, dst1=1) for i in range(n)]
        _, cycles = run_unit(lambda nm, p: PipeTriple(nm, W, p, pipeline_depth=3), ops)
        assert cycles / n < 1.3

    def test_fifo_bound_backpressure(self):
        # a contended arbiter (1 ack / 4 cycles) must not lose results
        n = 16
        ops = [UnitOp(0, i, dst1=1) for i in range(n)]
        tb, cycles = run_unit(
            lambda nm, p: PipeTriple(nm, W, p, pipeline_depth=2), ops, ack_every=4
        )
        assert tb.completed == n
        assert [t.data_value for t in tb.collected] == [3 * i for i in range(n)]
        assert cycles >= 4 * n - 8  # drain-rate bound

    def test_fifo_must_exceed_depth(self):
        with pytest.raises(ValueError):
            PipeTriple("x", W, pipeline_depth=4, fifo_depth=4)

    def test_latency_matches_depth(self):
        for depth in (1, 3, 6):
            unit = PipeTriple("x", W, pipeline_depth=depth)
            assert unit.latency_cycles == depth


def test_transfer_expansion_rules():
    from repro.fu.protocol import DispatchSample

    sample = DispatchSample(variety=0, op_a=0, op_b=0, flag_in=0,
                            dst1=1, dst2=2, dst_flag=3)
    # data+flags → one combined transfer
    ts = FuComputation(data1=5, flags=0x2).transfers(sample)
    assert len(ts) == 1 and ts[0].has_data and ts[0].has_flags
    # flags only → one flag transfer
    ts = FuComputation(flags=0x2).transfers(sample)
    assert len(ts) == 1 and not ts[0].has_data
    # two data + flags → two transfers, flags on the first
    ts = FuComputation(data1=1, data2=2, flags=0x4).transfers(sample)
    assert len(ts) == 2
    assert ts[0].has_flags and not ts[0].last
    assert ts[1].last and ts[1].data_reg == 2
    # nothing → no transfers
    assert FuComputation().transfers(sample) == ()

"""Bit-level UART transceiver tests (the prototyping serial link, §III)."""

import pytest

from repro.hdl import Component, Simulator, Tracer
from repro.messages.uart import BITS_PER_FRAME, BYTES_PER_WORD, UartLink, UartRx, UartTx


class UartPair(Component):
    """TX wired to RX over the 1-bit line, with scripted traffic."""

    def __init__(self, divisor=4):
        super().__init__("up")
        self.tx = UartTx("tx", divisor, parent=self)
        self.rx = UartRx("rx", divisor, parent=self)
        self.to_send: list[int] = []
        self.received: list[int] = []

        @self.comb(always=True)
        def _drive():
            self.rx.line.set(self.tx.line.value)
            self.tx.inp.valid.set(1 if self.to_send else 0)
            if self.to_send:
                self.tx.inp.payload.set(self.to_send[0])
            self.rx.out.ready.set(1)

        @self.seq
        def _tick():
            if self.tx.inp.fires():
                self.to_send.pop(0)
            if self.rx.out.fires():
                self.received.append(self.rx.out.payload.value)


WORDS = [0x0000_0000, 0xFFFF_FFFF, 0xDEAD_BEEF, 0x0123_4567, 0xA5A5_5A5A]


class TestUartPair:
    @pytest.mark.parametrize("divisor", [2, 4, 7])
    def test_words_survive_the_wire(self, divisor):
        pair = UartPair(divisor)
        sim = Simulator(pair)
        sim.reset()
        pair.to_send = list(WORDS)
        budget = (len(WORDS) + 1) * BYTES_PER_WORD * BITS_PER_FRAME * divisor + 100
        sim.run_until(lambda: len(pair.received) == len(WORDS), budget)
        assert pair.received == WORDS

    def test_line_idles_high(self):
        pair = UartPair(4)
        sim = Simulator(pair)
        sim.reset()
        sim.settle()
        assert pair.tx.line.value == 1
        sim.step(5)
        assert pair.tx.line.value == 1

    def test_line_toggles_during_transmission(self):
        pair = UartPair(4)
        sim = Simulator(pair)
        sim.reset()
        tracer = Tracer(sim, [pair.tx.line])
        pair.to_send = [0x0000_00AA]
        sim.step(4 * BITS_PER_FRAME * 4 + 20)
        assert tracer.count_transitions(pair.tx.line) >= 8

    def test_no_framing_errors_on_clean_line(self):
        pair = UartPair(3)
        sim = Simulator(pair)
        sim.reset()
        pair.to_send = list(WORDS)
        sim.run_until(lambda: len(pair.received) == len(WORDS), 50_000)
        assert pair.rx.framing_errors == 0

    def test_throughput_matches_baud(self):
        divisor = 4
        pair = UartPair(divisor)
        sim = Simulator(pair)
        sim.reset()
        pair.to_send = [1, 2, 3]
        start = sim.now
        sim.run_until(lambda: len(pair.received) == 3, 20_000)
        per_word = (sim.now - start) / 3
        nominal = BYTES_PER_WORD * BITS_PER_FRAME * divisor
        assert per_word >= nominal  # cannot beat the wire

    def test_divisor_validation(self):
        with pytest.raises(ValueError):
            UartTx("t", 0)
        with pytest.raises(ValueError):
            UartRx("r", 1)


class TestUartLinkInSystem:
    def test_full_coprocessor_over_serial(self):
        """The paper's actual setup: the whole framework behind a UART."""
        from repro.config import FrameworkConfig
        from repro.host import CoprocessorDriver
        from repro.hdl import Simulator as Sim
        from repro.messages.transceiver import HostPort, Receiver, Transmitter
        from repro.rtm.rtm import RegisterTransferMachine, _connect
        from repro.isa import instructions as ins

        class SerialSoc(Component):
            def __init__(self):
                super().__init__("soc")
                cfg = FrameworkConfig()
                self.config = cfg
                self.host = HostPort("host", parent=self)
                self.link = UartLink("link", divisor=2, parent=self)
                self.receiver = Receiver("receiver", parent=self)
                self.transmitter = Transmitter("transmitter", parent=self)
                self.rtm = RegisterTransferMachine("rtm", cfg, parent=self)
                _connect(self, self.host.tx, self.link.tx_down.inp)
                _connect(self, self.link.rx_down.out, self.receiver.chan)
                _connect(self, self.receiver.out, self.rtm.words_in)
                _connect(self, self.rtm.words_out, self.transmitter.inp)
                _connect(self, self.transmitter.chan, self.link.tx_up.inp)
                _connect(self, self.link.rx_up.out, self.host.rx)

            @property
            def busy(self):
                return bool(self.host.tx_pending or self.link.tx_down.busy
                            or self.link.tx_up.busy)

        soc = SerialSoc()
        sim = Sim(soc)
        sim.reset()

        class FakeBuilt:
            pass

        built = FakeBuilt()
        built.soc = soc
        built.sim = sim
        built.config = soc.config
        driver = CoprocessorDriver(built)
        driver.write_reg(1, 20)
        driver.write_reg(2, 22)
        driver.execute(ins.add(3, 1, 2, dst_flag=1))
        value = driver.read_reg(3, max_cycles=200_000)
        assert value == 42
        # the serial word time dominates everything (§III's argument)
        assert driver.cycles > 10 * soc.link.cycles_per_word
"""Unit tests for the sequence-numbered, checksummed frame trailer layer."""

import pytest

from repro.messages import (
    NACK_NO_BASELINE,
    TRAILER_MAGIC,
    DataRecord,
    Exec,
    Framer,
    Halted,
    ReliableDeframer,
    ReliableFramer,
    Reset,
    WriteReg,
    crc16,
    make_nack_info,
    make_trailer,
    parse_nack_info,
    seq_before,
    split_trailer,
    trailer_crc,
)

MESSAGES = [Exec(0x0102_0304_0506_0708), WriteReg(3, 0xABCD), Reset(), Halted()]


def _deliveries(events):
    return [e[1] for e in events if e[0] == "deliver"]


class TestCrcAndTrailer:
    def test_crc_known_properties(self):
        assert crc16([]) == 0xFFFF
        a, b = crc16([1, 2, 3]), crc16([1, 2, 4])
        assert a != b
        assert crc16([1, 2, 3]) == a  # stable

    def test_trailer_roundtrip(self):
        frame = [0x01020003, 0xDEAD, 0xBEEF]
        t = make_trailer(0x7F, frame)
        magic, seq, crc = split_trailer(t)
        assert magic == TRAILER_MAGIC
        assert seq == 0x7F
        assert crc == trailer_crc(0x7F, frame)

    def test_crc_covers_the_seq_byte(self):
        # A bit flip in the trailer's seq field must not yield another
        # valid trailer — otherwise a fault can renumber an intact frame
        # and forge Go-Back-N ordering.
        frame = [0x01020003, 0xDEAD, 0xBEEF]
        t = make_trailer(5, frame)
        forged_seq = ((5 ^ 0x1) & 0xFF)
        forged = (t & ~(0xFF << 16)) | (forged_seq << 16)
        _, seq, crc = split_trailer(forged)
        assert crc != trailer_crc(seq, frame)

    def test_seq_before_wraps(self):
        assert seq_before(0, 1)
        assert seq_before(250, 3)       # modular wrap
        assert not seq_before(3, 250)
        assert not seq_before(5, 5)

    def test_nack_info_roundtrip(self):
        assert parse_nack_info(make_nack_info(42)) == (42, False)
        expected, no_baseline = parse_nack_info(make_nack_info(None))
        assert expected is None and no_baseline
        assert make_nack_info(None) & NACK_NO_BASELINE
        # a legacy BAD_MESSAGE info word is not a NACK
        assert parse_nack_info(0x0102_0003) is None


class TestReliableFramer:
    def test_appends_trailer_with_increasing_seq(self):
        f = ReliableFramer()
        plain = Framer()
        for i, msg in enumerate(MESSAGES):
            words = f.frame(msg)
            base = plain.frame(msg)
            assert words[:-1] == base
            magic, seq, crc = split_trailer(words[-1])
            assert magic == TRAILER_MAGIC
            assert seq == i == f.last_seq
            assert crc == trailer_crc(i, base)

    def test_seq_wraps_at_256(self):
        f = ReliableFramer(start_seq=254)
        seqs = [split_trailer(f.frame(Reset())[-1])[1] for _ in range(4)]
        assert seqs == [254, 255, 0, 1]


class TestReliableDeframer:
    def test_clean_stream_roundtrip(self):
        f, d = ReliableFramer(), ReliableDeframer()
        for msg in MESSAGES:
            d.push_all(f.frame(msg))
        got = _deliveries(d.take_events())
        assert got == MESSAGES
        assert d.stats.delivered == len(MESSAGES)
        assert d.stats.crc_failures == 0
        assert not d.mid_frame

    def test_corrupt_word_rejected_and_resynced(self):
        f, d = ReliableFramer(), ReliableDeframer()
        bad = f.frame(WriteReg(1, 0x55))
        bad[1] ^= 0x4  # flip a payload bit
        d.push_all(bad)
        d.push_all(f.frame(WriteReg(2, 0x66)))
        got = _deliveries(d.take_events())
        assert got == [WriteReg(2, 0x66)]
        assert d.stats.crc_failures >= 1
        assert d.stats.resyncs >= 1

    def test_corrupt_header_resynced(self):
        f, d = ReliableFramer(), ReliableDeframer()
        frame = f.frame(Reset())
        d.push(0xFF00_0000)  # unknown message type
        d.push_all(frame)
        assert _deliveries(d.take_events()) == [Reset()]
        assert d.stats.header_rejects >= 1

    def test_strict_order_gap_is_not_delivered(self):
        f = ReliableFramer()
        d = ReliableDeframer(strict_order=True)
        first, second, third = (f.frame(WriteReg(i, i)) for i in range(3))
        d.push_all(first)
        d.push_all(third)  # frame 1 lost in transit
        events = d.take_events()
        assert _deliveries(events) == [WriteReg(0, 0)]
        assert ("gap", 1, 2) in events
        assert d.stats.seq_gaps == 1
        # retransmission arrives: in-order delivery resumes
        d.push_all(second)
        d.push_all(third)
        assert _deliveries(d.take_events()) == [WriteReg(1, 1), WriteReg(2, 2)]

    def test_tolerant_mode_delivers_through_gaps(self):
        f = ReliableFramer()
        d = ReliableDeframer(strict_order=False)
        frames = [f.frame(WriteReg(i, i)) for i in range(3)]
        d.push_all(frames[0])
        d.push_all(frames[2])  # gap: frame 1 lost
        events = d.take_events()
        assert _deliveries(events) == [WriteReg(0, 0), WriteReg(2, 2)]
        assert d.stats.seq_gaps == 1

    def test_duplicate_detected(self):
        f = ReliableFramer()
        d = ReliableDeframer(strict_order=True)
        frame = f.frame(WriteReg(7, 9))
        d.push_all(frame)
        d.push_all(frame)  # byte-identical retransmission
        events = d.take_events()
        assert _deliveries(events) == [WriteReg(7, 9)]
        dups = [e for e in events if e[0] == "duplicate"]
        assert len(dups) == 1 and dups[0][1] == WriteReg(7, 9)
        assert d.stats.duplicates == 1

    def test_drop_head_unsticks_partial_frame(self):
        f, d = ReliableFramer(), ReliableDeframer()
        frame = f.frame(WriteReg(1, 2))
        d.push_all(frame[:-1])  # trailer lost: scanner waits forever
        assert d.mid_frame
        for _ in range(len(frame)):
            d.drop_head()
        assert not d.mid_frame
        assert d.stats.forced_drops >= 1
        # and the next intact frame still parses
        d.push_all(f.frame(WriteReg(3, 4)))
        assert _deliveries(d.take_events()) == [WriteReg(3, 4)]

    def test_never_raises_on_garbage(self):
        d = ReliableDeframer()
        for w in (0xFFFFFFFF, 0x00000000, 0x12345678, 0xC3C3C3C3) * 40:
            d.push(w)  # must not raise
        assert d.stats.words_dropped > 0

    def test_multiword_payload(self):
        f = ReliableFramer(data_words=2)
        d = ReliableDeframer(data_words=2)
        msg = WriteReg(1, 0x1_2345_6789)
        d.push_all(f.frame(msg))
        assert _deliveries(d.take_events()) == [msg]

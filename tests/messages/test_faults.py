"""Unit tests for deterministic link-fault injection (FaultSpec / FaultyLine)."""

import pytest

from repro.hdl import Component, Simulator
from repro.messages import FAST_BUS, INTEGRATED, ChannelSpec, FaultSpec, FaultyLine


class FaultyHarness(Component):
    def __init__(self, spec, faults):
        super().__init__("fh")
        self.line = FaultyLine("line", spec, faults, parent=self)
        self.to_send: list[int] = []
        self.received: list[int] = []

        @self.comb(always=True)
        def _drive():
            self.line.inp.valid.set(1 if self.to_send else 0)
            if self.to_send:
                self.line.inp.payload.set(self.to_send[0])
            self.line.out.ready.set(1)

        @self.seq
        def _tick():
            if self.line.inp.fires():
                self.to_send.pop(0)
            if self.line.out.fires():
                self.received.append(self.line.out.payload.value)


def _run(spec, words, max_cycles=10_000, **fault_kwargs):
    h = FaultyHarness(spec, FaultSpec(**fault_kwargs))
    sim = Simulator(h)
    sim.reset()
    h.to_send = list(words)
    sim.run_until(
        lambda: h.line.dead or (not h.to_send and not h.line.in_flight),
        max_cycles=max_cycles,
    )
    sim.step(5)  # settle any last delivery
    return h, sim


class TestFaultSpec:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultSpec(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(drop_rate=0.6, flip_rate=0.6)
        with pytest.raises(ValueError):
            FaultSpec(dead_after_words=-1)

    def test_fate_is_deterministic(self):
        spec = FaultSpec(seed=42, drop_rate=0.1, flip_rate=0.1, dup_rate=0.1)
        fates = [spec.fate(i) for i in range(500)]
        assert fates == [spec.fate(i) for i in range(500)]

    def test_fate_independent_of_query_order(self):
        spec = FaultSpec(seed=7, drop_rate=0.2)
        baseline = FaultSpec(seed=7, drop_rate=0.2).fate(123)
        spec.fate(4)
        spec.fate(99)
        assert spec.fate(123) == baseline

    def test_rates_approximated(self):
        spec = FaultSpec(seed=1, drop_rate=0.25)
        drops = sum(1 for i in range(4000) if spec.fate(i)[0] == "drop")
        assert 800 < drops < 1200  # 25% ± generous margin

    def test_dead_threshold(self):
        spec = FaultSpec(dead_after_words=3)
        assert [spec.fate(i)[0] for i in range(5)] == ["ok", "ok", "ok", "dead", "dead"]

    def test_any_faults(self):
        assert not FaultSpec().any_faults
        assert FaultSpec(drop_rate=0.1).any_faults
        assert FaultSpec(dead_after_words=0).any_faults

    def test_flip_xor_is_single_bit(self):
        spec = FaultSpec(seed=5, flip_rate=1.0)
        for i in range(100):
            kind, xor = spec.fate(i)
            assert kind == "flip"
            assert bin(xor).count("1") == 1

    def test_schedule_pins_fates(self):
        spec = FaultSpec(seed=1, drop_rate=1.0, schedule=(
            (0, "ok"), (2, "flip", 0x10), (3, "dup"),
        ))
        assert spec.fate(0) == ("ok", 0)
        assert spec.fate(1) == ("drop", 0)  # unpinned indices follow rates
        assert spec.fate(2) == ("flip", 0x10)
        assert spec.fate(3) == ("dup", 0)

    def test_schedule_duplicate_index_rejected(self):
        with pytest.raises(ValueError, match="more than once"):
            FaultSpec(schedule=((3, "drop"), (3, "flip", 1)))
        # pinning the same index twice is the error, not repeated fates
        assert FaultSpec(schedule=((3, "drop"), (4, "drop"))).any_faults

    def test_schedule_entry_shape_rejected(self):
        with pytest.raises(ValueError, match="tuples"):
            FaultSpec(schedule=((3,),))
        with pytest.raises(ValueError, match="fate"):
            FaultSpec(schedule=((3, "explode"),))
        with pytest.raises(ValueError, match="non-negative"):
            FaultSpec(schedule=((-1, "drop"),))


class TestFaultyLine:
    def test_clean_spec_behaves_like_delayline(self):
        words = [10, 20, 30, 40]
        h, _ = _run(INTEGRATED, words)
        assert h.received == words
        assert h.line.fault_stats.faults_injected == 0

    def test_all_drop(self):
        h, _ = _run(INTEGRATED, [1, 2, 3], drop_rate=1.0)
        assert h.received == []
        assert h.line.fault_stats.words_dropped == 3

    def test_all_flip_corrupts_every_word(self):
        words = [0x1111, 0x2222, 0x3333]
        h, _ = _run(INTEGRATED, words, seed=3, flip_rate=1.0)
        spec = h.line.faults
        assert h.received == [w ^ spec.fate(i)[1] for i, w in enumerate(words)]
        assert h.line.fault_stats.bits_flipped == 3

    def test_duplication(self):
        h, _ = _run(INTEGRATED, [7, 8], seed=1, dup_rate=1.0)
        assert h.received == [7, 7, 8, 8]
        assert h.line.fault_stats.words_duplicated == 2

    def test_dead_link_stops_accepting(self):
        h, _ = _run(INTEGRATED, [1, 2, 3, 4], max_cycles=300, dead_after_words=2)
        assert h.line.dead
        assert not h.line.inp.ready.value
        assert h.line.fault_stats.died_at_word == 2
        assert h.line.fault_stats.words_offered == 2

    def test_dead_link_freezes_inflight_words(self):
        # the word crossing the death threshold (and anything still inside
        # the pipe) is never delivered — the board fell off the bus
        h, _ = _run(FAST_BUS, [1, 2, 3, 4], max_cycles=500, dead_after_words=3)
        assert h.line.dead
        assert 3 not in h.received and 4 not in h.received

    def test_schedule_independent_of_timing(self):
        # the same word stream at different pacing suffers identical fates
        outs = []
        for spacing in (INTEGRATED, ChannelSpec("gap", 2, 3)):
            h, _ = _run(spacing, list(range(100, 140)), seed=9, drop_rate=0.3)
            outs.append(h.received)
        assert outs[0] == outs[1]

    def test_stalled_after_death_counts_presented_words(self):
        # the sender keeps presenting after the link dies: the counter sees
        # each presented word once, however long the sender holds it up
        h, sim = _run(INTEGRATED, [1, 2, 3, 4], max_cycles=300,
                      dead_after_words=2)
        assert h.line.dead
        stalled = h.line.fault_stats.stalled_after_death
        assert stalled >= 1
        # more cycles with the same word still presented: per-word, not
        # per-cycle — the count must not inflate
        sim.step(20)
        assert h.line.fault_stats.stalled_after_death == stalled

    def test_reset_clears_stats(self):
        h, sim = _run(INTEGRATED, [1, 2], drop_rate=1.0)
        assert h.line.fault_stats.words_dropped == 2
        sim.reset()
        assert h.line.fault_stats.words_dropped == 0

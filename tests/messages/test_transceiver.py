"""Unit tests for the transceiver modules and the host port.

Also demonstrates the paper's pluggability claim (Fig. 3): a custom
receiver variant substitutes for the COTS one without touching anything
downstream.
"""

from repro.hdl import Component, Simulator, Stream, SyncFifo
from repro.messages import HostPort, Receiver, Transmitter


class Wire(Component):
    """host port → receiver → transmitter → host port loop."""

    def __init__(self, receiver=None):
        super().__init__("wire")
        self.host = HostPort("host", parent=self)
        self.rx = receiver if receiver is not None else Receiver("rx", parent=self)
        self.child(self.rx) if self.rx.parent is None else None
        self.tx = Transmitter("tx", parent=self)

        def link(src, dst):
            def _l():
                dst.valid.set(src.valid.value)
                dst.payload.set(src.payload.value)
                src.ready.set(dst.ready.value)
            self.comb(_l)

        link(self.host.tx, self.rx.chan)
        link(self.rx.out, self.tx.inp)
        link(self.tx.chan, self.host.rx)


class TestHostPort:
    def test_send_and_loop_back(self):
        top = Wire()
        sim = Simulator(top)
        top.host.send_words([11, 22, 33])
        sim.step(12)
        got = [top.host.recv_word() for _ in range(3)]
        assert got == [11, 22, 33]

    def test_recv_on_empty_returns_none(self):
        top = Wire()
        Simulator(top).settle()
        assert top.host.recv_word() is None

    def test_pending_counters(self):
        top = Wire()
        sim = Simulator(top)
        top.host.send_word(5)
        assert top.host.tx_pending == 1
        sim.step(10)
        assert top.host.tx_pending == 0
        assert top.host.rx_available == 1

    def test_words_masked(self):
        top = Wire()
        sim = Simulator(top)
        top.host.send_word(0x1_2345_6789)
        sim.step(10)
        assert top.host.recv_word() == 0x2345_6789


class TestBuffering:
    def test_receiver_buffers_under_stall(self):
        class Stalled(Component):
            def __init__(self):
                super().__init__("st")
                self.host = HostPort("host", parent=self)
                self.rx = Receiver("rx", parent=self, depth=4)

                def _l():
                    self.rx.chan.valid.set(self.host.tx.valid.value)
                    self.rx.chan.payload.set(self.host.tx.payload.value)
                    self.host.tx.ready.set(self.rx.chan.ready.value)
                    self.rx.out.ready.set(0)  # downstream never drains
                self.comb(_l)

        top = Stalled()
        sim = Simulator(top)
        top.host.send_words(range(10))
        sim.step(12)
        assert top.rx.buffered == 4  # full elastic buffer, rest held at host


class CustomReceiver(Receiver):
    """A 'new transceiver circuit' (paper §II): adds a parity-strip stage."""

    def __init__(self, name, parent=None, depth=8):
        super().__init__(name, parent, depth)
        # prepend a stage that drops the (simulated) parity bit 31
        self.raw = Stream(self, "raw", 32)
        self._saved_chan = self.chan

        def _strip():
            self._saved_chan.valid.set(self.raw.valid.value)
            self._saved_chan.payload.set(self.raw.payload.value & 0x7FFF_FFFF)
            self.raw.ready.set(self._saved_chan.ready.value)

        self.comb(_strip)
        self.chan = self.raw  # external port becomes the raw stream


def test_custom_transceiver_plugs_in():
    top = Wire(receiver=CustomReceiver("rx"))
    sim = Simulator(top)
    top.host.send_words([0x8000_0001, 0x0000_0002])
    sim.step(12)
    assert top.host.recv_word() == 1  # parity bit stripped
    assert top.host.recv_word() == 2

"""Unit tests for the latency/bandwidth channel models."""

import pytest

from repro.hdl import Component, Simulator
from repro.messages import (
    FAST_BUS,
    INTEGRATED,
    PRESETS,
    SLOW_PROTOTYPE,
    ChannelSpec,
    DelayLine,
)


class LineHarness(Component):
    def __init__(self, spec):
        super().__init__("lh")
        self.line = DelayLine("line", spec, parent=self)
        self.to_send: list[int] = []
        self.received: list[tuple[int, int]] = []  # (cycle, word)

        @self.comb(always=True)
        def _drive():
            self.line.inp.valid.set(1 if self.to_send else 0)
            if self.to_send:
                self.line.inp.payload.set(self.to_send[0])
            self.line.out.ready.set(1)

        @self.seq
        def _tick():
            if self.line.inp.fires():
                self.to_send.pop(0)
            if self.line.out.fires():
                self.received.append((len(self.received), self.line.out.payload.value))


class TestChannelSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChannelSpec("bad", latency_cycles=0, cycles_per_word=1)
        with pytest.raises(ValueError):
            ChannelSpec("bad", latency_cycles=1, cycles_per_word=0)

    def test_transfer_cycles_analytic(self):
        spec = ChannelSpec("x", latency_cycles=10, cycles_per_word=4)
        assert spec.transfer_cycles(0) == 0
        assert spec.transfer_cycles(1) == 11
        assert spec.transfer_cycles(3) == 10 + 2 * 4 + 1

    def test_presets_ordering(self):
        # the prototyping link must be far slower than the integrated one
        assert SLOW_PROTOTYPE.cycles_per_word > 50 * INTEGRATED.cycles_per_word
        assert SLOW_PROTOTYPE.latency_cycles > INTEGRATED.latency_cycles
        assert FAST_BUS.cycles_per_word < SLOW_PROTOTYPE.cycles_per_word

    def test_presets_registry(self):
        assert set(PRESETS) == {"integrated", "fast-bus", "slow-prototype"}


class TestDelayLine:
    def test_latency_applied(self):
        spec = ChannelSpec("t", latency_cycles=5, cycles_per_word=1)
        h = LineHarness(spec)
        sim = Simulator(h)
        h.to_send = [42]
        sim.run_until(lambda: h.received, max_cycles=50)
        # accepted at cycle 0, delivered once 5 cycles have elapsed
        assert sim.now >= 5
        assert h.received[0][1] == 42

    def test_rate_limiting(self):
        spec = ChannelSpec("t", latency_cycles=1, cycles_per_word=4)
        h = LineHarness(spec)
        sim = Simulator(h)
        h.to_send = [1, 2, 3]
        sim.run_until(lambda: len(h.received) == 3, max_cycles=100)
        # three words at 4 cycles/word spacing: at least 9 cycles total
        assert sim.now >= 9

    def test_order_preserved(self):
        h = LineHarness(ChannelSpec("t", latency_cycles=3, cycles_per_word=2))
        sim = Simulator(h)
        h.to_send = [10, 20, 30, 40]
        sim.run_until(lambda: len(h.received) == 4, max_cycles=100)
        assert [w for _, w in h.received] == [10, 20, 30, 40]

    def test_integrated_is_fast(self):
        h = LineHarness(INTEGRATED)
        sim = Simulator(h)
        h.to_send = list(range(8))
        sim.run_until(lambda: len(h.received) == 8, max_cycles=30)
        assert sim.now <= 8 + INTEGRATED.latency_cycles + 2

    def test_in_flight_tracking(self):
        spec = ChannelSpec("t", latency_cycles=10, cycles_per_word=1)
        h = LineHarness(spec)
        sim = Simulator(h)
        h.to_send = [1, 2, 3]
        sim.step(4)
        assert h.line.in_flight == 3

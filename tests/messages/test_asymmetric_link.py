"""Unit tests for asymmetric full-duplex links."""

from repro.hdl import Simulator
from repro.messages import ChannelSpec, INTEGRATED, Link

FAST = ChannelSpec("fast", latency_cycles=1, cycles_per_word=1)
SLOW = ChannelSpec("slow", latency_cycles=8, cycles_per_word=16)


class TestAsymmetricLink:
    def test_defaults_to_symmetric(self):
        link = Link("l", FAST)
        assert link.upstream.spec is FAST
        assert link.downstream.spec is FAST

    def test_directions_take_their_own_specs(self):
        link = Link("l", FAST, upstream_spec=SLOW)
        assert link.downstream.spec is FAST
        assert link.upstream.spec is SLOW

    def test_system_builder_plumbs_upstream(self):
        from repro.system import SystemBuilder

        built = SystemBuilder().with_channel(INTEGRATED, upstream=SLOW).build()
        assert built.soc.link.downstream.spec is INTEGRATED
        assert built.soc.link.upstream.spec is SLOW

    def test_asymmetric_timing_observable(self):
        """Writes land quickly; readbacks pay the slow direction."""
        from repro.host import CoprocessorDriver
        from repro.system import SystemBuilder

        sym = SystemBuilder().with_channel(INTEGRATED).build()
        asym = SystemBuilder().with_channel(INTEGRATED, upstream=SLOW).build()
        results = {}
        for name, built in (("sym", sym), ("asym", asym)):
            d = CoprocessorDriver(built)
            d.write_reg(1, 7)
            start = d.cycles
            assert d.read_reg(1) == 7
            results[name] = d.cycles - start
        assert results["asym"] > 2 * results["sym"]

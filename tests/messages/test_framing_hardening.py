"""Unit tests for hardened deframing: uniform FramingError paths for
malformed headers, truncated frames and over-length frames (robustness
satellite of the reliability work)."""

import pytest

from repro.messages import (
    DataRecord,
    Deframer,
    Exec,
    Framer,
    FramingError,
    MsgType,
    Reset,
    WriteFlags,
    WriteReg,
    build_message,
    expected_length,
    make_header,
    validate_header,
)


class TestExpectedLength:
    def test_per_type_lengths(self):
        assert expected_length(MsgType.EXEC, 1) == 2
        assert expected_length(MsgType.WRITE_REG, 1) == 1
        assert expected_length(MsgType.WRITE_REG, 4) == 4
        assert expected_length(MsgType.WRITE_FLAGS, 1) == 1
        assert expected_length(MsgType.RESET, 1) == 0
        assert expected_length(MsgType.DATA_RECORD, 2) == 2
        assert expected_length(MsgType.FLAG_VECTOR, 1) == 1
        assert expected_length(MsgType.EXCEPTION, 1) == 1
        assert expected_length(MsgType.HALTED, 1) == 0

    def test_unknown_type_raises(self):
        with pytest.raises(FramingError, match="unknown message type"):
            expected_length(0x77, 1)


class TestValidateHeader:
    def test_valid_header_splits(self):
        h = make_header(MsgType.WRITE_REG, 5, 1)
        assert validate_header(h, 1) == (MsgType.WRITE_REG, 5, 1)

    def test_unknown_type_uniform_error(self):
        with pytest.raises(FramingError, match="unknown message type 0xee"):
            validate_header(make_header(0xEE, 0, 0), 1)

    def test_wrong_length_uniform_error(self):
        # a WRITE_REG header claiming 7 payload words on a 1-word config
        h = make_header(MsgType.WRITE_REG, 5, 7)
        with pytest.raises(FramingError, match="length 7 invalid"):
            validate_header(h, 1)

    def test_over_length_exec_rejected(self):
        h = make_header(MsgType.EXEC, 0, 60_000)
        with pytest.raises(FramingError, match="EXEC frame length 60000"):
            validate_header(h, 1)

    def test_zero_length_where_payload_required(self):
        h = make_header(MsgType.EXEC, 0, 0)
        with pytest.raises(FramingError, match="invalid"):
            validate_header(h, 1)


class TestBuildMessage:
    def test_roundtrip_every_type(self):
        framer = Framer()
        for msg in (Exec(0x0102030405060708), WriteReg(2, 0xAB),
                    WriteFlags(1, 0x3), Reset(), DataRecord(4, 0xCD)):
            words = framer.frame(msg)
            mtype, arg, length = validate_header(words[0], 1)
            assert build_message(mtype, arg, words[1:]) == msg


class TestHardenedDeframer:
    def test_malformed_header_raises_eagerly(self):
        d = Deframer()
        with pytest.raises(FramingError, match="unknown message type"):
            d.push(make_header(0x55, 0, 1))
        # the deframer is clean again — a valid frame still parses
        assert not d.mid_frame
        words = Framer().frame(Reset())
        assert d.push(words[0]) == Reset()

    def test_over_length_header_raises_eagerly(self):
        d = Deframer()
        with pytest.raises(FramingError, match="invalid"):
            d.push(make_header(MsgType.WRITE_REG, 1, 9))
        assert not d.mid_frame

    def test_wrong_length_for_type_rejected(self):
        # length 2 is within the old max_length bound for data_words=1 (EXEC
        # uses 2), but is wrong *for WRITE_REG* — strict per-type checking
        d = Deframer(data_words=1)
        with pytest.raises(FramingError, match="WRITE_REG frame length 2"):
            d.push(make_header(MsgType.WRITE_REG, 1, 2))

    def test_flush_mid_frame_raises_truncation(self):
        d = Deframer()
        words = Framer().frame(WriteReg(1, 0x99))
        d.push(words[0])
        assert d.mid_frame
        with pytest.raises(FramingError, match="truncated WRITE_REG frame"):
            d.flush()
        # flush cleared the partial state
        assert not d.mid_frame

    def test_flush_idle_is_noop(self):
        d = Deframer()
        d.flush()  # nothing buffered: no error
        assert not d.mid_frame

    def test_interrupted_frame_then_valid_frame(self):
        d = Deframer()
        f = Framer()
        partial = f.frame(Exec(0x1122334455667788))
        d.push(partial[0])
        d.push(partial[1])
        with pytest.raises(FramingError):
            d.flush()  # missing second payload word
        good = f.frame(WriteReg(3, 7))
        assert d.push(good[0]) is None
        assert d.push(good[1]) == WriteReg(3, 7)

"""UART under line noise: framing errors are detected, the link recovers."""

import pytest

from repro.hdl import Component, Simulator
from repro.messages.uart import BITS_PER_FRAME, BYTES_PER_WORD, UartRx, UartTx


class NoisyPair(Component):
    """TX → (glitch injector) → RX."""

    def __init__(self, divisor=4):
        super().__init__("np")
        self.tx = UartTx("tx", divisor, parent=self)
        self.rx = UartRx("rx", divisor, parent=self)
        self.to_send: list[int] = []
        self.received: list[int] = []
        #: cycles at which the line is forced to the opposite value
        self.glitch_cycles: set[int] = set()
        self.cycle = 0

        @self.comb(always=True)
        def _drive():
            line = self.tx.line.value
            if self.cycle in self.glitch_cycles:
                line = 1 - line
            self.rx.line.set(line)
            self.tx.inp.valid.set(1 if self.to_send else 0)
            if self.to_send:
                self.tx.inp.payload.set(self.to_send[0])
            self.rx.out.ready.set(1)

        @self.seq
        def _tick():
            if self.tx.inp.fires():
                self.to_send.pop(0)
            if self.rx.out.fires():
                self.received.append(self.rx.out.payload.value)
            self.cycle += 1


class TestNoise:
    def test_clean_line_baseline(self):
        pair = NoisyPair()
        sim = Simulator(pair)
        sim.reset()
        pair.to_send = [0x1234_5678]
        sim.step(4 * BITS_PER_FRAME * BYTES_PER_WORD + 50)
        assert pair.received == [0x1234_5678]
        assert pair.rx.framing_errors == 0

    def test_stop_bit_glitch_detected(self):
        divisor = 4
        pair = NoisyPair(divisor)
        sim = Simulator(pair)
        sim.reset()
        pair.to_send = [0xFFFF_FFFF]
        # corrupt the region around the first byte's stop-bit sample:
        # stop bit of byte 0 is bit 9, sampled near cycle divisor//2 + 9*divisor
        centre = divisor // 2 + 9 * divisor
        pair.glitch_cycles = set(range(centre - 1, centre + 2))
        sim.step(divisor * BITS_PER_FRAME * BYTES_PER_WORD + 80)
        assert pair.rx.framing_errors >= 1

    def test_recovers_after_noise_burst(self):
        """A destroyed word must not poison later traffic: the framing-error
        flush plus inter-word-gap resynchronisation realign the byte stream,
        exactly like a host retrying after a timeout."""
        divisor = 4
        word_time = divisor * BITS_PER_FRAME * BYTES_PER_WORD
        pair = NoisyPair(divisor)
        sim = Simulator(pair)
        sim.reset()
        pair.to_send = [0xAAAA_0001]
        pair.glitch_cycles = set(range(10, 40))  # destroy part of word 1
        sim.step(word_time + 60)
        # host-side pacing: a gap, then the retry/next word
        sim.step(pair.rx.resync_idle + 10)
        pair.to_send.append(0xBBBB_0002)
        sim.step(word_time + 100)
        assert 0xBBBB_0002 in pair.received
        assert pair.rx.framing_errors + pair.rx.resyncs >= 1

    def test_glitch_outside_sample_points_is_harmless(self):
        divisor = 8  # wide bits: mid-bit sampling rides out edge glitches
        pair = NoisyPair(divisor)
        sim = Simulator(pair)
        sim.reset()
        pair.to_send = [0xCAFEBABE]
        # one-cycle glitches right at bit boundaries (never mid-bit), in the
        # middle of byte 1's data bits — away from start-edge detection
        frame = BITS_PER_FRAME * divisor
        pair.glitch_cycles = {frame + 3 * divisor, frame + 5 * divisor}
        sim.step(divisor * BITS_PER_FRAME * BYTES_PER_WORD + 100)
        assert pair.received == [0xCAFEBABE]
        assert pair.rx.framing_errors == 0

"""Unit tests for message framing (header layout, multi-word values, streaming)."""

import pytest

from repro.messages import (
    DataRecord,
    Deframer,
    Exec,
    ExceptionReport,
    FlagVector,
    Framer,
    FramingError,
    Halted,
    MsgType,
    Reset,
    WriteFlags,
    WriteReg,
    make_header,
    split_header,
    value_to_words,
    words_to_value,
)

ALL_MESSAGES = [
    Exec(0x1234_5678_9ABC_DEF0),
    WriteReg(5, 0xDEADBEEF),
    WriteFlags(2, 0x5A),
    Reset(),
    DataRecord(7, 0xCAFEBABE),
    FlagVector(1, 0x03),
    ExceptionReport(2, 0x44),
    Halted(),
]


class TestHeader:
    def test_layout(self):
        h = make_header(MsgType.EXEC, 0xAB, 0x1234)
        assert split_header(h) == (MsgType.EXEC, 0xAB, 0x1234)

    def test_arg_range(self):
        with pytest.raises(FramingError):
            make_header(1, 256, 0)

    def test_length_range(self):
        with pytest.raises(FramingError):
            make_header(1, 0, 1 << 16)


class TestValueWords:
    def test_single_word(self):
        assert value_to_words(0x12345678, 1) == [0x12345678]

    def test_multi_word_lsw_first(self):
        words = value_to_words(0x1_0000_0002, 2)
        assert words == [2, 1]

    def test_roundtrip(self):
        v = 0xFEDC_BA98_7654_3210
        assert words_to_value(value_to_words(v, 2)) == v

    def test_too_large_rejected(self):
        with pytest.raises(FramingError):
            value_to_words(1 << 32, 1)

    def test_negative_rejected(self):
        with pytest.raises(FramingError):
            value_to_words(-1, 1)


class TestFramerDeframer:
    @pytest.mark.parametrize("msg", ALL_MESSAGES, ids=lambda m: type(m).__name__)
    def test_roundtrip_word32(self, msg):
        framer, deframer = Framer(1), Deframer(1)
        out = list(deframer.push_all(framer.frame(msg)))
        assert out == [msg]

    def test_roundtrip_wide_words(self):
        framer, deframer = Framer(4), Deframer(4)  # 128-bit registers
        msg = WriteReg(3, (1 << 127) | 5)
        assert list(deframer.push_all(framer.frame(msg))) == [msg]

    def test_exec_always_two_words(self):
        framer = Framer(4)
        words = framer.frame(Exec(0xFFFF_FFFF_FFFF_FFFF))
        assert len(words) == 3  # header + 2 payload regardless of data_words

    def test_stream_of_messages(self):
        framer, deframer = Framer(1), Deframer(1)
        stream = framer.frame_all(ALL_MESSAGES)
        out = list(deframer.push_all(stream))
        assert out == ALL_MESSAGES

    def test_incremental_push(self):
        framer, deframer = Framer(2), Deframer(2)
        words = framer.frame(WriteReg(1, 0x1_0000_0002))
        assert deframer.push(words[0]) is None
        assert deframer.mid_frame
        assert deframer.push(words[1]) is None
        msg = deframer.push(words[2])
        assert msg == WriteReg(1, 0x1_0000_0002)
        assert not deframer.mid_frame

    def test_zero_payload_messages_complete_on_header(self):
        framer, deframer = Framer(1), Deframer(1)
        (header,) = framer.frame(Reset())
        assert deframer.push(header) == Reset()

    def test_unknown_type_rejected(self):
        deframer = Deframer(1)
        with pytest.raises(FramingError):
            deframer.push(make_header(0x7F, 0, 0))

    def test_value_masked_on_wire(self):
        framer = Framer(1)
        words = framer.frame(FlagVector(1, 0x1_0000_00FF))
        assert words[1] == 0xFF | 0x1_0000_0000 & 0xFFFFFFFF or words[1] == 0xFF

    def test_data_words_validated(self):
        with pytest.raises(FramingError):
            Framer(0)

"""Unit tests for the instruction-word field definitions."""

import pytest

from repro.isa.fields import (
    DST1,
    DST2,
    DST_FLAG,
    IMM32,
    IMMEDIATE_FORMAT_FIELDS,
    OPCODE,
    REGISTER_FORMAT_FIELDS,
    SRC1,
    SRC2,
    SRC_FLAG,
    VARIETY,
    WORD_BITS,
    Field,
)


def test_register_format_covers_all_64_bits_exactly_once():
    seen = [0] * WORD_BITS
    for f in REGISTER_FORMAT_FIELDS:
        for b in range(f.lo, f.hi + 1):
            seen[b] += 1
    assert all(c == 1 for c in seen), "fields must tile the word without overlap"


def test_immediate_format_covers_word_without_overlap():
    seen = [0] * WORD_BITS
    for f in IMMEDIATE_FORMAT_FIELDS:
        for b in range(f.lo, f.hi + 1):
            seen[b] += 1
    assert all(c <= 1 for c in seen)
    assert sum(seen) == 8 + 8 + 8 + 8 + 32


def test_field_widths():
    assert OPCODE.width == 8
    assert VARIETY.width == 8
    assert DST_FLAG.width == DST1.width == DST2.width == 8
    assert SRC1.width == SRC2.width == SRC_FLAG.width == 8
    assert IMM32.width == 32


def test_extract_insert_roundtrip():
    word = 0
    word = OPCODE.insert(word, 0x12)
    word = SRC1.insert(word, 0x34)
    assert OPCODE.extract(word) == 0x12
    assert SRC1.extract(word) == 0x34
    assert DST1.extract(word) == 0


def test_insert_rejects_oversized_value():
    with pytest.raises(ValueError):
        OPCODE.insert(0, 0x1FF)


def test_insert_replaces_previous_value():
    word = SRC2.insert(0, 0xAA)
    word = SRC2.insert(word, 0x55)
    assert SRC2.extract(word) == 0x55


def test_field_mask():
    f = Field("x", 11, 4)
    assert f.width == 8
    assert f.mask == 0xFF

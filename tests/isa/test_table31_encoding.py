"""Experiment T1: thesis Table 3.1 — arithmetic instructions as variety-bit
patterns over one adder datapath.

The table's columns are the six modifier bits; its rows are the nine
mnemonics.  These tests pin down each row's bit pattern and verify the
datapath identities behind them (e.g. NEG ≡ 0 + ~b + 1 applied to the
*second* operand only).
"""

import pytest

from repro.fu import arith_datapath
from repro.isa import (
    ARITH_COMPL_SECOND,
    ARITH_FIRST_ZERO,
    ARITH_FIXED_CARRY,
    ARITH_OUTPUT_DATA,
    ARITH_SECOND_ZERO,
    ARITH_USE_CARRY,
    FLAG_CARRY,
    FLAG_NEGATIVE,
    FLAG_OVERFLOW,
    FLAG_ZERO,
    ArithOp,
)

W = 32
MASK = (1 << W) - 1


class TestVarietyBitPatterns:
    """The encoding table itself."""

    def test_add(self):
        assert ArithOp.ADD == ARITH_OUTPUT_DATA

    def test_adc_uses_carry_flag(self):
        assert ArithOp.ADC == ARITH_OUTPUT_DATA | ARITH_USE_CARRY

    def test_sub_is_complement_plus_fixed_carry(self):
        assert ArithOp.SUB == ARITH_OUTPUT_DATA | ARITH_COMPL_SECOND | ARITH_FIXED_CARRY

    def test_sbb_is_complement_plus_carry_flag(self):
        assert ArithOp.SBB == ARITH_OUTPUT_DATA | ARITH_COMPL_SECOND | ARITH_USE_CARRY

    def test_inc_zeroes_second_input(self):
        assert ArithOp.INC == ARITH_OUTPUT_DATA | ARITH_SECOND_ZERO | ARITH_FIXED_CARRY

    def test_dec_adds_all_ones(self):
        assert ArithOp.DEC == ARITH_OUTPUT_DATA | ARITH_SECOND_ZERO | ARITH_COMPL_SECOND

    def test_neg_applies_to_second_operand_only(self):
        # "The negation instruction is applied to the second operand only,
        # for reasons of logic compactness" — first input forced to zero.
        assert ArithOp.NEG & ARITH_FIRST_ZERO
        assert ArithOp.NEG & ARITH_COMPL_SECOND
        assert ArithOp.NEG & ARITH_FIXED_CARRY

    def test_cmp_cmpb_suppress_output(self):
        # the "Output data" column is clear only for the comparisons
        assert not ArithOp.CMP & ARITH_OUTPUT_DATA
        assert not ArithOp.CMPB & ARITH_OUTPUT_DATA
        for op in (ArithOp.ADD, ArithOp.ADC, ArithOp.SUB, ArithOp.SBB,
                   ArithOp.INC, ArithOp.DEC, ArithOp.NEG):
            assert op & ARITH_OUTPUT_DATA

    def test_all_nine_rows_distinct(self):
        assert len({int(op) for op in ArithOp}) == 9


class TestDatapathIdentities:
    """Each mnemonic's semantics emerge from the shared datapath."""

    @pytest.mark.parametrize("a,b", [(0, 0), (1, 2), (MASK, 1), (12345, 67890)])
    def test_add(self, a, b):
        r = arith_datapath(ArithOp.ADD, a, b, 0, W)
        assert r.value == (a + b) & MASK
        assert r.writes_data

    @pytest.mark.parametrize("carry", [0, 1])
    def test_adc_consumes_carry_flag(self, carry):
        r = arith_datapath(ArithOp.ADC, 10, 20, carry, W)
        assert r.value == 30 + carry

    @pytest.mark.parametrize("a,b", [(5, 3), (3, 5), (0, 1), (MASK, MASK)])
    def test_sub(self, a, b):
        r = arith_datapath(ArithOp.SUB, a, b, 0, W)
        assert r.value == (a - b) & MASK
        # carry flag = no borrow
        assert bool(r.flags & FLAG_CARRY) == (a >= b)

    def test_sbb_borrow_chain(self):
        # 0x1_00000000 - 1 over two limbs: low limb borrows
        low = arith_datapath(ArithOp.SUB, 0, 1, 0, W)
        assert low.value == MASK
        assert not low.flags & FLAG_CARRY  # borrow happened
        high = arith_datapath(ArithOp.SBB, 1, 0, low.flags, W)
        assert high.value == 0
        assert high.flags & FLAG_CARRY

    def test_inc_dec(self):
        assert arith_datapath(ArithOp.INC, 41, 999, 0, W).value == 42
        assert arith_datapath(ArithOp.DEC, 43, 999, 0, W).value == 42
        assert arith_datapath(ArithOp.DEC, 0, 0, 0, W).value == MASK

    def test_neg_second_operand(self):
        r = arith_datapath(ArithOp.NEG, 999, 5, 0, W)   # first operand ignored
        assert r.value == (-5) & MASK

    def test_cmp_flags_only(self):
        r = arith_datapath(ArithOp.CMP, 7, 7, 0, W)
        assert not r.writes_data
        assert r.flags & FLAG_ZERO
        r2 = arith_datapath(ArithOp.CMP, 3, 7, 0, W)
        assert not r2.flags & FLAG_ZERO
        assert r2.flags & FLAG_NEGATIVE  # 3-7 < 0

    def test_cmpb_multiword_compare(self):
        # compare 0x0000_0001_0000_0000 vs 0x0000_0000_FFFF_FFFF limbwise
        low = arith_datapath(ArithOp.CMP, 0, MASK, 0, W)
        high = arith_datapath(ArithOp.CMPB, 1, 0, low.flags, W)
        assert high.flags & FLAG_CARRY  # a >= b overall

    def test_zero_flag(self):
        r = arith_datapath(ArithOp.ADD, 0, 0, 0, W)
        assert r.flags & FLAG_ZERO
        assert arith_datapath(ArithOp.ADD, MASK, 1, 0, W).flags & FLAG_ZERO

    def test_overflow_flag_signed(self):
        big = (1 << (W - 1)) - 1  # INT_MAX
        r = arith_datapath(ArithOp.ADD, big, 1, 0, W)
        assert r.flags & FLAG_OVERFLOW
        assert r.flags & FLAG_NEGATIVE
        r2 = arith_datapath(ArithOp.ADD, 1, 1, 0, W)
        assert not r2.flags & FLAG_OVERFLOW

    def test_carry_out(self):
        r = arith_datapath(ArithOp.ADD, MASK, 1, 0, W)
        assert r.flags & FLAG_CARRY

    @pytest.mark.parametrize("width", [32, 64, 128])
    def test_word_size_generic(self, width):
        mask = (1 << width) - 1
        r = arith_datapath(ArithOp.ADD, mask, 1, 0, width)
        assert r.value == 0
        assert r.flags & FLAG_CARRY

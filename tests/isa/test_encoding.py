"""Unit tests for instruction encode/decode."""

import pytest

from repro.isa import (
    EncodingError,
    Instruction,
    Opcode,
    decode,
    encode,
    instructions as ins,
)


class TestRoundTrip:
    def test_register_format(self):
        i = Instruction(Opcode.ARITH, variety=0x04, dst_flag=3, dst1=5,
                        dst2=6, src1=7, src2=8, src_flag=2)
        assert decode(encode(i)) == i

    def test_immediate_format(self):
        i = ins.loadi(9, 0xDEADBEEF)
        assert decode(encode(i)) == i

    def test_nullary(self):
        for builder in (ins.nop, ins.halt, ins.fence):
            i = builder()
            assert decode(encode(i)) == i

    def test_all_builders_roundtrip(self):
        cases = [
            ins.copy(1, 2),
            ins.cpflag(1, 2),
            ins.get(3, 7),
            ins.getf(2, 9),
            ins.loadis(4, 0x1234),
            ins.setf(1, 0xAA),
            ins.add(1, 2, 3, dst_flag=4),
            ins.adc(1, 2, 3, 5, dst_flag=4),
            ins.sub(1, 2, 3),
            ins.sbb(1, 2, 3, 5),
            ins.inc(1, 2),
            ins.dec(1, 2),
            ins.neg(1, 2),
            ins.cmp(1, 2, dst_flag=3),
            ins.cmpb(1, 2, 4, dst_flag=3),
            ins.and_(1, 2, 3),
            ins.xor(1, 2, 3),
            ins.not_(1, 2),
            ins.pass_(1, 2),
            ins.dispatch(0x20, 5, dst1=1, src1=2, src2=3),
        ]
        for i in cases:
            assert decode(encode(i)) == i, i


class TestFieldPlacement:
    def test_opcode_in_top_byte(self):
        word = encode(ins.halt())
        assert (word >> 56) == Opcode.HALT

    def test_variety_below_opcode(self):
        word = encode(ins.get(1, tag=0xAB))
        assert (word >> 48) & 0xFF == 0xAB

    def test_immediate_in_low_word(self):
        word = encode(ins.loadi(2, 0xCAFEBABE))
        assert word & 0xFFFF_FFFF == 0xCAFEBABE
        assert (word >> 32) & 0xFF == 2  # dst1

    def test_register_fields(self):
        i = Instruction(Opcode.ARITH, variety=1, dst_flag=0xAA, dst1=0xBB,
                        dst2=0xCC, src1=0xDD, src2=0xEE, src_flag=0xFF)
        w = encode(i)
        assert (w >> 40) & 0xFF == 0xAA
        assert (w >> 32) & 0xFF == 0xBB
        assert (w >> 24) & 0xFF == 0xCC
        assert (w >> 16) & 0xFF == 0xDD
        assert (w >> 8) & 0xFF == 0xEE
        assert w & 0xFF == 0xFF


class TestValidation:
    def test_oversized_opcode_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instruction(0x100))

    def test_immediate_with_reg_fields_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Opcode.LOADI, dst1=1, src1=2, imm=5))

    def test_register_format_with_imm_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Opcode.COPY, dst1=1, src1=2, imm=5))

    def test_oversized_imm_rejected(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Opcode.LOADI, dst1=1, imm=1 << 32))

    def test_decode_oversized_word_rejected(self):
        with pytest.raises(EncodingError):
            decode(1 << 64)

    def test_word_is_64_bits(self):
        w = encode(ins.dispatch(0xFF, 0xFF, dst1=0xFF, dst2=0xFF,
                                src1=0xFF, src2=0xFF, dst_flag=0xFF, src_flag=0xFF))
        assert 0 <= w < (1 << 64)


class TestInstructionProperties:
    def test_primitive_classification(self):
        assert ins.nop().opcode < 0x10
        assert ins.add(1, 2, 3).opcode >= 0x10

    def test_mnemonic_hint(self):
        assert ins.halt().mnemonic_hint() == "HALT"
        assert ins.dispatch(0x42, 0).mnemonic_hint() == "UNIT_0x42"

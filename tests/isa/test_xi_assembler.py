"""Assembler/disassembler coverage for the ξ-sort mnemonics, and a full
χ-sort refinement round written as an assembler program."""

import pytest

from repro.fu import default_registry
from repro.host import CoprocessorDriver, run_program
from repro.isa import Opcode, assemble, assemble_line, disassemble
from repro.system import build_system
from repro.xisort import (
    XI_FIND_PIVOT,
    XI_LOAD,
    XI_READ_AT,
    XI_RESET,
    XI_SPLIT,
    XI_STATUS,
    XI_WRITE_AT,
    XI_RANK,
    XI_COUNT_EQ,
    xisort_factory,
)

CASES = [
    ("xi.reset", XI_RESET),
    ("xi.load r1, r2", XI_LOAD),
    ("xi.split r3, r1, r2", XI_SPLIT),
    ("xi.findpivot r1, r2 -> f1", XI_FIND_PIVOT),
    ("xi.readat r1, r2 -> f1", XI_READ_AT),
    ("xi.writeat r1, r2 -> f1", XI_WRITE_AT),
    ("xi.status r1", XI_STATUS),
    ("xi.rank r1, r2", XI_RANK),
    ("xi.counteq r1, r2", XI_COUNT_EQ),
]


class TestXiMnemonics:
    @pytest.mark.parametrize("text,variety", CASES, ids=lambda c: str(c)[:16])
    def test_assembles_to_xisort_dispatch(self, text, variety):
        instr = assemble_line(text)
        assert instr.opcode == Opcode.XISORT
        assert instr.variety == variety

    @pytest.mark.parametrize("text,variety", CASES, ids=lambda c: str(c)[:16])
    def test_disassembler_roundtrip(self, text, variety):
        instr = assemble_line(text)
        assert assemble_line(disassemble(instr)) == instr

    def test_field_placement(self):
        instr = assemble_line("xi.split r3, r1, r2 -> f2")
        assert (instr.dst1, instr.src1, instr.src2, instr.dst_flag) == (3, 1, 2, 2)


class TestAssembledXiProgram:
    def test_one_refinement_round_as_text(self):
        """The paper's 'program the controller' workflow for the stateful unit:
        load three values, find the pivot, split, and read out the pivot's
        settled position — written entirely in assembler."""
        registry = default_registry()
        registry.register(Opcode.XISORT, xisort_factory(n_cells=8))
        driver = CoprocessorDriver(build_system(registry=registry))
        driver.write_reg(1, 30)   # values staged by the host
        driver.write_reg(5, 2)    # n-1
        program = """
        xi.reset
        xi.load r1, r5            ; shift in 30
        loadi r1, 10
        xi.load r1, r5            ; shift in 10
        loadi r1, 20
        xi.load r1, r5            ; shift in 20
        xi.findpivot r2, r3 -> f1 ; pivot regs chained by the scoreboard
        xi.split r4, r2, r3       ; r4 = k
        get r4, 1
        xi.status r6
        get r6, 2
        """
        msgs = run_program(driver, program)
        k, imprecise = msgs[0].value, msgs[1].value
        # pivot is the last-loaded value, 20 → one element below it
        assert k == 1
        # after one split of ⟨0,2⟩ around 20: 10 and 30 still imprecise? both
        # land in singleton segments ⟨0,0⟩ and ⟨2,2⟩ → everything precise
        assert imprecise == 0

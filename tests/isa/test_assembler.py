"""Unit tests for the assembler and disassembler."""

import pytest

from repro.isa import (
    AssemblerError,
    Opcode,
    assemble,
    assemble_line,
    disassemble,
    disassemble_program,
    disassemble_word,
    encode,
    instructions as ins,
)


class TestAssembleLine:
    def test_blank_and_comment_lines(self):
        assert assemble_line("") is None
        assert assemble_line("   ; just a comment") is None
        assert assemble_line("# hash comment") is None

    def test_nullary(self):
        assert assemble_line("nop") == ins.nop()
        assert assemble_line("halt") == ins.halt()
        assert assemble_line("fence") == ins.fence()

    def test_three_reg_arith(self):
        assert assemble_line("add r3, r1, r2") == ins.add(3, 1, 2)
        assert assemble_line("sub r3, r1, r2") == ins.sub(3, 1, 2)

    def test_flag_destination_arrow(self):
        assert assemble_line("add r3, r1, r2 -> f2") == ins.add(3, 1, 2, dst_flag=2)

    def test_carry_ops(self):
        assert assemble_line("adc r3, r1, r2, f1 -> f1") == ins.adc(3, 1, 2, 1, dst_flag=1)
        assert assemble_line("sbb r0, r1, r2, f3") == ins.sbb(0, 1, 2, 3)

    def test_unary_ops(self):
        assert assemble_line("inc r1, r2") == ins.inc(1, 2)
        assert assemble_line("neg r1, r2") == ins.neg(1, 2)
        assert assemble_line("not r1, r2") == ins.not_(1, 2)

    def test_cmp(self):
        assert assemble_line("cmp r1, r2 -> f1") == ins.cmp(1, 2, dst_flag=1)
        assert assemble_line("cmpb r1, r2, f1 -> f2") == ins.cmpb(1, 2, 1, dst_flag=2)

    def test_immediates(self):
        assert assemble_line("loadi r1, 0x10") == ins.loadi(1, 16)
        assert assemble_line("loadi r1, 0b101") == ins.loadi(1, 5)
        assert assemble_line("loadi r1, 42") == ins.loadi(1, 42)
        assert assemble_line("setf f2, 0x3") == ins.setf(2, 3)

    def test_get_with_tag(self):
        assert assemble_line("get r5, 9") == ins.get(5, 9)
        assert assemble_line("get r5") == ins.get(5, 0)
        assert assemble_line("getf f1, 2") == ins.getf(1, 2)

    def test_logic_ops(self):
        assert assemble_line("xor r1, r2, r3") == ins.xor(1, 2, 3)
        assert assemble_line("nand r1, r2, r3") == ins.nand(1, 2, 3)
        assert assemble_line("pass r1, r2") == ins.pass_(1, 2)

    def test_generic_unit_dispatch(self):
        got = assemble_line("unit 0x20, 3, r1, r2, r3 -> f1")
        assert got == ins.dispatch(0x20, 3, dst1=1, src1=2, src2=3, dst_flag=1)

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble_line("frob r1", 3)

    def test_bad_register_token(self):
        with pytest.raises(AssemblerError):
            assemble_line("add r1, x2, r3")

    def test_missing_args(self):
        with pytest.raises(AssemblerError):
            assemble_line("add r1, r2")


class TestAssembleProgram:
    def test_multiline_program(self):
        src = """
        ; load operands
        loadi r1, 20
        loadi r2, 22
        add r3, r1, r2 -> f1   ; the work
        get r3
        halt
        """
        program = assemble(src)
        assert [i.opcode for i in program] == [
            Opcode.LOADI, Opcode.LOADI, Opcode.ARITH, Opcode.GET, Opcode.HALT
        ]

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblerError, match="line 3"):
            assemble("nop\nnop\nbogus r1\n")


class TestDisassembler:
    CASES = [
        ins.nop(),
        ins.halt(),
        ins.fence(),
        ins.copy(1, 2),
        ins.cpflag(3, 4),
        ins.get(5, 2),
        ins.getf(1, 3),
        ins.loadi(2, 0xFF),
        ins.loadis(2, 0xAB),
        ins.setf(1, 7),
        ins.add(1, 2, 3, dst_flag=2),
        ins.adc(1, 2, 3, 4, dst_flag=2),
        ins.sub(1, 2, 3),
        ins.sbb(1, 2, 3, 4),
        ins.inc(1, 2),
        ins.dec(1, 2),
        ins.neg(1, 2, dst_flag=1),
        ins.cmp(1, 2, dst_flag=1),
        ins.cmpb(1, 2, 3, dst_flag=1),
        ins.and_(1, 2, 3),
        ins.orn(1, 2, 3),
        ins.not_(1, 2),
        ins.pass_(1, 2),
    ]

    @pytest.mark.parametrize("instr", CASES, ids=lambda i: i.mnemonic_hint())
    def test_roundtrip_via_assembler(self, instr):
        text = disassemble(instr)
        assert assemble_line(text) == instr

    def test_disassemble_word(self):
        assert disassemble_word(encode(ins.halt())) == "halt"

    def test_unknown_unit_renders_generic(self):
        text = disassemble(ins.dispatch(0x33, 7, dst1=1, src1=2, src2=3))
        assert text.startswith("unit 0x33")
        assert assemble_line(text) == ins.dispatch(0x33, 7, dst1=1, src1=2, src2=3)

    def test_program_listing(self):
        listing = disassemble_program([ins.nop(), ins.halt()])
        assert listing == "nop\nhalt"

"""Tests for the XI_WRITE_AT smart-memory update path."""

import random

import pytest

from repro.fu import default_registry
from repro.host import Session
from repro.isa import Opcode
from repro.system import build_system
from repro.xisort import (
    XI_WRITE_AT,
    DirectXiSortMachine,
    XiSortAccelerator,
    program_length,
    write_profile,
    xisort_factory,
)


class TestDirectWriteAt:
    def test_overwrites_at_precise_index(self):
        m = DirectXiSortMachine(8)
        m.sort([40, 10, 30, 20])
        assert m.write_at(1, 15)
        assert m.read_at(1) == 15
        # neighbours untouched
        assert m.read_at(0) == 10
        assert m.read_at(2) == 30

    def test_miss_returns_false(self):
        m = DirectXiSortMachine(8)
        m.sort([1, 2])
        assert not m.write_at(5, 9)

    def test_interval_preserved(self):
        m = DirectXiSortMachine(8)
        m.sort([5, 6, 7])
        m.write_at(0, 99)
        states = [s for s in m.core.array.states() if s.data == 99]
        assert states and states[0].lower == states[0].upper == 0

    def test_constant_cycles(self):
        costs = set()
        for n in (8, 64, 256):
            m = DirectXiSortMachine(n)
            m.sort(random.Random(n).sample(range(1000), 4))
            before = m.cycles
            m.write_at(0, 1)
            costs.add(m.cycles - before)
        assert len(costs) == 1
        assert program_length(XI_WRITE_AT) == 4

    def test_write_profile_flags_only(self):
        assert write_profile(XI_WRITE_AT) == (False, False, True)


class TestFrameworkWriteAt:
    @pytest.fixture
    def accel(self):
        registry = default_registry()
        registry.register(Opcode.XISORT, xisort_factory(n_cells=16))
        return XiSortAccelerator(Session(build_system(registry=registry)))

    def test_update_through_framework(self, accel):
        values = [50, 20, 40, 10, 30]
        accel.sort(values, ensure_distinct=False)
        assert accel.write_at(2, 25)
        assert accel.read_at(2) == 25

    def test_update_then_reselect(self, accel):
        """Updates compose with further smart-memory operations."""
        values = [8, 2, 6, 4]
        accel.sort(values, ensure_distinct=False)
        accel.write_at(0, 1)
        accel.write_at(3, 9)
        got = [accel.read_at(i) for i in range(4)]
        assert got == [1, 4, 6, 9]

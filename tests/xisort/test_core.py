"""Unit tests for the ξ-sort core: controller FSM, microprograms, algorithms."""

import random

import pytest

from repro.xisort import (
    MICROCODE,
    XI_FIND_PIVOT,
    XI_LOAD,
    XI_SPLIT,
    XI_STATUS,
    DirectXiSortMachine,
    SoftwareXiSort,
    program_length,
)


class TestControllerFsm:
    """Thesis Fig. 3.10: the two-state Idle/Run FSM."""

    def test_idle_until_dispatch(self):
        m = DirectXiSortMachine(8)
        assert not m.core.running.value
        m.sim.step(5)
        assert not m.core.running.value

    def test_runs_for_program_length_then_idles(self):
        m = DirectXiSortMachine(8)
        out = m.op(XI_STATUS)
        assert not m.core.running.value
        # dispatch edge + program length + final commit
        assert out["cycles"] == program_length(XI_STATUS) + 1

    def test_unknown_variety_completes_harmlessly(self):
        m = DirectXiSortMachine(8)
        out = m.op(0x7E)
        assert out["data1"] == 0 and out["flags"] == 0
        assert not m.core.running.value


class TestMicroprograms:
    def test_all_programs_are_constant_length(self):
        # the headline property: program length never depends on n
        for variety, prog in MICROCODE.items():
            assert len(prog) == program_length(variety)
            assert prog[-1].done

    def test_load_places_value_with_initial_interval(self):
        m = DirectXiSortMachine(4)
        m.op(XI_LOAD, 42, 3)
        s = m.core.array.states()[0]
        assert (s.data, s.lower, s.upper) == (42, 0, 3)

    def test_load_shifts_previous_values(self):
        m = DirectXiSortMachine(4)
        m.op(XI_LOAD, 1, 2)
        m.op(XI_LOAD, 2, 2)
        m.op(XI_LOAD, 3, 2)
        data = [s.data for s in m.core.array.states()]
        assert data[:3] == [3, 2, 1]

    def test_find_pivot_none_when_all_precise(self):
        m = DirectXiSortMachine(4)
        assert m.find_pivot() is None  # empty array: sentinels are precise

    def test_find_pivot_returns_leftmost_imprecise(self):
        m = DirectXiSortMachine(4)
        m.load([7, 9])
        pivot = m.find_pivot()
        assert pivot is not None
        datum, lo, hi = pivot
        assert (lo, hi) == (0, 1)
        assert datum == 9  # last loaded sits in cell 0 — the leftmost

    def test_split_partitions_segment(self):
        m = DirectXiSortMachine(8)
        m.load([3, 1, 4, 1 + 8, 5])  # distinct values
        pivot = m.find_pivot()
        k = m.split(*pivot)
        # pivot cell now precise at rank k
        states = [s for s in m.core.array.states() if s.data == pivot[0]]
        assert states[0].lower == states[0].upper == k

    def test_split_emits_k(self):
        m = DirectXiSortMachine(8)
        vals = [10, 30, 20, 40]
        m.load(vals)
        datum, lo, hi = m.find_pivot()
        k = m.split(datum, lo, hi)
        assert k == sorted(vals).index(datum)

    def test_status_counts_imprecise(self):
        m = DirectXiSortMachine(8)
        assert m.imprecise_count() == 0
        m.load([5, 6, 7])
        assert m.imprecise_count() == 3

    def test_read_at_missing_returns_none(self):
        m = DirectXiSortMachine(4)
        m.load([9, 5])
        assert m.read_at(0) is None  # not yet refined


class TestAlgorithms:
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 15])
    def test_sort_random(self, n):
        rng = random.Random(n)
        values = rng.sample(range(10_000), n)
        m = DirectXiSortMachine(max(2, n))
        assert m.sort(values) == sorted(values)

    def test_sort_already_sorted(self):
        m = DirectXiSortMachine(8)
        assert m.sort([1, 2, 3, 4]) == [1, 2, 3, 4]

    def test_sort_reverse(self):
        m = DirectXiSortMachine(8)
        assert m.sort([9, 7, 5, 3]) == [3, 5, 7, 9]

    def test_machine_reusable_across_sorts(self):
        m = DirectXiSortMachine(8)
        assert m.sort([3, 1, 2]) == [1, 2, 3]
        assert m.sort([6, 5, 4]) == [4, 5, 6]

    @pytest.mark.parametrize("k", [0, 3, 9])
    def test_select(self, k):
        rng = random.Random(k)
        values = rng.sample(range(1000), 10)
        m = DirectXiSortMachine(16)
        assert m.select(values, k) == sorted(values)[k]

    def test_select_touches_fewer_segments_than_sort(self):
        rng = random.Random(5)
        values = rng.sample(range(10_000), 24)
        m1 = DirectXiSortMachine(32)
        m1.sort(values)
        sort_cycles = m1.cycles
        m2 = DirectXiSortMachine(32)
        m2.select(values, 12)
        select_cycles = m2.cycles
        assert select_cycles < sort_cycles


class TestFixedCycleProperty:
    """'Each operation takes a fixed number of clock cycles' (§IV.B)."""

    def test_split_cycles_independent_of_n(self):
        costs = {}
        for n in (4, 16, 64, 256):
            m = DirectXiSortMachine(n)
            m.load(random.Random(n).sample(range(100_000), max(2, n // 2)))
            pivot = m.find_pivot()
            before = m.cycles
            m.split(*pivot)
            costs[n] = m.cycles - before
        assert len(set(costs.values())) == 1, costs

    def test_all_ops_independent_of_n(self):
        from repro.analysis import measure_xisort_step_costs

        a = measure_xisort_step_costs(8)
        b = measure_xisort_step_costs(128)
        assert (a.load_cycles, a.split_cycles, a.find_pivot_cycles, a.read_at_cycles) == (
            b.load_cycles, b.split_cycles, b.find_pivot_cycles, b.read_at_cycles
        )


class TestAgainstSoftwareReference:
    def test_same_results_as_software_xisort(self):
        rng = random.Random(77)
        values = rng.sample(range(100_000), 20)
        hw = DirectXiSortMachine(32).sort(values)
        sw = SoftwareXiSort(values).sort()
        assert hw == sw == sorted(values)

    def test_structural_array_machine(self):
        values = [5, 3, 8, 1]
        m = DirectXiSortMachine(4, array_kind="structural")
        assert m.sort(values) == sorted(values)

"""Unit tests for the SIMD cell transition function (experiment F9)."""

import pytest

from repro.xisort import SENTINEL, CellCmd, CellState, cell_step


def make(data=0, lower=0, upper=10, selected=True, saved=False):
    return CellState(data=data, lower=lower, upper=upper,
                     selected=selected, saved=saved)


class TestSelection:
    def test_select_all(self):
        s = cell_step(make(selected=False), CellCmd.SELECT_ALL)
        assert s.selected

    def test_select_imprecise_keeps_imprecise(self):
        assert cell_step(make(lower=1, upper=5), CellCmd.SELECT_IMPRECISE).selected
        assert not cell_step(make(lower=3, upper=3), CellCmd.SELECT_IMPRECISE).selected

    def test_select_imprecise_requires_prior_selection(self):
        s = make(lower=1, upper=5, selected=False)
        assert not cell_step(s, CellCmd.SELECT_IMPRECISE).selected

    @pytest.mark.parametrize(
        "cmd,data,bcast,expect",
        [
            (CellCmd.MATCH_DATA_LT, 5, 7, True),
            (CellCmd.MATCH_DATA_LT, 7, 7, False),
            (CellCmd.MATCH_DATA_EQ, 7, 7, True),
            (CellCmd.MATCH_DATA_EQ, 8, 7, False),
            (CellCmd.MATCH_DATA_GT, 9, 7, True),
            (CellCmd.MATCH_DATA_GT, 7, 7, False),
        ],
    )
    def test_data_matches(self, cmd, data, bcast, expect):
        assert cell_step(make(data=data), cmd, broadcast=bcast).selected == expect

    @pytest.mark.parametrize(
        "cmd,field_val,bcast,expect",
        [
            (CellCmd.MATCH_LOWER_BOUND, 4, 4, True),
            (CellCmd.MATCH_LOWER_BOUND, 4, 5, False),
            (CellCmd.MATCH_LOWER_BOUND_I, 4, 6, True),   # lower <= k
            (CellCmd.MATCH_LOWER_BOUND_I, 4, 3, False),
        ],
    )
    def test_lower_bound_matches(self, cmd, field_val, bcast, expect):
        s = make(lower=field_val)
        assert cell_step(s, cmd, broadcast=bcast).selected == expect

    @pytest.mark.parametrize(
        "cmd,field_val,bcast,expect",
        [
            (CellCmd.MATCH_UPPER_BOUND, 9, 9, True),
            (CellCmd.MATCH_UPPER_BOUND, 9, 8, False),
            (CellCmd.MATCH_UPPER_BOUND_I, 9, 7, True),   # upper >= k
            (CellCmd.MATCH_UPPER_BOUND_I, 9, 10, False),
        ],
    )
    def test_upper_bound_matches(self, cmd, field_val, bcast, expect):
        s = make(upper=field_val)
        assert cell_step(s, cmd, broadcast=bcast).selected == expect

    def test_matches_need_prior_selection(self):
        s = make(data=1, selected=False)
        assert not cell_step(s, CellCmd.MATCH_DATA_LT, broadcast=10).selected


class TestUpdates:
    def test_set_bounds_only_when_selected(self):
        s = cell_step(make(selected=True), CellCmd.SET_BOUNDS, broadcast=7)
        assert (s.lower, s.upper) == (7, 7)
        s2 = cell_step(make(selected=False), CellCmd.SET_BOUNDS, broadcast=7)
        assert (s2.lower, s2.upper) == (0, 10)

    def test_set_lower_and_upper_independent(self):
        s = cell_step(make(), CellCmd.SET_LOWER_BOUND, broadcast=3)
        assert s.lower == 3 and s.upper == 10
        s = cell_step(s, CellCmd.SET_UPPER_BOUND, broadcast=8)
        assert s.upper == 8

    def test_bounds_masked_to_interval_bits(self):
        s = cell_step(make(), CellCmd.SET_BOUNDS, broadcast=0x1_0005)
        assert s.lower == 5

    def test_load_selected_writes_data(self):
        s = cell_step(make(selected=True), CellCmd.LOAD_SELECTED, broadcast=999)
        assert s.data == 999
        s2 = cell_step(make(selected=False), CellCmd.LOAD_SELECTED, broadcast=999)
        assert s2.data == 0

    def test_save_restore(self):
        s = cell_step(make(selected=True), CellCmd.SAVE)
        assert s.saved
        s = cell_step(s, CellCmd.SELECT_IMPRECISE, broadcast=0)  # may clear sel
        s = cell_step(s, CellCmd.RESTORE)
        assert s.selected


class TestLoadShift:
    def test_first_cell_takes_load_buses(self):
        s = cell_step(make(), CellCmd.LOAD, load_data=42, load_lower=0,
                      load_upper=15, is_first=True)
        assert (s.data, s.lower, s.upper) == (42, 0, 15)
        assert not s.selected and not s.saved

    def test_other_cells_shift_from_neighbour(self):
        prev = CellState(data=5, lower=1, upper=2, selected=True, saved=True)
        s = cell_step(make(), CellCmd.LOAD, shift_in=prev)
        assert (s.data, s.lower, s.upper) == (5, 1, 2)
        assert not s.selected and not s.saved  # flags do not shift

    def test_clear_returns_to_sentinel(self):
        s = cell_step(make(data=5, lower=1, upper=2), CellCmd.CLEAR)
        assert s == CellState()
        assert s.lower == SENTINEL and s.upper == SENTINEL
        assert not s.imprecise  # sentinel cells are precise → never pivots


def test_nop_identity():
    s = make(data=3, lower=1, upper=9, selected=True, saved=True)
    assert cell_step(s, CellCmd.NOP) == s


def test_unknown_command_rejected():
    with pytest.raises(ValueError):
        cell_step(make(), 99)

"""Host-driven χ-sort through the full framework (experiment C4 correctness)."""

import random

import pytest

from repro.host import Session
from repro.isa import Opcode
from repro.fu import default_registry
from repro.system import build_system
from repro.xisort import XiSortAccelerator, xisort_factory


@pytest.fixture
def accel():
    registry = default_registry()
    registry.register(Opcode.XISORT, xisort_factory(n_cells=32))
    session = Session(build_system(registry=registry))
    return XiSortAccelerator(session)


class TestFrameworkXiSort:
    def test_sort_random(self, accel):
        values = random.Random(9).sample(range(100_000), 16)
        assert accel.sort(values) == sorted(values)

    def test_sort_with_duplicates(self, accel):
        values = [7, 3, 7, 1, 3, 3, 9]
        assert accel.sort(values) == sorted(values)

    def test_sort_empty_and_single(self, accel):
        assert accel.sort([]) == []
        assert accel.sort([5]) == [5]

    def test_select(self, accel):
        values = random.Random(2).sample(range(10_000), 12)
        for k in (0, 6, 11):
            assert accel.select(values, k) == sorted(values)[k]

    def test_select_out_of_range(self, accel):
        with pytest.raises(IndexError):
            accel.select([1, 2, 3], 3)

    def test_imprecise_count_reaches_zero(self, accel):
        values = random.Random(4).sample(range(1000), 8)
        accel.sort(values)
        assert accel.imprecise_count() == 0

    def test_reuse_across_workloads(self, accel):
        a = random.Random(5).sample(range(1000), 8)
        b = random.Random(6).sample(range(1000), 10)
        assert accel.sort(a) == sorted(a)
        assert accel.select(b, 3) == sorted(b)[3]

    def test_scoreboard_chains_pivot_into_split(self, accel):
        """FIND_PIVOT's results are consumed by SPLIT with no host copy.

        The only host↔coprocessor traffic per refinement round is one flag
        read; the pivot datum and interval stay in coprocessor registers,
        sequenced purely by the lock manager.
        """
        values = random.Random(8).sample(range(1000), 8)
        accel.reset()
        accel.load([(v << 3) | i for i, v in enumerate(values)])
        rounds = 0
        while accel.find_pivot():
            accel.split()
            rounds += 1
        assert rounds >= 3  # at least a few refinement rounds happened
        assert accel.imprecise_count() == 0

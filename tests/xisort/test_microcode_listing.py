"""Tests for the microcode ROM listing formatter."""

from repro.xisort import (
    MICROCODE,
    XI_LOAD,
    XI_SPLIT,
    format_microcode,
    format_microinstr,
    program_length,
)
from repro.xisort.microcode import MicroInstr


class TestFormatter:
    def test_full_rom_lists_every_program(self):
        text = format_microcode()
        for name in ("XI_LOAD", "XI_SPLIT", "XI_FIND_PIVOT", "XI_READ_AT",
                     "XI_STATUS", "XI_RESET", "XI_WRITE_AT", "XI_RANK",
                     "XI_COUNT_EQ"):
            assert name in text

    def test_listing_line_count_matches_rom(self):
        text = format_microcode([XI_SPLIT])
        body = [l for l in text.splitlines() if l.startswith("  ")]
        assert len(body) == program_length(XI_SPLIT)

    def test_load_shows_bus_sources(self):
        text = format_microcode([XI_LOAD])
        assert "LOAD" in text and "data=op_a" in text and "hi=op_b" in text

    def test_done_marked(self):
        text = format_microcode([XI_SPLIT])
        assert text.rstrip().endswith("DONE")

    def test_nop_word(self):
        assert format_microinstr(MicroInstr()) == "nop"

    def test_alu_and_emit_rendering(self):
        text = format_microcode([XI_SPLIT])
        assert "t2 := mov(count, count)" in text
        assert "data1 ← t2" in text

    def test_unknown_varieties_skipped(self):
        assert format_microcode([0x7E]) == ""

    def test_every_program_renders_without_error(self):
        for variety in MICROCODE:
            assert format_microcode([variety])

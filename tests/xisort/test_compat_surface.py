"""Backwards-compat pin: rebasing ξ-sort onto the smart-memory kit must
not move its public import surface.

Everything downstream of the refactor — ``examples/xisort_demo.py``, the
C3/C4 benchmarks, user code following the tutorial — imports from
``repro.xisort``; these tests freeze that surface so a future kit change
cannot silently break it.  The module-level re-exports (tree machinery,
microcode word, interval packing) must keep resolving even though they
now live in :mod:`repro.smem`.
"""

from __future__ import annotations

import importlib
import importlib.util
import sys
from pathlib import Path

import pytest

import repro.xisort as xisort

REPO = Path(__file__).resolve().parents[2]

#: the surface as shipped before the kit refactor — frozen, append-only
FROZEN_SURFACE = [
    "XiSortUnit",
    "xisort_factory",
    "XiSortAccelerator",
    "INTERVAL_BITS",
    "SENTINEL",
    "Cell",
    "CellCmd",
    "CellState",
    "cell_step",
    "StructuralCellArray",
    "VectorCellArray",
    "XiSortController",
    "DirectXiSortMachine",
    "XiSortCore",
    "MICROCODE",
    "XI_FIND_PIVOT",
    "XI_FIND_PIVOT_AT",
    "XI_FLAG_FOUND",
    "XI_LOAD",
    "XI_READ_AT",
    "XI_RESET",
    "XI_SPLIT",
    "XI_STATUS",
    "XI_WRITE_AT",
    "XI_RANK",
    "XI_COUNT_EQ",
    "MicroInstr",
    "format_microcode",
    "format_microinstr",
    "pack_interval",
    "program_length",
    "unpack_interval",
    "write_profile",
    "SoftwareXiSort",
    "SwCell",
    "quickselect_counted",
    "quicksort_counted",
    "NodeValue",
    "TreeNetwork",
    "fold_reduce",
]


class TestFrozenSurface:
    def test_all_still_exports_the_frozen_surface(self):
        missing = [n for n in FROZEN_SURFACE if n not in xisort.__all__]
        assert missing == [], f"names dropped from repro.xisort.__all__: {missing}"

    @pytest.mark.parametrize("name", FROZEN_SURFACE)
    def test_name_resolves(self, name):
        assert getattr(xisort, name, None) is not None

    def test_submodules_keep_their_homes(self):
        """Pre-kit import paths (submodule level) still work."""
        for mod, names in {
            "repro.xisort.tree": ["TreeNetwork", "NodeValue", "fold_reduce"],
            "repro.xisort.microcode": ["MICROCODE", "pack_interval",
                                       "unpack_interval", "write_profile"],
            "repro.xisort.cell": ["Cell", "CellCmd", "CellState", "cell_step"],
            "repro.xisort.cellarray": ["VectorCellArray", "StructuralCellArray"],
            "repro.xisort.controller": ["XiSortController", "N_TEMPS"],
            "repro.xisort.core": ["XiSortCore", "DirectXiSortMachine"],
            "repro.xisort.adapter": ["XiSortUnit", "xisort_factory",
                                     "AdapterState"],
            "repro.xisort.algorithm": ["XiSortAccelerator"],
        }.items():
            m = importlib.import_module(mod)
            for n in names:
                assert hasattr(m, n), f"{mod} lost {n}"

    def test_tree_is_the_kit_tree(self):
        """The shim re-exports, not forks: one TreeNetwork in the system."""
        from repro.smem.tree import TreeNetwork as kit_tree
        from repro.xisort.tree import TreeNetwork as compat_tree

        assert compat_tree is kit_tree


def _load_script(path: Path, name: str):
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestDownstreamImports:
    """The shipped entry points still import (their import-time surface is
    exactly what the kit refactor could have broken)."""

    def test_xisort_demo_imports(self):
        mod = _load_script(REPO / "examples" / "xisort_demo.py", "xisort_demo")
        assert callable(mod.full_framework_demo)

    @pytest.mark.parametrize("bench", ["bench_c3_xisort_vs_cpu",
                                       "bench_c4_xisort_end_to_end"])
    def test_xisort_benchmarks_import(self, bench):
        # the bench files do `from conftest import report`
        sys.path.insert(0, str(REPO / "benchmarks"))
        try:
            mod = _load_script(REPO / "benchmarks" / f"{bench}.py", bench)
        finally:
            sys.path.remove(str(REPO / "benchmarks"))
        assert mod is not None

"""Unit tests for the software baselines (and their Θ(n)-per-step cost)."""

import random

import pytest

from repro.host import OpCounter
from repro.xisort import (
    SoftwareXiSort,
    quickselect_counted,
    quicksort_counted,
)


class TestSoftwareXiSort:
    @pytest.mark.parametrize("n", [1, 2, 5, 20])
    def test_sort_correct(self, n):
        values = random.Random(n).sample(range(10_000), n)
        assert SoftwareXiSort(values).sort() == sorted(values)

    @pytest.mark.parametrize("k", [0, 4, 11])
    def test_select_correct(self, k):
        values = random.Random(k).sample(range(1000), 12)
        assert SoftwareXiSort(values).select(k) == sorted(values)[k]

    def test_split_step_cost_scales_with_n(self):
        """The CPU-side half of claim C3: per-step cost is Θ(n)."""
        costs = {}
        for n in (16, 64, 256):
            values = random.Random(7).sample(range(100_000), n)
            sw = SoftwareXiSort(values)
            pivot = sw.find_pivot()
            before = sw.counter.ops
            sw.split(pivot)
            costs[n] = sw.counter.ops - before
        assert costs[64] > 2 * costs[16]
        assert costs[256] > 2 * costs[64]

    def test_find_pivot_scan_cost(self):
        values = list(range(100, 0, -1))
        sw = SoftwareXiSort(values)
        sw.find_pivot()
        assert sw.counter.ops >= 1  # leftmost imprecise found quickly
        # after full sort a pivot scan walks all n cells
        sw.sort()
        before = sw.counter.ops
        assert sw.find_pivot() is None
        assert sw.counter.ops - before == len(values)

    def test_counter_breakdown(self):
        values = [4, 2, 9]
        sw = SoftwareXiSort(values)
        sw.sort()
        assert set(sw.counter.breakdown) <= {"scan", "match", "compare", "update"}
        assert sw.counter.ops == sum(sw.counter.breakdown.values())

    def test_split_steps_counted(self):
        values = random.Random(1).sample(range(1000), 10)
        sw = SoftwareXiSort(values)
        sw.sort()
        assert sw.split_steps >= 1


class TestClassicBaselines:
    @pytest.mark.parametrize("n", [1, 3, 10, 50])
    def test_quicksort(self, n):
        values = random.Random(n).sample(range(10_000), n)
        counter = OpCounter()
        assert quicksort_counted(values, counter) == sorted(values)
        if n > 1:
            assert counter.ops > 0

    def test_quicksort_handles_duplicates(self):
        values = [3, 1, 3, 2, 1, 3]
        assert quicksort_counted(values) == sorted(values)

    @pytest.mark.parametrize("k", [0, 7, 19])
    def test_quickselect(self, k):
        values = random.Random(k).sample(range(5000), 20)
        counter = OpCounter()
        assert quickselect_counted(values, k, counter) == sorted(values)[k]

    def test_quickselect_cheaper_than_quicksort(self):
        values = random.Random(3).sample(range(100_000), 200)
        c_sort, c_sel = OpCounter(), OpCounter()
        quicksort_counted(values, c_sort)
        quickselect_counted(values, 100, c_sel)
        assert c_sel.ops < c_sort.ops

"""Structural vs vectorised cell-array equivalence (design decision 5).

The vectorised NumPy array is the production model; the per-cell
structural array is the faithful picture of the synthesised design.  They
must be cycle-for-cycle identical.
"""

import random

import pytest

from repro.hdl import Component, Simulator
from repro.xisort import CellCmd, StructuralCellArray, VectorCellArray


class DualHarness(Component):
    """Drives identical command streams into both implementations."""

    def __init__(self, n_cells=6):
        super().__init__("dh")
        self.vec = VectorCellArray("vec", n_cells, 32, parent=self)
        self.struct = StructuralCellArray("struct", n_cells, 32, parent=self)
        self.script = []  # (cmd, broadcast, load_data, load_lower, load_upper)

        @self.comb(always=True)
        def _drive():
            if self.script:
                cmd, bcast, ld, ll, lu = self.script[0]
            else:
                cmd, bcast, ld, ll, lu = CellCmd.NOP, 0, 0, 0, 0
            for arr in (self.vec, self.struct):
                arr.cmd.set(int(cmd))
                arr.broadcast.set(bcast)
                arr.load_data.set(ld)
                arr.load_lower.set(ll)
                arr.load_upper.set(lu)

        @self.seq
        def _tick():
            if self.script:
                self.script.pop(0)

    def run_script(self, sim, script):
        self.script = list(script)
        sim.step(len(script) + 1)

    def assert_equal(self):
        vs, ss = self.vec.states(), self.struct.states()
        assert vs == ss, f"state divergence:\n vec={vs}\n struct={ss}"
        assert self.vec.count.value == self.struct.count.value
        assert self.vec.leftmost_found.value == self.struct.leftmost_found.value
        if self.vec.leftmost_found.value:
            assert self.vec.leftmost_data.value == self.struct.leftmost_data.value
            assert self.vec.leftmost_lower.value == self.struct.leftmost_lower.value
            assert self.vec.leftmost_upper.value == self.struct.leftmost_upper.value
        assert self.vec.selected_value.value == self.struct.selected_value.value


def _load_script(values, n):
    return [(CellCmd.LOAD, 0, v, 0, n - 1) for v in values]


class TestEquivalence:
    def test_load_sequence(self):
        h = DualHarness(4)
        sim = Simulator(h)
        sim.reset()
        h.run_script(sim, _load_script([10, 20, 30], 3))
        sim.settle()
        h.assert_equal()
        # last value loaded sits in cell 0
        assert h.vec.states()[0].data == 30

    def test_select_and_match_sequence(self):
        h = DualHarness(5)
        sim = Simulator(h)
        sim.reset()
        script = _load_script([5, 9, 2, 7], 4) + [
            (CellCmd.SELECT_ALL, 0, 0, 0, 0),
            (CellCmd.MATCH_DATA_LT, 7, 0, 0, 0),
            (CellCmd.SAVE, 0, 0, 0, 0),
            (CellCmd.SET_UPPER_BOUND, 1, 0, 0, 0),
            (CellCmd.RESTORE, 0, 0, 0, 0),
        ]
        h.run_script(sim, script)
        sim.settle()
        h.assert_equal()

    def test_random_command_soak(self):
        rng = random.Random(1234)
        h = DualHarness(6)
        sim = Simulator(h)
        sim.reset()
        cmds = list(CellCmd)
        script = []
        for _ in range(120):
            cmd = rng.choice(cmds)
            script.append((cmd, rng.randrange(0, 64), rng.randrange(0, 64),
                           rng.randrange(0, 16), rng.randrange(0, 16)))
        h.run_script(sim, script)
        sim.settle()
        h.assert_equal()

    def test_tree_outputs_after_selection(self):
        h = DualHarness(5)
        sim = Simulator(h)
        sim.reset()
        h.run_script(sim, _load_script([4, 8, 15, 16, 23], 5) + [
            (CellCmd.SELECT_ALL, 0, 0, 0, 0),
            (CellCmd.MATCH_DATA_GT, 10, 0, 0, 0),
        ])
        sim.settle()
        h.assert_equal()
        assert h.vec.count.value == 3  # 15, 16, 23


def test_sentinel_validation():
    with pytest.raises(ValueError):
        VectorCellArray("x", 0xFFFF + 1)
    with pytest.raises(ValueError):
        VectorCellArray("x", 0)

"""Unit tests for the tree network (experiment F8)."""

import numpy as np
import pytest

from repro.xisort import NodeValue, TreeNetwork, fold_reduce, tree_depth, tree_node_count


class TestFoldReduce:
    def test_count(self):
        sel = [True, False, True, True]
        assert fold_reduce(sel, [1, 2, 3, 4]).count == 3

    def test_leftmost(self):
        assert fold_reduce([False, True, True], [9, 8, 7]).leftmost == 1
        assert fold_reduce([False, False], [1, 2]).leftmost is None

    def test_single_selected_retrieval(self):
        v = fold_reduce([False, True, False], [10, 20, 30])
        assert v.any_value == 20

    def test_empty_leaves(self):
        v = fold_reduce([], [])
        assert v.count == 0 and v.leftmost is None

    def test_non_power_of_two(self):
        sel = [True] * 5
        assert fold_reduce(sel, list(range(5))).count == 5

    def test_operator_associativity(self):
        a = NodeValue.leaf(0, True, 3)
        b = NodeValue.leaf(1, False, 0)
        c = NodeValue.leaf(2, True, 5)
        left = a.combine(b).combine(c)
        right = a.combine(b.combine(c))
        assert left == right


class TestTreeNetwork:
    def test_matches_fold(self):
        rng = np.random.default_rng(3)
        for n in (1, 2, 7, 16, 33):
            sel = rng.random(n) < 0.4
            data = rng.integers(0, 1000, n).astype(np.uint64)
            tree = TreeNetwork(n)
            folded = fold_reduce(list(sel), list(int(d) for d in data))
            assert tree.count(sel) == folded.count
            assert tree.leftmost(sel) == folded.leftmost

    def test_selected_value_unique(self):
        tree = TreeNetwork(4)
        sel = np.array([False, False, True, False])
        data = np.array([1, 2, 42, 4], dtype=np.uint64)
        assert tree.selected_value(sel, data) == 42

    def test_selected_value_none_selected(self):
        tree = TreeNetwork(4)
        assert tree.selected_value(np.zeros(4, bool), np.zeros(4, np.uint64)) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TreeNetwork(0)


class TestGeometry:
    """The logarithmic-delay / linear-area structure of the tree (Fig. 8)."""

    @pytest.mark.parametrize("n,depth", [(1, 0), (2, 1), (4, 2), (5, 3), (64, 6), (100, 7)])
    def test_depth_is_log(self, n, depth):
        assert tree_depth(n) == depth

    @pytest.mark.parametrize("n", [1, 2, 8, 100])
    def test_node_count_is_linear(self, n):
        assert tree_node_count(n) == max(0, n - 1)

    def test_depth_grows_slower_than_nodes(self):
        # doubling leaves adds one level but doubles nodes
        assert tree_depth(256) == tree_depth(128) + 1
        assert tree_node_count(256) == 2 * tree_node_count(128) + 1

"""Constant-time rank and membership queries on the smart memory.

The paper's "active data structures" point (§IV.B): "With circuit
parallelism, data structures can be active ... a richer set of primitive
operations."  Rank and multiplicity are such primitives: every cell
compares in parallel and the tree counts — O(1) cycles where software
walks all n elements.
"""

import bisect
import random

import pytest

from repro.fu import default_registry
from repro.host import Session
from repro.isa import Opcode
from repro.system import build_system
from repro.xisort import (
    XI_COUNT_EQ,
    XI_RANK,
    DirectXiSortMachine,
    XiSortAccelerator,
    program_length,
    xisort_factory,
)


class TestRank:
    def test_matches_bisect(self):
        values = random.Random(1).sample(range(10_000), 20)
        m = DirectXiSortMachine(32)
        m.reset_array()
        m.load(values)
        ordered = sorted(values)
        for probe in list(values)[:5] + [0, 5000, 99999]:
            assert m.rank(probe) == bisect.bisect_left(ordered, probe)

    def test_rank_works_before_any_sorting(self):
        """Rank needs no refinement — it reads the raw data in parallel."""
        m = DirectXiSortMachine(8)
        m.reset_array()
        m.load([30, 10, 20])
        assert m.rank(25) == 2
        assert m.imprecise_count() == 3  # still completely unsorted

    def test_empty_cells_never_counted(self):
        m = DirectXiSortMachine(16)
        m.reset_array()
        m.load([7])
        # 15 empty cells hold data=0; a probe above 0 must not count them
        assert m.rank(100) == 1

    def test_constant_cycles(self):
        costs = set()
        for n in (8, 64, 512):
            m = DirectXiSortMachine(n)
            m.reset_array()
            m.load(random.Random(n).sample(range(1000), 5))
            before = m.cycles
            m.rank(500)
            costs.add(m.cycles - before)
        assert len(costs) == 1
        assert program_length(XI_RANK) == 4


class TestCountEq:
    def test_multiplicity(self):
        m = DirectXiSortMachine(8)
        m.reset_array()
        m.load([5, 3, 5, 5, 2])
        assert m.count_eq(5) == 3
        assert m.count_eq(3) == 1
        assert m.count_eq(9) == 0

    def test_zero_value_membership(self):
        """Data value 0 must be distinguishable from empty cells."""
        m = DirectXiSortMachine(8)
        m.reset_array()
        m.load([0, 1])
        assert m.count_eq(0) == 1
        assert program_length(XI_COUNT_EQ) == 4


class TestThroughFramework:
    @pytest.fixture
    def accel(self):
        registry = default_registry()
        registry.register(Opcode.XISORT, xisort_factory(n_cells=16))
        return XiSortAccelerator(Session(build_system(registry=registry)))

    def test_rank_and_membership_end_to_end(self, accel):
        values = [40, 10, 30, 20]
        accel.reset()
        accel.load(values)
        assert accel.rank(25) == 2
        assert accel.count_eq(30) == 1
        assert accel.count_eq(99) == 0

    def test_percentile_via_rank(self, accel):
        """A realistic composite: streaming percentile check without sorting."""
        rng = random.Random(9)
        values = rng.sample(range(1000), 12)
        accel.reset()
        accel.load(values)
        threshold = 500
        below = accel.rank(threshold)
        assert below == sum(1 for v in values if v < threshold)

"""Unit tests for the ξ-sort functional-unit adapter (experiment F9b)."""

import pytest

from repro.fu import UnitOp
from repro.fu.testbench import FuTestbench
from repro.hdl import Simulator
from repro.xisort import (
    XI_FIND_PIVOT,
    XI_LOAD,
    XI_READ_AT,
    XI_RESET,
    XI_SPLIT,
    XI_STATUS,
    XiSortUnit,
    pack_interval,
    write_profile,
    xisort_factory,
)
from repro.xisort.adapter import AdapterState


def _tb(n_cells=8):
    tb = FuTestbench(lambda n, p: XiSortUnit(n, 32, p, n_cells=n_cells))
    sim = Simulator(tb)
    sim.reset()
    return tb, sim


def _run_op(tb, sim, op, max_cycles=200):
    before = tb.completed + 0
    tb.enqueue([op])
    target_dispatch = tb.dispatched + 1
    sim.run_until(
        lambda: tb.dispatched >= target_dispatch and tb.unit.dp.idle.value
        and not tb.unit.rp.ready.value,
        max_cycles,
    )


class TestAdapterFsm:
    def test_idle_initially(self):
        tb, sim = _tb()
        assert tb.unit.dp.idle.value
        assert AdapterState(tb.unit._state.value) == AdapterState.IDLE

    def test_busy_while_core_runs(self):
        tb, sim = _tb()
        tb.enqueue([UnitOp(XI_SPLIT, 5, pack_interval(0, 3), dst1=1)])
        sim.step(3)
        assert not tb.unit.dp.idle.value

    def test_returns_to_idle_after_send(self):
        tb, sim = _tb()
        _run_op(tb, sim, UnitOp(XI_STATUS, dst1=1))
        assert AdapterState(tb.unit._state.value) == AdapterState.IDLE

    def test_operations_counted(self):
        tb, sim = _tb()
        _run_op(tb, sim, UnitOp(XI_STATUS, dst1=1))
        _run_op(tb, sim, UnitOp(XI_STATUS, dst1=1))
        assert tb.unit.operations == 2


class TestTransferShapes:
    def test_load_produces_no_transfers(self):
        tb, sim = _tb()
        _run_op(tb, sim, UnitOp(XI_LOAD, 42, 3))
        assert tb.collected == []

    def test_status_produces_one_data_transfer(self):
        tb, sim = _tb()
        _run_op(tb, sim, UnitOp(XI_STATUS, dst1=5))
        (t,) = tb.collected
        assert t.data_reg == 5 and not t.has_flags

    def test_find_pivot_produces_two_transfers_with_flags(self):
        tb, sim = _tb()
        _run_op(tb, sim, UnitOp(XI_LOAD, 42, 1))
        _run_op(tb, sim, UnitOp(XI_LOAD, 17, 1))
        tb.collected.clear()
        _run_op(tb, sim, UnitOp(XI_FIND_PIVOT, dst1=1, dst2=2, dst_flag=3))
        assert len(tb.collected) == 2
        first, second = tb.collected
        assert first.data_reg == 1 and first.has_flags and first.flag_reg == 3
        assert first.flag_value & 0x1  # found
        assert not first.last
        assert second.data_reg == 2 and second.last
        assert second.data_value == pack_interval(0, 1)

    def test_read_at_flags_absence(self):
        tb, sim = _tb()
        _run_op(tb, sim, UnitOp(XI_READ_AT, 0, dst1=1, dst_flag=2))
        (t,) = tb.collected
        assert not t.flag_value & 0x1  # nothing at index 0 in an empty array


class TestWriteProfile:
    def test_profile_matches_transfers(self):
        assert write_profile(XI_LOAD) == (False, False, False)
        assert write_profile(XI_RESET) == (False, False, False)
        assert write_profile(XI_FIND_PIVOT) == (True, True, True)
        assert write_profile(XI_READ_AT) == (True, False, True)
        assert write_profile(XI_SPLIT) == (True, False, False)
        assert write_profile(XI_STATUS) == (True, False, False)

    def test_unknown_variety_claims_nothing(self):
        assert write_profile(0x66) == (False, False, False)

    def test_factory_builds_sized_units(self):
        unit = xisort_factory(n_cells=16)("u", 32, None)
        assert unit.core.n_cells == 16

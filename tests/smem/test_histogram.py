"""The histogram machine against a collections.Counter oracle."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smem.histogram import DirectHistMachine

KINDS = ["vector", "structural"]
N_BINS = 16

samples = st.lists(st.integers(min_value=0, max_value=(1 << 16) - 1),
                   min_size=0, max_size=24)


@pytest.fixture(params=KINDS)
def machine(request):
    return DirectHistMachine(N_BINS, array_kind=request.param)


class TestHistogramBehaviour:
    def test_empty_histogram(self, machine):
        machine.reset_bins()
        assert machine.total() == 0
        assert machine.peak() is None
        assert machine.nonzero_bins() == 0
        assert machine.read_bin(0) == 0

    def test_increment_and_read(self, machine):
        machine.reset_bins()
        machine.increment(3)
        machine.increment(3)
        machine.increment(7)
        assert machine.read_bin(3) == 2
        assert machine.read_bin(7) == 1
        assert machine.read_bin(0) == 0
        assert machine.total() == 3
        assert machine.nonzero_bins() == 2

    def test_out_of_range_reads_are_invalid(self, machine):
        machine.reset_bins()
        assert machine.read_bin(N_BINS) is None
        assert machine.read_bin(999) is None

    def test_out_of_range_increment_hits_no_bin(self, machine):
        machine.reset_bins()
        machine.increment(N_BINS + 2)
        assert machine.total() == 0

    def test_sample_bins_by_power_of_two_mask(self, machine):
        machine.reset_bins()
        # n_bins = 16 is a power of two, so AND-binning is exact modulo
        machine.sample(5)
        machine.sample(5 + N_BINS)
        machine.sample(5 + 7 * N_BINS)
        assert machine.read_bin(5) == 3

    def test_peak_is_leftmost_on_ties(self, machine):
        machine.reset_bins()
        machine.load([9, 2, 9, 2])
        assert machine.peak() == (2, 2)

    def test_reset_clears(self, machine):
        machine.load([1, 2, 3])
        machine.reset_bins()
        assert machine.total() == 0 and machine.peak() is None


class TestHistogramOracle:
    @settings(max_examples=20, deadline=None)
    @given(values=samples)
    def test_matches_counter(self, values):
        m = DirectHistMachine(N_BINS)
        m.reset_bins()
        m.load(values)
        ref = Counter(v % N_BINS for v in values)
        assert m.total() == len(values)
        assert m.nonzero_bins() == len(ref)
        for b in range(N_BINS):
            assert m.read_bin(b) == ref.get(b, 0)
        if values:
            peak_bin, peak_count = m.peak()
            assert peak_count == max(ref.values())
            assert peak_bin == min(b for b, c in ref.items()
                                   if c == peak_count)

    @settings(max_examples=10, deadline=None)
    @given(values=samples)
    def test_kinds_agree(self, values):
        outcomes = set()
        for kind in KINDS:
            m = DirectHistMachine(N_BINS, array_kind=kind)
            m.reset_bins()
            m.load(values)
            outcomes.add((m.total(), m.peak(), m.nonzero_bins(), m.cycles))
        assert len(outcomes) == 1

"""End-to-end: the suite units through the full coprocessor framework.

Every dispatch crosses the message channel into the RTM, locks its
destination registers, runs the microprogram in the adapted core and
writes back through the arbiter — the same path the ξ-sort case study
takes.  Built with ``lint="error"``: the suite preset must hold the
design-rule bar the shipped presets hold.
"""

from __future__ import annotations

import pytest

from repro.fu.registry import smem_suite_registry
from repro.host.session import Session
from repro.isa.opcodes import Opcode
from repro.smem import (
    HistogramAccelerator,
    MatchAccelerator,
    ScanAccelerator,
)
from repro.system.builder import SystemBuilder, build_system


@pytest.fixture(scope="module")
def session():
    built = build_system(registry=smem_suite_registry(n_cells=16),
                        lint="error")
    with Session(built) as s:
        yield s


class TestScanThroughFramework:
    def test_scan_roundtrip(self, session):
        sc = ScanAccelerator(session)
        sc.reset()
        sc.load([3, 1, 4, 1, 5])
        assert sc.count() == 5
        assert sc.total() == 14
        assert sc.minimum() == 1 and sc.maximum() == 5
        assert sc.prefix_sum() == 14
        assert [sc.read_at(i) for i in range(5)] == [3, 4, 8, 9, 14]
        assert sc.read_at(9) is None
        sc.add_all(2)
        assert sc.read_at(0) == 5

    def test_empty_queries_invalid(self, session):
        sc = ScanAccelerator(session)
        sc.reset()
        assert sc.total() is None and sc.minimum() is None


class TestHistogramThroughFramework:
    def test_histogram_roundtrip(self, session):
        h = HistogramAccelerator(session)
        h.reset()
        h.load([1, 2, 2, 5, 5, 5])
        assert h.total() == 6
        assert h.read_bin(2) == 2
        assert h.read_bin(99) is None
        assert h.peak() == (5, 3)
        assert h.nonzero_bins() == 3
        h.increment(1)
        assert h.read_bin(1) == 2


class TestMatchThroughFramework:
    def test_match_roundtrip(self, session):
        m = MatchAccelerator(session)
        m.set_pattern(b"aba")
        assert m.pattern_length() == 3
        assert m.feed(b"abababa") == [2, 4, 6]
        assert m.hits() == 3
        m.restart()
        assert m.feed(b"xxabay") == [4]
        assert m.read_pattern_at(1) == ord("b")
        assert m.read_pattern_at(9) is None


class TestSuiteAssembly:
    def test_registry_holds_all_six_units(self):
        reg = smem_suite_registry(n_cells=8)
        assert set(reg.codes()) == {Opcode.ARITH, Opcode.LOGIC, Opcode.XISORT,
                                    Opcode.SCAN, Opcode.HISTO, Opcode.MATCH}

    def test_builder_preset_wires_the_suite(self):
        built = SystemBuilder().with_smem_suite(n_cells=8).build()
        table = built.soc.rtm.futable
        for code in (Opcode.XISORT, Opcode.SCAN, Opcode.HISTO, Opcode.MATCH):
            assert code in table

    def test_suite_units_coexist_with_arith(self, session):
        """A scan dispatch and an ALU add share the register file."""
        from repro.isa import instructions as ins

        sc = ScanAccelerator(session)
        sc.reset()
        sc.push(40)
        r = session.alloc()
        session.driver.execute(ins.add(r, sc.r_val, sc.r_val))
        assert session.read(r) == 80
        assert sc.total() == 40

    @pytest.mark.parametrize("backend", [None, "compiled"])
    def test_compiled_system_matches_event(self, backend):
        built = build_system(registry=smem_suite_registry(n_cells=8),
                            lint="error", backend=backend)
        with Session(built) as s:
            sc = ScanAccelerator(s)
            sc.reset()
            sc.load([2, 4, 6])
            h = HistogramAccelerator(s)
            h.reset()
            h.load([1, 1, 3])
            assert (sc.prefix_sum(), h.peak()) == (12, (1, 2))

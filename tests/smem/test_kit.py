"""The smart-memory kit's own machinery: microcode word, controller FSM,
contract checker, core plumbing."""

from __future__ import annotations

import pytest

from repro.smem import (
    INVALID_INSTR,
    AluOp,
    MicroInstr,
    format_microcode,
    format_microinstr,
    imm,
    pack_halves,
    t_,
    unpack_halves,
    verify_array_contract,
)
from repro.smem.core import DirectMachine
from repro.smem.scan import (
    SC_PUSH,
    SC_TOTAL,
    SCAN_MICROCODE,
    DirectScanMachine,
    ScanCore,
)


class TestMicrocodeWord:
    def test_pack_unpack_roundtrip(self):
        for lower, upper in [(0, 0), (1, 2), (0xFFFF, 0xFFFF), (12345, 54321)]:
            assert unpack_halves(pack_halves(lower, upper)) == (lower, upper)

    def test_pack_masks_to_half_width(self):
        assert pack_halves(0x1FFFF, 0) == pack_halves(0xFFFF, 0)

    def test_invalid_instr_is_terminal_and_zeroing(self):
        assert INVALID_INSTR.done
        # every output field is actively zeroed, none left stale
        assert dict(INVALID_INSTR.emit) == {
            "data1": imm(0), "data2": imm(0), "flags": imm(0)}
        assert INVALID_INSTR.alu is None

    def test_atom_helpers(self):
        assert t_(2) == ("t", 2)
        assert imm(7) == ("imm", 7)

    def test_format_microinstr_mentions_fields(self):
        instr = MicroInstr(cell_cmd=3, broadcast=("op_a",),
                           alu=(0, AluOp.ADD, t_(0), imm(1)),
                           emit=(("data1", t_(0)),), done=True)
        text = format_microinstr(instr)
        assert "DONE" in text and "data1" in text and "add" in text

    def test_format_microcode_lists_every_variety(self):
        listing = format_microcode(SCAN_MICROCODE)
        for variety in SCAN_MICROCODE:
            assert f"{variety:#04x}" in listing


class TestControllerFsm:
    def test_unknown_variety_completes_without_wedging(self):
        m = DirectScanMachine(4)
        m.load([5])
        out = m.op(0xEE)  # not in the scan ROM
        assert out["data1"] == 0 and out["flags"] == 0
        # the machine still works afterwards
        assert m.total() == 5

    def test_completed_strobes_for_one_cycle(self):
        m = DirectScanMachine(4)
        m.op(SC_PUSH, op_a=9)
        m.sim.settle()
        assert not m.core.completed.value

    def test_op_cycle_cost_is_program_length_plus_dispatch(self):
        m = DirectScanMachine(4)
        # one-word program: the start edge, then the word's commit edge
        assert m.op(SC_TOTAL)["cycles"] == 2
        # a two-word program (SELECT then emit) costs one more
        from repro.smem.scan import SC_READ_AT
        assert m.op(SC_READ_AT)["cycles"] == 3

    def test_direct_machine_guard_trips_on_runaway(self):
        from repro.smem.scan import SC_READ_AT

        m = DirectScanMachine(4)
        with pytest.raises(RuntimeError):
            m.op(SC_READ_AT, max_cycles=0)  # 2-word program, 0-cycle budget


class TestContractChecker:
    @pytest.mark.parametrize("kind", ["vector", "structural"])
    def test_clean_arrays_verify(self, kind):
        m = DirectScanMachine(8, array_kind=kind, backend="compiled")
        assert verify_array_contract(m.core.array) == []

    def test_rejects_non_kit_objects(self):
        class NotAnArray:
            pass

        problems = verify_array_contract(NotAnArray())
        assert problems, "a non-kit object must fail the contract"


class TestCorePlumbing:
    def test_core_aliases_reach_the_controller(self):
        core = ScanCore("c", 4)
        assert core.start is core.controller.start
        assert core.variety is core.controller.variety
        assert core.completed is core.controller.completed

    def test_bad_array_kind_rejected(self):
        with pytest.raises(ValueError):
            ScanCore("c", 4, array_kind="diagonal")

    def test_direct_machine_requires_core_class(self):
        with pytest.raises(TypeError):
            DirectMachine(4)  # the base has no core_class bound

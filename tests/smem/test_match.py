"""The streaming string-match machine against a naive Python oracle."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smem.match import DirectMatchMachine

KINDS = ["vector", "structural"]


def naive_ends(text: bytes, pattern: bytes) -> list[int]:
    """End positions of every (overlapping) occurrence."""
    if not pattern:
        return []
    return [i for i in range(len(pattern) - 1, len(text))
            if text[i - len(pattern) + 1:i + 1] == pattern]


small_alphabet = st.binary(min_size=0, max_size=24).map(
    lambda b: bytes(x % 3 + ord("a") for x in b)
)
patterns = st.binary(min_size=1, max_size=4).map(
    lambda b: bytes(x % 3 + ord("a") for x in b)
)


@pytest.fixture(params=KINDS)
def machine(request):
    return DirectMatchMachine(8, array_kind=request.param)


class TestMatchBehaviour:
    def test_overlapping_matches(self, machine):
        machine.set_pattern(b"aba")
        assert machine.feed(b"abababa") == [2, 4, 6]
        assert machine.hits() == 3

    def test_single_char_pattern(self, machine):
        machine.set_pattern(b"a")
        assert machine.feed(b"banana") == [1, 3, 5]

    def test_no_match(self, machine):
        machine.set_pattern(b"xyz")
        assert machine.feed(b"aaaa") == []
        assert machine.hits() == 0

    def test_empty_pattern_never_matches(self, machine):
        machine.reset_machine()
        assert machine.pattern_length() == 0
        assert machine.feed(b"abc") == []
        assert machine.hits() == 0

    def test_restart_keeps_pattern_clears_stream(self, machine):
        machine.set_pattern(b"ab")
        machine.feed(b"abab")
        assert machine.hits() == 2
        machine.restart()
        assert machine.hits() == 0
        assert machine.pattern_length() == 2
        assert machine.feed(b"ab") == [1]

    def test_read_pattern_back(self, machine):
        machine.set_pattern(b"abc")
        assert [machine.read_pattern_at(i) for i in range(3)] == [
            ord("a"), ord("b"), ord("c")]
        assert machine.read_pattern_at(3) is None

    def test_state_does_not_leak_across_set_pattern(self, machine):
        machine.set_pattern(b"aa")
        machine.feed(b"aaa")
        machine.set_pattern(b"ba")
        assert machine.feed(b"aba") == [2]
        assert machine.hits() == 1


class TestMatchOracle:
    @settings(max_examples=20, deadline=None)
    @given(text=small_alphabet, pattern=patterns)
    def test_matches_naive_scan(self, text, pattern):
        m = DirectMatchMachine(8)
        m.set_pattern(pattern)
        assert m.feed(text) == naive_ends(text, pattern)
        assert m.hits() == len(naive_ends(text, pattern))

    @settings(max_examples=10, deadline=None)
    @given(text=small_alphabet, pattern=patterns)
    def test_kinds_agree(self, text, pattern):
        outcomes = set()
        for kind in KINDS:
            m = DirectMatchMachine(8, array_kind=kind)
            m.set_pattern(pattern)
            outcomes.add((tuple(m.feed(text)), m.hits(), m.cycles))
        assert len(outcomes) == 1

"""The prefix scan/reduce machine against a numpy oracle."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smem.scan import DirectScanMachine

KINDS = ["vector", "structural"]

value_lists = st.lists(
    st.integers(min_value=0, max_value=(1 << 32) - 1), min_size=0, max_size=12
)


@pytest.fixture(params=KINDS)
def machine(request):
    return DirectScanMachine(16, array_kind=request.param)


class TestScanBehaviour:
    def test_empty_column_queries(self, machine):
        machine.reset_column()
        assert machine.count() == 0
        assert machine.total() is None
        assert machine.minimum() is None
        assert machine.maximum() is None
        assert machine.read_at(0) is None

    def test_push_and_reductions(self, machine):
        machine.reset_column()
        machine.load([7, 3, 11, 3])
        assert machine.count() == 4
        assert machine.total() == 24
        assert machine.minimum() == 3
        assert machine.maximum() == 11

    def test_prefix_sum_in_place(self, machine):
        machine.reset_column()
        machine.load([3, 1, 4, 1, 5])
        assert machine.prefix_sum() == 14
        assert [machine.read_at(i) for i in range(5)] == [3, 4, 8, 9, 14]

    def test_prefix_sum_wraps_at_word_width(self, machine):
        machine.reset_column()
        machine.load([(1 << 32) - 1, 2])
        assert machine.prefix_sum() == 1  # (2^32 - 1 + 2) mod 2^32
        assert machine.read_at(1) == 1

    def test_add_all_touches_only_occupied_cells(self, machine):
        machine.reset_column()
        machine.load([1, 2])
        machine.add_all(10)
        assert [machine.read_at(i) for i in range(3)] == [11, 12, None]

    def test_read_past_count_is_invalid(self, machine):
        machine.reset_column()
        machine.load([5])
        assert machine.read_at(1) is None
        assert machine.read_at(15) is None
        assert machine.read_at(99) is None

    def test_push_beyond_capacity_is_dropped(self):
        m = DirectScanMachine(4)
        m.reset_column()
        m.load([1, 2, 3, 4, 5])
        assert m.count() == 4
        assert m.total() == 10

    def test_reset_clears(self, machine):
        machine.load([9, 9])
        machine.reset_column()
        assert machine.count() == 0 and machine.total() is None


class TestScanOracle:
    @settings(max_examples=20, deadline=None)
    @given(values=value_lists)
    def test_matches_numpy_cumsum(self, values):
        m = DirectScanMachine(16)
        m.reset_column()
        m.load(values)
        total = m.prefix_sum()
        if values:
            ref = np.cumsum(np.asarray(values, dtype=np.uint64)) & ((1 << 32) - 1)
            assert total == int(ref[-1])
            assert [m.read_at(i) for i in range(len(values))] == [int(x) for x in ref]
        else:
            assert total == 0

    @settings(max_examples=10, deadline=None)
    @given(values=value_lists)
    def test_kinds_agree(self, values):
        outcomes = set()
        for kind in KINDS:
            m = DirectScanMachine(16, array_kind=kind)
            m.reset_column()
            m.load(values)
            outcomes.add((m.total(), m.minimum(), m.maximum(), m.count(),
                          m.prefix_sum(), m.cycles))
        assert len(outcomes) == 1

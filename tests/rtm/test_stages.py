"""Component-level tests for individual pipeline stages."""

import pytest

from repro.config import FrameworkConfig
from repro.hdl import Component, Simulator
from repro.messages import DataRecord, Deframer, Framer, Halted, Reset, WriteReg
from repro.rtm import (
    FlagRegisterFile,
    MessageBuffer,
    MessageEncoder,
    MessageSerializer,
    RegisterFile,
)


class BufferHarness(Component):
    def __init__(self, cfg=None):
        super().__init__("bh")
        cfg = cfg or FrameworkConfig()
        self.framer = Framer(cfg.data_words)
        self.buf = MessageBuffer("buf", cfg, parent=self)
        self.words: list[int] = []
        self.msgs = []
        self.halted = False

        @self.comb(always=True)
        def _drive():
            self.buf.inp.valid.set(1 if self.words else 0)
            if self.words:
                self.buf.inp.payload.set(self.words[0])
            self.buf.out.ready.set(1)
            self.buf.halted.set(1 if self.halted else 0)

        @self.seq
        def _tick():
            if self.buf.inp.fires():
                self.words.pop(0)
            if self.buf.out.fires():
                self.msgs.append(self.buf.out.payload.value)

    def feed(self, *messages):
        for m in messages:
            self.words.extend(self.framer.frame(m))


class TestMessageBuffer:
    def test_reassembles_messages(self):
        h = BufferHarness()
        sim = Simulator(h)
        h.feed(WriteReg(1, 42), Reset())
        sim.step(12)
        assert h.msgs == [WriteReg(1, 42), Reset()]

    def test_one_word_per_cycle(self):
        h = BufferHarness()
        sim = Simulator(h)
        h.feed(WriteReg(1, 2))  # 2 words
        sim.step(2)
        assert h.msgs == []     # still assembling / presenting
        sim.step(3)
        assert h.msgs == [WriteReg(1, 2)]

    def test_halted_discards_all_but_reset(self):
        h = BufferHarness()
        sim = Simulator(h)
        h.halted = True
        h.feed(WriteReg(1, 42), Reset(), WriteReg(2, 3))
        sim.step(20)
        assert h.msgs == [Reset()]

    def test_wide_config_framing(self):
        cfg = FrameworkConfig(word_bits=96)
        h = BufferHarness(cfg)
        sim = Simulator(h)
        value = (1 << 80) | 7
        h.feed(WriteReg(1, value))
        sim.step(10)
        assert h.msgs == [WriteReg(1, value)]


class SerializerHarness(Component):
    def __init__(self, cfg=None):
        super().__init__("sh")
        cfg = cfg or FrameworkConfig()
        self.cfg = cfg
        self.ser = MessageSerializer("ser", cfg, parent=self)
        self.to_send = []
        self.words: list[int] = []

        @self.comb(always=True)
        def _drive():
            self.ser.inp.valid.set(1 if self.to_send else 0)
            if self.to_send:
                self.ser.inp.payload.set(self.to_send[0])
            self.ser.out.ready.set(1)

        @self.seq
        def _tick():
            if self.ser.inp.fires():
                self.to_send.pop(0)
            if self.ser.out.fires():
                self.words.append(self.ser.out.payload.value)


class TestMessageSerializer:
    def test_frames_match_framer(self):
        h = SerializerHarness()
        sim = Simulator(h)
        h.to_send = [DataRecord(3, 99), Halted()]
        sim.step(12)
        expected = Framer(1).frame_all([DataRecord(3, 99), Halted()])
        assert h.words == expected

    def test_single_buffering_backpressures(self):
        h = SerializerHarness()
        sim = Simulator(h)
        h.to_send = [DataRecord(1, 1), DataRecord(2, 2)]
        sim.step(1)
        # second message cannot enter while the first frame drains
        assert h.ser.words_pending > 0
        sim.step(10)
        deframed = list(Deframer(1).push_all(h.words))
        assert deframed == [DataRecord(1, 1), DataRecord(2, 2)]

    def test_counts_messages(self):
        h = SerializerHarness()
        sim = Simulator(h)
        h.to_send = [Halted(), Halted()]
        sim.step(8)
        assert h.ser.messages_sent == 2


class TestRegisterFiles:
    def test_regfile_range_checks(self):
        cfg = FrameworkConfig(n_regs=4)
        rf = RegisterFile("rf", cfg)
        Simulator(rf)
        assert rf.valid_index(3)
        assert not rf.valid_index(4)

    def test_flagfile_width(self):
        cfg = FrameworkConfig(flag_bits=8)
        ff = FlagRegisterFile("ff", cfg)
        Simulator(ff)
        ff.load([0x1FF])
        assert ff.read(0) == 0xFF  # masked to flag width

    def test_word_size_generic(self):
        cfg = FrameworkConfig(word_bits=128)
        rf = RegisterFile("rf", cfg)
        Simulator(rf)
        rf.load([(1 << 127) | 1])
        assert rf.read(0) == (1 << 127) | 1


def test_encoder_fifo_capacity():
    cfg = FrameworkConfig(encoder_fifo_depth=2)
    enc = MessageEncoder("enc", cfg)
    assert enc.fifo.depth == 2

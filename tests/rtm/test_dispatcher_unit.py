"""Direct unit tests of the dispatcher stage (hazards, strobes, resolution).

The integration suite exercises these behaviours through the whole system;
these tests isolate the stage with a scripted harness so each stall
condition and strobe timing is observable cycle by cycle.
"""

import pytest

from repro.config import FrameworkConfig
from repro.fu import ArithmeticUnit, WriteSpace
from repro.hdl import Component, Simulator
from repro.isa import Opcode, encode, instructions as ins
from repro.messages import Exec
from repro.rtm import (
    Decoder,
    Dispatcher,
    FlagRegisterFile,
    FunctionalUnitTable,
    LockManager,
    RegisterFile,
)


class DispatchHarness(Component):
    """decoder→dispatcher pair with scripted inputs and an eager exec sink."""

    def __init__(self):
        super().__init__("dh")
        cfg = FrameworkConfig(n_regs=8, n_flag_regs=4)
        self.cfg = cfg
        self.regfile = RegisterFile("rf", cfg, parent=self)
        self.flagfile = FlagRegisterFile("ff", cfg, parent=self)
        self.lockmgr = LockManager("lm", cfg, parent=self)
        self.futable = FunctionalUnitTable()
        self.unit = ArithmeticUnit("arith", cfg.word_bits, parent=self)
        self.futable.add(Opcode.ARITH, self.unit)
        self.decoder = Decoder("dec", cfg, self.futable, parent=self)
        self.dispatcher = Dispatcher(
            "disp", cfg, self.regfile, self.flagfile, self.lockmgr,
            self.futable, parent=self,
        )
        self.to_send = []
        self.exec_ops = []
        self.exec_ready = True
        self.ack_results = True

        @self.comb(always=True)
        def _drive():
            self.decoder.inp.valid.set(1 if self.to_send else 0)
            if self.to_send:
                self.decoder.inp.payload.set(self.to_send[0])
            # decoder → dispatcher link
            self.dispatcher.inp.valid.set(self.decoder.out.valid.value)
            self.dispatcher.inp.payload.set(self.decoder.out.payload.value)
            self.decoder.out.ready.set(self.dispatcher.inp.ready.value)
            # execution sink
            self.dispatcher.out.ready.set(1 if self.exec_ready else 0)
            # eager write-arbiter stand-in
            self.unit.rp.ack.set(1 if (self.ack_results and self.unit.rp.ready.value) else 0)

        @self.seq
        def _tick():
            if self.decoder.inp.fires():
                self.to_send.pop(0)
            if self.dispatcher.out.fires():
                self.exec_ops.append(self.dispatcher.out.payload.value)
            # write-arbiter stand-in: commit + unlock
            rp = self.unit.rp
            if rp.ready.value and rp.ack.value:
                t = rp.take()
                if t.has_data:
                    self.regfile.write(t.data_reg, t.data_value)
                    self.lockmgr.unlock(WriteSpace.DATA, t.data_reg)
                if t.has_flags:
                    self.flagfile.write(t.flag_reg, t.flag_value)
                    self.lockmgr.unlock(WriteSpace.FLAG, t.flag_reg)

    def feed(self, *instrs):
        self.to_send.extend(Exec(encode(i)) for i in instrs)


@pytest.fixture
def h():
    harness = DispatchHarness()
    sim = Simulator(harness)
    sim.reset()
    return harness, sim


class TestDispatchStrobe:
    def test_unit_dispatched_when_idle_and_unlocked(self, h):
        harness, sim = h
        harness.regfile.load([0, 3, 4])
        harness.feed(ins.add(3, 1, 2, dst_flag=1))
        sim.run_until(lambda: harness.dispatcher.dispatch_count == 1, 20)
        sim.run_until(lambda: harness.regfile.read(3) == 7, 20)

    def test_operands_read_in_dispatch_cycle(self, h):
        harness, sim = h
        harness.regfile.load([0, 11, 22])
        harness.feed(ins.add(3, 1, 2, dst_flag=1))
        # catch the dispatch cycle and inspect the port
        for _ in range(20):
            sim.settle()
            if harness.unit.dp.dispatch.value:
                assert harness.unit.dp.op_a.value == 11
                assert harness.unit.dp.op_b.value == 22
                assert harness.unit.dp.dst1.value == 3
                break
            sim.step()
        else:
            pytest.fail("dispatch strobe never seen")

    def test_write_set_locked_at_dispatch(self, h):
        harness, sim = h
        harness.regfile.load([0, 1, 2])
        harness.feed(ins.add(3, 1, 2, dst_flag=1))
        sim.run_until(lambda: harness.dispatcher.dispatch_count == 1, 20)
        sim.step()  # lock visible one edge later
        # the unit is still executing; r3 and f1 must be claimed
        assert harness.lockmgr.is_locked(WriteSpace.DATA, 3) or harness.regfile.read(3) == 3


class TestStallConditions:
    def test_raw_stall_until_unlock(self, h):
        harness, sim = h
        harness.ack_results = False  # results never retire → locks persist
        harness.regfile.load([0, 1, 2])
        harness.feed(ins.add(3, 1, 2, dst_flag=1), ins.add(4, 3, 2, dst_flag=1))
        sim.step(30)
        assert harness.dispatcher.dispatch_count == 1   # second op blocked
        assert harness.dispatcher.stalled.value
        harness.ack_results = True                       # release
        sim.run_until(lambda: harness.dispatcher.dispatch_count == 2, 30)

    def test_unit_busy_stall(self, h):
        harness, sim = h
        harness.regfile.load([0, 1, 2])
        # two independent ops contend for the single arithmetic unit
        harness.feed(ins.add(3, 1, 2, dst_flag=1), ins.add(4, 1, 2, dst_flag=2))
        sim.run_until(lambda: harness.dispatcher.dispatch_count == 2, 40)
        assert harness.dispatcher.stall_cycles >= 1

    def test_fence_stalls_until_all_free(self, h):
        harness, sim = h
        harness.ack_results = False
        harness.regfile.load([0, 1, 2])
        harness.feed(ins.add(3, 1, 2, dst_flag=1), ins.fence())
        sim.step(30)
        assert harness.exec_ops == []   # fence still held
        harness.ack_results = True
        sim.run_until(lambda: len(harness.exec_ops) == 1, 40)

    def test_exec_backpressure_stalls_primitives(self, h):
        harness, sim = h
        harness.exec_ready = False
        harness.feed(ins.nop(), ins.nop())
        sim.step(15)
        assert harness.exec_ops == []
        harness.exec_ready = True
        sim.run_until(lambda: len(harness.exec_ops) == 2, 20)


class TestResolution:
    def test_copy_resolved_with_register_value(self, h):
        harness, sim = h
        harness.regfile.load([0, 0, 55])
        harness.feed(ins.copy(4, 2))
        sim.run_until(lambda: harness.exec_ops, 20)
        op = harness.exec_ops[0]
        assert op.transfer.data_reg == 4
        assert op.transfer.data_value == 55

    def test_get_resolved_to_data_record(self, h):
        harness, sim = h
        harness.regfile.load([0, 0, 0, 77])
        harness.feed(ins.get(3, tag=9))
        sim.run_until(lambda: harness.exec_ops, 20)
        msg = harness.exec_ops[0].message
        assert msg.tag == 9 and msg.value == 77

    def test_loadis_merges_shifted_value(self, h):
        harness, sim = h
        harness.regfile.load([0, 0xAB])
        harness.feed(ins.loadis(1, 0xCD))
        sim.run_until(lambda: harness.exec_ops, 20)
        # 32-bit machine: (0xAB << 32) | 0xCD masked to 32 bits = 0xCD
        assert harness.exec_ops[0].transfer.data_value == 0xCD

"""Direct observation of the paper's §II ordering property:

"Within the FPGA, the instructions may be executed out of order, but the
stream of results returned to the processor will be consistent with the
stream of instructions that were issued."

A deliberately slow unit and a fast unit receive instructions in program
order; a tracer on the write arbiter shows the *writebacks* happening out
of order, while the GET results still arrive in issue order.
"""

import pytest

from repro.fu import AreaOptimizedFU, FuComputation
from repro.host import CoprocessorDriver
from repro.isa import instructions as ins
from repro.system import SystemBuilder

SLOW_CODE, FAST_CODE = 0x20, 0x21


class SlowUnit(AreaOptimizedFU):
    def __init__(self, name, word_bits, parent=None):
        super().__init__(name, word_bits, parent, execute_cycles=30)

    def compute(self, s):
        return FuComputation(data1=(s.op_a + 1000) & 0xFFFF_FFFF, flags=0)


class FastUnit(AreaOptimizedFU):
    def __init__(self, name, word_bits, parent=None):
        super().__init__(name, word_bits, parent, execute_cycles=1)

    def compute(self, s):
        return FuComputation(data1=(s.op_a + 1) & 0xFFFF_FFFF, flags=0)


class WritebackProbe:
    """Records the order in which registers are written by the arbiter."""

    def __init__(self, soc):
        self.order: list[int] = []
        self._rf = soc.rtm.regfile
        original = self._rf.write

        def spy(reg, value):
            self.order.append(reg)
            original(reg, value)

        self._rf.write = spy


@pytest.fixture
def system():
    return (
        SystemBuilder()
        .with_unit(SLOW_CODE, lambda n, w, p: SlowUnit(n, w, p))
        .with_unit(FAST_CODE, lambda n, w, p: FastUnit(n, w, p))
        .build()
    )


class TestOutOfOrderCompletion:
    def test_writebacks_happen_out_of_program_order(self, system):
        driver = CoprocessorDriver(system)
        probe = WritebackProbe(system.soc)
        driver.write_reg(1, 5)
        driver.run_until_quiet()
        probe.order.clear()
        # program order: slow first (→ r3), fast second (→ r4)
        driver.execute(ins.dispatch(SLOW_CODE, 0, dst1=3, src1=1, dst_flag=1))
        driver.execute(ins.dispatch(FAST_CODE, 0, dst1=4, src1=1, dst_flag=2))
        driver.run_until_quiet()
        writes = [r for r in probe.order if r in (3, 4)]
        assert writes == [4, 3], "the fast unit must retire before the slow one"

    def test_result_stream_stays_in_issue_order(self, system):
        driver = CoprocessorDriver(system)
        driver.write_reg(1, 5)
        driver.execute(ins.dispatch(SLOW_CODE, 0, dst1=3, src1=1, dst_flag=1))
        driver.execute(ins.get(3, tag=0))   # depends on the slow result
        driver.execute(ins.dispatch(FAST_CODE, 0, dst1=4, src1=1, dst_flag=2))
        driver.execute(ins.get(4, tag=1))
        msgs = driver.wait_for(2)
        # results arrive in ISSUE order even though unit 2 finished first
        assert [m.tag for m in msgs] == [0, 1]
        assert [m.value for m in msgs] == [1005, 6]

    def test_independent_gets_can_overtake_nothing(self, system):
        """A GET of an untouched register still waits its turn in the pipe."""
        driver = CoprocessorDriver(system)
        driver.write_reg(1, 5)
        driver.write_reg(7, 99)
        driver.execute(ins.dispatch(SLOW_CODE, 0, dst1=3, src1=1, dst_flag=1))
        driver.execute(ins.get(3, tag=0))
        driver.execute(ins.get(7, tag=1))  # independent, but issued later
        msgs = driver.wait_for(2)
        assert [m.tag for m in msgs] == [0, 1]

    def test_both_units_busy_simultaneously(self, system):
        """The dispatcher keeps issuing while the slow unit works (overlap)."""
        driver = CoprocessorDriver(system)
        driver.write_reg(1, 5)
        driver.execute(ins.dispatch(SLOW_CODE, 0, dst1=3, src1=1, dst_flag=1))
        driver.execute(ins.dispatch(FAST_CODE, 0, dst1=4, src1=1, dst_flag=2))
        slow = system.soc.rtm.unit_for(SLOW_CODE)
        fast = system.soc.rtm.unit_for(FAST_CODE)
        seen_overlap = False
        for _ in range(300):
            driver.pump()
            if not slow.dp.idle.value and not fast.dp.idle.value:
                seen_overlap = True
                break
        assert seen_overlap, "fast dispatch must proceed while slow executes"

"""Unit tests for the lock manager (the register usage table / scoreboard)."""

from repro.config import FrameworkConfig
from repro.fu import WriteSpace
from repro.hdl import Component, Simulator
from repro.rtm import LockManager


class LockHarness(Component):
    def __init__(self):
        super().__init__("lh")
        self.mgr = LockManager("mgr", FrameworkConfig(), parent=self)
        self.plan = []  # list of (action, space, reg) applied one batch/cycle

        @self.seq
        def _tick():
            if self.plan:
                for action, space, reg in self.plan.pop(0):
                    getattr(self.mgr, action)(space, reg)


def _sim():
    h = LockHarness()
    return h, Simulator(h)


class TestLockManager:
    def test_initially_free(self):
        h, sim = _sim()
        assert h.mgr.all_free
        assert h.mgr.locked_count == 0

    def test_lock_visible_next_cycle(self):
        h, sim = _sim()
        h.plan = [[("lock", WriteSpace.DATA, 3)]]
        sim.settle()
        assert not h.mgr.is_locked(WriteSpace.DATA, 3)  # not yet latched
        sim.step()
        assert h.mgr.is_locked(WriteSpace.DATA, 3)

    def test_unlock_releases(self):
        h, sim = _sim()
        h.plan = [[("lock", WriteSpace.DATA, 3)], [("unlock", WriteSpace.DATA, 3)]]
        sim.step(2)
        assert h.mgr.all_free

    def test_spaces_are_independent(self):
        h, sim = _sim()
        h.plan = [[("lock", WriteSpace.DATA, 2)]]
        sim.step()
        assert h.mgr.is_locked(WriteSpace.DATA, 2)
        assert not h.mgr.is_locked(WriteSpace.FLAG, 2)

    def test_same_cycle_lock_and_unlock_different_regs(self):
        # dispatcher locks r1 while the arbiter unlocks r2 — must commute
        h, sim = _sim()
        h.plan = [[("lock", WriteSpace.DATA, 2)],
                  [("lock", WriteSpace.DATA, 1), ("unlock", WriteSpace.DATA, 2)]]
        sim.step(2)
        assert h.mgr.is_locked(WriteSpace.DATA, 1)
        assert not h.mgr.is_locked(WriteSpace.DATA, 2)

    def test_multiple_locks_one_cycle(self):
        h, sim = _sim()
        h.plan = [[("lock", WriteSpace.DATA, 0), ("lock", WriteSpace.DATA, 5),
                   ("lock", WriteSpace.FLAG, 1)]]
        sim.step()
        assert h.mgr.locked_count == 3

    def test_any_locked(self):
        h, sim = _sim()
        h.plan = [[("lock", WriteSpace.FLAG, 4)]]
        sim.step()
        assert h.mgr.any_locked([(WriteSpace.DATA, 4), (WriteSpace.FLAG, 4)])
        assert not h.mgr.any_locked([(WriteSpace.DATA, 4)])
        assert not h.mgr.any_locked([])

    def test_lock_set_helper(self):
        mgr = LockManager("m", FrameworkConfig())
        mgr.lock_set([(WriteSpace.DATA, 1), (WriteSpace.FLAG, 2)])
        mgr._data_locks.commit()
        mgr._flag_locks.commit()
        assert mgr.is_locked(WriteSpace.DATA, 1)
        assert mgr.is_locked(WriteSpace.FLAG, 2)

    def test_idempotent_relock(self):
        h, sim = _sim()
        h.plan = [[("lock", WriteSpace.DATA, 3), ("lock", WriteSpace.DATA, 3)]]
        sim.step()
        assert h.mgr.locked_count == 1
        h.plan = [[("unlock", WriteSpace.DATA, 3)]]
        sim.step()
        assert h.mgr.all_free

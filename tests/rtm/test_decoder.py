"""Unit tests for the decode logic (classification, validation, hazard sets)."""

import pytest

from repro.config import FrameworkConfig
from repro.fu import ArithmeticUnit, WriteSpace
from repro.hdl import Simulator
from repro.isa import Opcode, encode, instructions as ins
from repro.isa.opcodes import ArithOp
from repro.messages import (
    ExceptionCode,
    ExceptionReport,
    Exec,
    Halted,
    Reset,
    WriteFlags,
    WriteReg,
)
from repro.rtm import Decoder, FunctionalUnitTable


@pytest.fixture
def decoder():
    cfg = FrameworkConfig(n_regs=8, n_flag_regs=4)
    table = FunctionalUnitTable()
    table.add(Opcode.ARITH, ArithmeticUnit("a", cfg.word_bits))
    d = Decoder("dec", cfg, table)
    Simulator(d)  # elaborate so _decode can run standalone
    return d


def _decode_instr(decoder, instr):
    return decoder._decode(Exec(encode(instr)))


class TestUnitDecoding:
    def test_arith_classified_as_unit(self, decoder):
        op = _decode_instr(decoder, ins.add(3, 1, 2, dst_flag=1))
        assert op.kind == "unit"
        assert op.entry.code == Opcode.ARITH

    def test_sources_include_flag_register(self, decoder):
        op = _decode_instr(decoder, ins.adc(3, 1, 2, 2, dst_flag=1))
        assert (WriteSpace.DATA, 1) in op.sources
        assert (WriteSpace.DATA, 2) in op.sources
        assert (WriteSpace.FLAG, 2) in op.sources

    def test_write_set_follows_profile_add(self, decoder):
        op = _decode_instr(decoder, ins.add(3, 1, 2, dst_flag=1))
        assert (WriteSpace.DATA, 3) in op.write_set
        assert (WriteSpace.FLAG, 1) in op.write_set

    def test_write_set_cmp_flags_only(self, decoder):
        # CMP's variety clears "Output data" → dst1 must NOT be locked
        op = _decode_instr(decoder, ins.cmp(1, 2, dst_flag=1))
        assert op.write_set == ((WriteSpace.FLAG, 1),)

    def test_unknown_unit_is_illegal_opcode(self, decoder):
        op = _decode_instr(decoder, ins.dispatch(0x55, 0, dst1=1))
        assert op.kind == "exec"
        assert isinstance(op.exec_op.message, ExceptionReport)
        assert op.exec_op.message.code == ExceptionCode.ILLEGAL_OPCODE

    def test_out_of_range_register_rejected(self, decoder):
        op = _decode_instr(decoder, ins.add(3, 200, 2))  # src1 = 200 > 7
        assert isinstance(op.exec_op.message, ExceptionReport)
        assert op.exec_op.message.code == ExceptionCode.BAD_REGISTER

    def test_out_of_range_flag_register_rejected(self, decoder):
        op = _decode_instr(decoder, ins.add(3, 1, 2, dst_flag=9))
        assert isinstance(op.exec_op.message, ExceptionReport)


class TestPrimitiveDecoding:
    def test_nop_is_empty_exec(self, decoder):
        op = _decode_instr(decoder, ins.nop())
        assert op.kind == "exec"
        assert op.exec_op.is_nop

    def test_halt_sets_halt_and_acknowledges(self, decoder):
        op = _decode_instr(decoder, ins.halt())
        assert op.exec_op.set_halt
        assert op.exec_op.message == Halted()

    def test_fence_requires_all_free(self, decoder):
        op = _decode_instr(decoder, ins.fence())
        assert op.require_all_free

    def test_copy_needs_resolution_and_locks_dst(self, decoder):
        op = _decode_instr(decoder, ins.copy(4, 2))
        assert op.needs_resolution
        assert op.sources == ((WriteSpace.DATA, 2),)
        assert op.write_set == ((WriteSpace.DATA, 4),)

    def test_get_reads_but_locks_nothing(self, decoder):
        op = _decode_instr(decoder, ins.get(3, tag=1))
        assert op.sources == ((WriteSpace.DATA, 3),)
        assert op.write_set == ()

    def test_loadi_carries_prebuilt_transfer(self, decoder):
        op = _decode_instr(decoder, ins.loadi(2, 0xBEEF))
        assert op.exec_op.transfer.data_reg == 2
        assert op.exec_op.transfer.data_value == 0xBEEF

    def test_loadis_reads_its_own_destination(self, decoder):
        op = _decode_instr(decoder, ins.loadis(2, 0xBEEF))
        assert (WriteSpace.DATA, 2) in op.sources
        assert (WriteSpace.DATA, 2) in op.write_set

    def test_setf_immediate_flag_write(self, decoder):
        op = _decode_instr(decoder, ins.setf(1, 0x5))
        assert op.exec_op.transfer.flag_reg == 1
        assert op.exec_op.transfer.flag_value == 0x5

    def test_bad_primitive_register(self, decoder):
        op = _decode_instr(decoder, ins.copy(200, 1))
        assert isinstance(op.exec_op.message, ExceptionReport)


class TestHostMessages:
    def test_write_reg(self, decoder):
        op = decoder._decode(WriteReg(3, 77))
        assert op.exec_op.transfer.data_reg == 3
        assert op.exec_op.transfer.data_value == 77
        assert op.write_set == ((WriteSpace.DATA, 3),)

    def test_write_reg_masked_to_word(self, decoder):
        op = decoder._decode(WriteReg(3, 1 << 40))
        assert op.exec_op.transfer.data_value == 0  # masked to 32 bits

    def test_write_flags(self, decoder):
        op = decoder._decode(WriteFlags(2, 0xAB))
        assert op.exec_op.transfer.flag_reg == 2

    def test_write_reg_out_of_range(self, decoder):
        op = decoder._decode(WriteReg(99, 1))
        assert isinstance(op.exec_op.message, ExceptionReport)

    def test_reset_clears_halt(self, decoder):
        op = decoder._decode(Reset())
        assert op.exec_op.clear_halt

"""Hazard regression for the out-of-order issue engine.

Every classical hazard — RAW, WAW, WAR, FENCE — is pinned on *both* issue
paths: the in-order scoreboard dispatcher and the renaming OoO engine
must produce identical architectural results, differing only in how they
get there.  The one behavioural difference renaming buys — an independent
younger instruction overtaking a stalled older one — is demonstrated
directly through a writeback probe and the issue-stall counters.
"""

import pytest

from repro.fu import AreaOptimizedFU, FuComputation
from repro.host import CoprocessorDriver
from repro.isa import instructions as ins
from repro.system import SystemBuilder

SLOW_CODE, FAST_CODE, OTHER_CODE = 0x20, 0x21, 0x22
MASK = 0xFFFF_FFFF


class SlowUnit(AreaOptimizedFU):
    def __init__(self, name, word_bits, parent=None):
        super().__init__(name, word_bits, parent, execute_cycles=30)

    def compute(self, s):
        return FuComputation(data1=(s.op_a + 1000) & MASK, flags=0)


class FastUnit(AreaOptimizedFU):
    def __init__(self, name, word_bits, parent=None):
        super().__init__(name, word_bits, parent, execute_cycles=1)

    def compute(self, s):
        return FuComputation(data1=(s.op_a + 1) & MASK, flags=0)


class WritebackProbe:
    """Records the order in which registers are written by the arbiter."""

    def __init__(self, soc):
        self.order: list[int] = []
        self._rf = soc.rtm.regfile
        original = self._rf.write

        def spy(reg, value):
            self.order.append(reg)
            original(reg, value)

        self._rf.write = spy


def _arch_writes(built, probe, arch_regs):
    """Probe order in architectural terms: under renaming the arbiter
    writes physical indices, so map back through the final rename table
    (each register is written once in these programs — no phys reuse)."""
    rt = getattr(built.soc.rtm, "rename", None)
    if rt is None:
        return [r for r in probe.order if r in arch_regs]
    from repro.fu.protocol import WriteSpace

    phys_of = {rt.phys(WriteSpace.DATA, a): a for a in arch_regs}
    return [phys_of[r] for r in probe.order if r in phys_of]


def _build(ooo: bool):
    builder = (
        SystemBuilder()
        .with_unit(SLOW_CODE, lambda n, w, p: SlowUnit(n, w, p))
        .with_unit(FAST_CODE, lambda n, w, p: FastUnit(n, w, p))
        .with_unit(OTHER_CODE, lambda n, w, p: FastUnit(n, w, p))
    )
    if ooo:
        builder.with_ooo()
    return builder.build()


@pytest.fixture(params=[False, True], ids=["in-order", "ooo"])
def path(request):
    return request.param


class TestHazardsBothPaths:
    """RAW/WAW/WAR/FENCE produce identical architectural results whether
    the machine renames or scoreboards."""

    def test_raw_consumer_sees_producer_result(self, path):
        driver = CoprocessorDriver(_build(path))
        driver.write_reg(1, 5)
        # slow produces r3; the dependent fast op must wait for it
        driver.execute(ins.dispatch(SLOW_CODE, 0, dst1=3, src1=1, dst_flag=1))
        driver.execute(ins.dispatch(FAST_CODE, 0, dst1=4, src1=3, dst_flag=2))
        driver.run_until_quiet()
        assert driver.read_reg(3) == 1005
        assert driver.read_reg(4) == 1006

    def test_waw_younger_write_wins(self, path):
        driver = CoprocessorDriver(_build(path))
        driver.write_reg(1, 5)
        driver.write_reg(2, 50)
        # both write r3: slow (old) first in program order, fast (young)
        # second — the architectural value must be the younger result even
        # though the older one *finishes* last under renaming
        driver.execute(ins.dispatch(SLOW_CODE, 0, dst1=3, src1=1, dst_flag=1))
        driver.execute(ins.dispatch(FAST_CODE, 0, dst1=3, src1=2, dst_flag=2))
        driver.run_until_quiet()
        assert driver.read_reg(3) == 51

    def test_war_older_reader_sees_old_value(self, path):
        driver = CoprocessorDriver(_build(path))
        driver.write_reg(1, 5)
        driver.write_reg(2, 50)
        # slow reads r1 (old value 5); the younger fast op overwrites r1 —
        # the older reader must not observe the younger write
        driver.execute(ins.dispatch(SLOW_CODE, 0, dst1=3, src1=1, dst_flag=1))
        driver.execute(ins.dispatch(FAST_CODE, 0, dst1=1, src1=2, dst_flag=2))
        driver.run_until_quiet()
        assert driver.read_reg(3) == 1005  # computed from the OLD r1
        assert driver.read_reg(1) == 51

    def test_fence_drains_before_younger_issues(self, path):
        built = _build(path)
        driver = CoprocessorDriver(built)
        probe = WritebackProbe(built.soc)
        driver.write_reg(1, 5)
        driver.run_until_quiet()
        probe.order.clear()
        driver.execute(ins.dispatch(SLOW_CODE, 0, dst1=3, src1=1, dst_flag=1))
        driver.execute(ins.fence())
        driver.execute(ins.dispatch(FAST_CODE, 0, dst1=6, src1=1, dst_flag=2))
        driver.run_until_quiet()
        writes = _arch_writes(built, probe, (3, 6))
        assert writes == [3, 6], "the fence must drain the slow op first"
        stats = built.soc.rtm.dispatcher.issue_stats()
        assert stats["stall_fence"] > 0

    def test_get_stream_identical_across_paths(self):
        streams = []
        for ooo in (False, True):
            driver = CoprocessorDriver(_build(ooo))
            driver.write_reg(1, 5)
            driver.execute(ins.dispatch(SLOW_CODE, 0, dst1=3, src1=1,
                                        dst_flag=1))
            driver.execute(ins.get(3, tag=0))
            driver.execute(ins.dispatch(FAST_CODE, 0, dst1=4, src1=1,
                                        dst_flag=2))
            driver.execute(ins.get(4, tag=1))
            msgs = driver.wait_for(2)
            streams.append([(m.tag, m.value) for m in msgs])
        assert streams[0] == streams[1] == [(0, 1005), (1, 6)]


class TestBypass:
    """The point of the whole engine: an independent younger op issues
    around an older one stalled on a true dependency."""

    PROGRAM_OLD_R1 = 5

    def _run(self, ooo):
        built = _build(ooo)
        driver = CoprocessorDriver(built)
        probe = WritebackProbe(built.soc)
        driver.write_reg(1, self.PROGRAM_OLD_R1)
        driver.run_until_quiet()
        probe.order.clear()
        # op1: slow, produces r3          (long latency)
        # op2: fast, RAW on r3 → r5       (stalls behind op1)
        # op3: other unit, independent → r6 (free to overtake under
        #      renaming; a *different* unit, since per-unit program order
        #      would rightly hold back a same-unit younger op)
        driver.execute(ins.dispatch(SLOW_CODE, 0, dst1=3, src1=1, dst_flag=1))
        driver.execute(ins.dispatch(FAST_CODE, 0, dst1=5, src1=3, dst_flag=2))
        driver.execute(ins.dispatch(OTHER_CODE, 0, dst1=6, src1=1, dst_flag=3))
        driver.run_until_quiet()
        assert driver.read_reg(3) == 1005
        assert driver.read_reg(5) == 1006
        assert driver.read_reg(6) == 6
        return built, _arch_writes(built, probe, (3, 5, 6))

    def test_in_order_path_issues_in_program_order(self):
        built, writes = self._run(ooo=False)
        assert writes == [3, 5, 6]
        stats = built.soc.rtm.dispatcher.issue_stats()
        assert stats["mode"] == "in-order"
        assert stats["stall_raw"] > 0, "op2 must classify as a RAW stall"

    def test_ooo_path_lets_independent_op_overtake(self):
        built, writes = self._run(ooo=True)
        assert writes == [6, 3, 5], "r6 must retire while the slow op runs"
        stats = built.soc.rtm.dispatcher.issue_stats()
        assert stats["mode"] == "ooo"
        assert stats["window_occupancy_max"] > 1

    def test_structural_stall_is_classified(self):
        # two back-to-back ops on the SAME slow unit: the second is
        # independent data-wise but the unit itself is busy
        built = _build(True)
        driver = CoprocessorDriver(built)
        driver.write_reg(1, 5)
        driver.write_reg(2, 50)
        driver.execute(ins.dispatch(SLOW_CODE, 0, dst1=3, src1=1, dst_flag=1))
        driver.execute(ins.dispatch(SLOW_CODE, 0, dst1=4, src1=2, dst_flag=2))
        driver.run_until_quiet()
        assert driver.read_reg(3) == 1005
        assert driver.read_reg(4) == 1050
        stats = built.soc.rtm.dispatcher.issue_stats()
        assert stats["stall_structural"] > 0

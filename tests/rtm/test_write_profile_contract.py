"""The write-profile contract: the decoder locks exactly what a unit writes.

Regression tests for a class of deadlock found while building the CRC
example: a unit that never produces flags, dispatched under the default
(data+flags) profile, leaves a flag register locked forever — visible the
moment a FENCE or a flag-reading instruction follows.
"""

import pytest

from repro.fu import FuComputation, MinimalFunctionalUnit, PipelinedFunctionalUnit
from repro.host import CoprocessorDriver
from repro.isa import instructions as ins
from repro.system import SystemBuilder


class DataOnlyMinimal(MinimalFunctionalUnit):
    def compute(self, s):
        return FuComputation(data1=(s.op_a + 1) & 0xFFFF_FFFF)


class DataOnlyPipelined(PipelinedFunctionalUnit):
    write_profile = staticmethod(lambda variety: (True, False, False))

    def compute(self, s):
        return FuComputation(data1=(s.op_a + 2) & 0xFFFF_FFFF)


class MismatchedPipelined(PipelinedFunctionalUnit):
    """Deliberately violates the contract: default profile, no flag output."""

    def compute(self, s):
        return FuComputation(data1=s.op_a)


def _system(code, factory):
    return SystemBuilder().with_unit(code, factory).build()


class TestProfilesMatchCompute:
    def test_minimal_unit_releases_all_locks(self):
        d = CoprocessorDriver(_system(0x20, lambda n, w, p: DataOnlyMinimal(n, w, p)))
        d.write_reg(1, 9)
        d.execute(ins.dispatch(0x20, 0, dst1=2, src1=1))
        d.execute(ins.fence())  # hangs if any lock leaks
        d.run_until_quiet()
        assert d.soc.rtm.lockmgr.all_free
        assert d.soc.rtm.register_value(2) == 10

    def test_minimal_unit_leaves_flag_zero_usable(self):
        d = CoprocessorDriver(_system(0x20, lambda n, w, p: DataOnlyMinimal(n, w, p)))
        d.write_reg(1, 1)
        d.execute(ins.dispatch(0x20, 0, dst1=2, src1=1))  # dst_flag field is 0
        d.execute(ins.setf(0, 0x3))  # writes flag reg 0 — stalls iff leaked
        d.run_until_quiet(max_cycles=10_000)
        assert d.read_flags(0) == 0x3

    def test_pipelined_with_declared_profile(self):
        d = CoprocessorDriver(_system(0x21, lambda n, w, p: DataOnlyPipelined(n, w, p)))
        d.write_reg(1, 5)
        for _ in range(4):
            d.execute(ins.dispatch(0x21, 0, dst1=1, src1=1))
        d.execute(ins.fence())
        d.run_until_quiet(max_cycles=20_000)
        assert d.soc.rtm.register_value(1) == 13
        assert d.soc.rtm.lockmgr.all_free

    def test_violating_the_contract_deadlocks(self):
        """Documents the failure mode: mismatch ⇒ the flag lock never clears."""
        from repro.hdl.errors import SimulationError

        d = CoprocessorDriver(_system(0x22, lambda n, w, p: MismatchedPipelined(n, w, p)))
        d.write_reg(1, 5)
        d.execute(ins.dispatch(0x22, 0, dst1=2, src1=1, dst_flag=1))
        d.execute(ins.fence())
        with pytest.raises(SimulationError):
            d.run_until_quiet(max_cycles=5_000)
        from repro.fu import WriteSpace

        assert d.soc.rtm.lockmgr.is_locked(WriteSpace.FLAG, 1)

"""Direct unit tests of the execution stage (retire sequencing, halt latch)."""

import pytest

from repro.config import FrameworkConfig
from repro.fu.protocol import Transfer
from repro.hdl import Component, Simulator
from repro.messages import DataRecord, Halted
from repro.rtm import ExecOp, Execution


class ExecHarness(Component):
    def __init__(self):
        super().__init__("eh")
        self.exe = Execution("exe", FrameworkConfig(), parent=self)
        self.to_send: list[ExecOp] = []
        self.messages = []
        self.writes = []
        self.msg_ready = True
        self.prio_grant = True

        @self.comb(always=True)
        def _drive():
            self.exe.inp.valid.set(1 if self.to_send else 0)
            if self.to_send:
                self.exe.inp.payload.set(self.to_send[0])
            self.exe.msg_out.ready.set(1 if self.msg_ready else 0)
            self.exe.prio_ack.set(
                1 if (self.prio_grant and self.exe.prio_valid.value) else 0
            )

        @self.seq
        def _tick():
            if self.exe.inp.fires():
                self.to_send.pop(0)
            if self.exe.msg_out.fires():
                self.messages.append(self.exe.msg_out.payload.value)
            if self.exe.prio_valid.value and self.exe.prio_ack.value:
                self.writes.append(self.exe.prio_transfer.value)


@pytest.fixture
def h():
    harness = ExecHarness()
    sim = Simulator(harness)
    sim.reset()
    return harness, sim


class TestRetireSequencing:
    def test_transfer_goes_to_priority_port(self, h):
        harness, sim = h
        t = Transfer(data_reg=3, data_value=42)
        harness.to_send = [ExecOp(transfer=t)]
        sim.run_until(lambda: harness.writes, 20)
        assert harness.writes == [t]
        assert harness.exe.retired == 1

    def test_message_goes_to_encoder(self, h):
        harness, sim = h
        msg = DataRecord(1, 99)
        harness.to_send = [ExecOp(message=msg)]
        sim.run_until(lambda: harness.messages, 20)
        assert harness.messages == [msg]

    def test_transfer_then_message_sequenced(self, h):
        harness, sim = h
        t = Transfer(flag_reg=1, flag_value=3)
        msg = Halted()
        harness.to_send = [ExecOp(transfer=t, message=msg, set_halt=True)]
        sim.run_until(lambda: harness.messages, 30)
        assert harness.writes == [t]
        assert harness.messages == [msg]
        assert harness.exe.halted.value

    def test_pure_state_op_retires_immediately(self, h):
        harness, sim = h
        harness.to_send = [ExecOp(), ExecOp()]
        sim.step(6)
        assert harness.exe.retired == 2

    def test_blocked_priority_port_stalls(self, h):
        harness, sim = h
        harness.prio_grant = False
        harness.to_send = [ExecOp(transfer=Transfer(data_reg=1, data_value=1))]
        sim.step(10)
        assert harness.writes == []
        assert harness.exe.retired == 0
        harness.prio_grant = True
        sim.run_until(lambda: harness.writes, 10)

    def test_blocked_encoder_stalls(self, h):
        harness, sim = h
        harness.msg_ready = False
        harness.to_send = [ExecOp(message=DataRecord(0, 1))]
        sim.step(10)
        assert harness.messages == []
        harness.msg_ready = True
        sim.run_until(lambda: harness.messages, 10)


class TestHaltLatch:
    def test_set_then_clear(self, h):
        harness, sim = h
        harness.to_send = [
            ExecOp(message=Halted(), set_halt=True),
            ExecOp(clear_halt=True),
        ]
        sim.run_until(lambda: harness.exe.halted.value == 1, 20)
        sim.run_until(lambda: harness.exe.halted.value == 0, 20)

    def test_ops_ordered_fifo(self, h):
        harness, sim = h
        harness.to_send = [
            ExecOp(message=DataRecord(0, 1)),
            ExecOp(transfer=Transfer(data_reg=2, data_value=2)),
            ExecOp(message=DataRecord(0, 3)),
        ]
        sim.run_until(lambda: len(harness.messages) == 2, 40)
        assert [m.value for m in harness.messages] == [1, 3]
        assert harness.writes[0].data_value == 2

"""Integration tests of the full RTM pipeline (experiment F4).

These drive the complete system through the host driver and verify the
architectural behaviours the paper claims for the controller: in-order
results despite out-of-order unit completion, scoreboard interlocks,
write-arbiter sharing, FENCE, HALT/RESET, and exception reporting.
"""

import pytest

from repro.config import FrameworkConfig
from repro.host import CoprocessorDriver, CoprocessorError
from repro.isa import FLAG_CARRY, FLAG_ZERO, Opcode, instructions as ins
from repro.messages import DataRecord, ExceptionCode, FlagVector, Halted
from repro.system import build_system


@pytest.fixture
def driver():
    return CoprocessorDriver(build_system())


class TestBasicDataflow:
    def test_write_then_read_register(self, driver):
        driver.write_reg(1, 12345)
        assert driver.read_reg(1) == 12345

    def test_arith_through_pipeline(self, driver):
        driver.write_reg(1, 20)
        driver.write_reg(2, 22)
        driver.execute(ins.add(3, 1, 2, dst_flag=1))
        assert driver.read_reg(3) == 42

    def test_flags_written_and_read(self, driver):
        driver.write_reg(1, 0xFFFF_FFFF)
        driver.write_reg(2, 1)
        driver.execute(ins.add(3, 1, 2, dst_flag=2))
        flags = driver.read_flags(2)
        assert flags & FLAG_CARRY
        assert flags & FLAG_ZERO

    def test_copy_and_cpflag(self, driver):
        driver.write_reg(1, 99)
        driver.execute(ins.copy(4, 1))
        assert driver.read_reg(4) == 99
        driver.write_flags(1, 0x3)
        driver.execute(ins.cpflag(2, 1))
        assert driver.read_flags(2) == 0x3

    def test_loadi_and_loadis(self, driver):
        driver.execute(ins.loadi(5, 0x1234))
        assert driver.read_reg(5) == 0x1234

    def test_setf(self, driver):
        driver.execute(ins.setf(3, 0x15))
        assert driver.read_flags(3) == 0x15

    def test_get_tags_echoed(self, driver):
        driver.write_reg(1, 7)
        driver.execute(ins.get(1, tag=0x42))
        (msg,) = driver.wait_for(1)
        assert isinstance(msg, DataRecord)
        assert msg.tag == 0x42 and msg.value == 7


class TestScoreboard:
    def test_raw_hazard_resolved(self, driver):
        """GET of a unit result must wait for the unit's writeback."""
        driver.write_reg(1, 5)
        driver.write_reg(2, 6)
        driver.execute(ins.add(3, 1, 2, dst_flag=1))
        driver.execute(ins.get(3))  # issued immediately after, no host sync
        (msg,) = driver.wait_for(1)
        assert msg.value == 11

    def test_dependent_chain(self, driver):
        driver.write_reg(1, 1)
        driver.write_reg(2, 1)
        # r3 = r1+r2; r4 = r3+r3; r5 = r4+r4 — every input is a hazard
        driver.execute(ins.add(3, 1, 2, dst_flag=1))
        driver.execute(ins.add(4, 3, 3, dst_flag=1))
        driver.execute(ins.add(5, 4, 4, dst_flag=1))
        assert driver.read_reg(5) == 8

    def test_flag_chain_through_scoreboard(self, driver):
        """ADC reads the flag register the previous ADD wrote."""
        driver.write_reg(1, 0xFFFF_FFFF)
        driver.write_reg(2, 1)
        driver.write_reg(4, 10)
        driver.write_reg(5, 20)
        driver.execute(ins.add(3, 1, 2, dst_flag=1))        # sets carry
        driver.execute(ins.adc(6, 4, 5, 1, dst_flag=2))     # consumes carry
        assert driver.read_reg(6) == 31

    def test_waw_ordering(self, driver):
        driver.write_reg(1, 1)
        driver.write_reg(2, 2)
        driver.execute(ins.add(3, 1, 2, dst_flag=1))   # r3 = 3
        driver.execute(ins.sub(3, 1, 2, dst_flag=1))   # r3 = -1
        assert driver.read_reg(3) == (1 - 2) & 0xFFFF_FFFF

    def test_fence_waits_for_all_locks(self, driver):
        driver.write_reg(1, 3)
        driver.write_reg(2, 4)
        driver.execute(ins.add(3, 1, 2, dst_flag=1))
        driver.execute(ins.fence())
        driver.run_until_quiet()
        assert driver.soc.rtm.lockmgr.all_free
        assert driver.soc.rtm.register_value(3) == 7


class TestResultOrdering:
    def test_results_arrive_in_issue_order(self, driver):
        """The paper's out-of-order/in-order guarantee (§II)."""
        driver.write_reg(1, 10)
        driver.write_reg(2, 3)
        program = [
            ins.add(3, 1, 2, dst_flag=1),
            ins.get(3, tag=0),
            ins.sub(4, 1, 2, dst_flag=1),
            ins.get(4, tag=1),
            ins.xor(5, 1, 2, dst_flag=1),
            ins.get(5, tag=2),
        ]
        driver.execute_all(program)
        msgs = driver.wait_for(3)
        assert [m.tag for m in msgs] == [0, 1, 2]
        assert [m.value for m in msgs] == [13, 7, 9]

    def test_mixed_data_and_flag_responses_ordered(self, driver):
        driver.write_reg(1, 1)
        driver.write_reg(2, 1)
        driver.execute(ins.cmp(1, 2, dst_flag=3))
        driver.execute(ins.getf(3, tag=5))
        driver.execute(ins.get(1, tag=6))
        m1, m2 = driver.wait_for(2)
        assert isinstance(m1, FlagVector) and m1.tag == 5 and m1.value & FLAG_ZERO
        assert isinstance(m2, DataRecord) and m2.tag == 6


class TestExceptions:
    def test_illegal_opcode_reported(self):
        driver = CoprocessorDriver(build_system(), raise_on_exception=False)
        driver.execute(ins.dispatch(0x7F, 0, dst1=1))
        (msg,) = driver.wait_for(1)
        assert msg.code == ExceptionCode.ILLEGAL_OPCODE

    def test_bad_register_reported(self):
        cfg = FrameworkConfig(n_regs=4)
        driver = CoprocessorDriver(build_system(cfg), raise_on_exception=False)
        driver.execute(ins.add(3, 1, 200, dst_flag=1))
        (msg,) = driver.wait_for(1)
        assert msg.code == ExceptionCode.BAD_REGISTER

    def test_driver_raises_by_default(self, driver):
        driver.execute(ins.dispatch(0x7F, 0))
        with pytest.raises(CoprocessorError):
            driver.wait_for(1)

    def test_pipeline_survives_exception(self):
        driver = CoprocessorDriver(build_system(), raise_on_exception=False)
        driver.execute(ins.dispatch(0x7F, 0))
        driver.wait_for(1)
        driver.write_reg(1, 5)
        assert driver.read_reg(1) == 5  # still alive


class TestHaltReset:
    def test_halt_acknowledged(self, driver):
        driver.halt_and_wait()
        assert driver.soc.rtm.halted

    def test_halted_rtm_ignores_instructions(self, driver):
        driver.write_reg(1, 42)
        driver.run_until_quiet()
        driver.halt_and_wait()
        driver.execute(ins.loadi(1, 7))  # must be discarded
        driver.run_until_quiet()
        assert driver.soc.rtm.register_value(1) == 42

    def test_reset_message_revives(self, driver):
        driver.halt_and_wait()
        driver.reset_message()
        driver.run_until_quiet()
        assert not driver.soc.rtm.halted
        driver.write_reg(1, 9)
        assert driver.read_reg(1) == 9


class TestWriteArbiter:
    def test_priority_and_unit_writes_share_the_port(self, driver):
        # interleave host writes (priority path) with unit results
        driver.write_reg(1, 1)
        driver.write_reg(2, 2)
        for i in range(6):
            driver.execute(ins.add(3 + (i % 3), 1, 2, dst_flag=1))
            driver.write_reg(6 + (i % 3), i)
        driver.run_until_quiet()
        rtm = driver.soc.rtm
        assert rtm.register_value(3) == 3
        assert rtm.write_arbiter.writes_performed > 0

    def test_both_units_complete_under_contention(self, driver):
        driver.write_reg(1, 0b1100)
        driver.write_reg(2, 0b1010)
        driver.execute(ins.add(3, 1, 2, dst_flag=1))
        driver.execute(ins.xor(4, 1, 2, dst_flag=2))
        driver.execute(ins.and_(5, 1, 2, dst_flag=3))
        driver.execute(ins.sub(6, 1, 2, dst_flag=4))
        driver.run_until_quiet()
        rtm = driver.soc.rtm
        assert rtm.register_value(3) == 0b1100 + 0b1010
        assert rtm.register_value(4) == 0b0110
        assert rtm.register_value(5) == 0b1000
        assert rtm.register_value(6) == 0b0010

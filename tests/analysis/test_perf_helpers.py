"""Unit tests for the measurement harness itself."""

import pytest

from repro.analysis import (
    make_system,
    measure_end_to_end_sort,
    measure_issue_rate,
    measure_xisort_step_costs,
    roundtrip_cycles,
)
from repro.isa import Opcode
from repro.messages import SLOW_PROTOTYPE


class TestMakeSystem:
    def test_default_units(self):
        s = make_system()
        assert len(s.soc.rtm.units) == 2

    def test_with_xisort(self):
        s = make_system(xisort_cells=8)
        assert Opcode.XISORT in s.soc.rtm.futable

    def test_pipelined(self):
        s = make_system(pipelined=True)
        from repro.fu import PipelinedArithmeticUnit

        assert isinstance(s.soc.rtm.unit_for(Opcode.ARITH), PipelinedArithmeticUnit)


class TestMeasurements:
    def test_issue_rate_counts_all_instructions(self):
        r = measure_issue_rate(make_system(), 16)
        assert r.instructions == 16
        assert r.cycles > 16  # at least a cycle each
        assert r.cycles_per_instruction == r.cycles / 16

    def test_xisort_step_costs_positive(self):
        c = measure_xisort_step_costs(16)
        assert c.split_cycles > c.load_cycles
        assert all(v > 0 for v in (c.load_cycles, c.split_cycles,
                                   c.find_pivot_cycles, c.read_at_cycles))

    def test_end_to_end_sort_verifies_result(self):
        cycles, out = measure_end_to_end_sort(8, 16)
        assert cycles > 0
        assert out == sorted(out)

    def test_roundtrip_slower_on_slow_link(self):
        fast = roundtrip_cycles(make_system())
        slow = roundtrip_cycles(make_system(channel=SLOW_PROTOTYPE))
        assert slow > 10 * fast

"""Unit tests for the elaboration report."""

from repro.analysis import inventory, inventory_table, stats_for
from repro.config import FrameworkConfig
from repro.system import build_system
from repro.xisort import XiSortCore


class TestStats:
    def test_counts_cover_whole_tree(self):
        soc = build_system().soc
        top = stats_for(soc)
        # sum over direct children + the top's own signals equals the total
        child_total = sum(stats_for(c).components for c in soc.children)
        assert top.components == child_total + 1

    def test_registers_subset_of_signals(self):
        soc = build_system().soc
        s = stats_for(soc)
        assert 0 < s.registers <= s.signals
        assert s.register_bits > 0

    def test_word_size_scales_register_bits(self):
        # the ξ-sort controller's temporaries/outputs are word-width registers
        small = stats_for(XiSortCore("a", 8, word_bits=32))
        large = stats_for(XiSortCore("b", 8, word_bits=64))
        assert large.register_bits > small.register_bits
        assert large.components == small.components  # structure unchanged

    def test_config_preserves_structure(self):
        small = stats_for(build_system(FrameworkConfig(word_bits=32)).soc)
        large = stats_for(build_system(FrameworkConfig(word_bits=128)).soc)
        assert large.components == small.components
        assert large.signals == small.signals

    def test_cell_count_scales_structural_core(self):
        a = stats_for(XiSortCore("a", 4, array_kind="structural"))
        b = stats_for(XiSortCore("b", 8, array_kind="structural"))
        assert b.components == a.components + 4  # one component per extra cell


class TestInventory:
    def test_depth_limits_rows(self):
        soc = build_system().soc
        shallow = inventory(soc, depth=1)
        deep = inventory(soc, depth=3)
        assert len(deep) > len(shallow) > 1

    def test_table_renders_entities(self):
        text = inventory_table(build_system().soc, depth=2)
        for entity in ("soc.rtm", "soc.rtm.dispatcher", "soc.link"):
            assert entity in text

"""Seeded defect: one signal driven by two settle processes.

Both processes ``set()`` the shared ``bus`` every pass, so the settled
value depends on scheduler ordering — the classic multiple-driver short.
(The staged-``nxt`` accumulation idiom the lock manager uses is the
legitimate cousin; this fixture is the broken plain-signal variant.)
"""

from repro.hdl import Component

EXPECTED_RULE = "graph.multi-driver"


class BusContention(Component):
    def __init__(self) -> None:
        super().__init__("contention")
        self.sel = self.signal("sel", 1, 0)
        self.bus = self.signal("bus", 8, 0)

        @self.comb
        def _driver_a() -> None:
            self.bus.set(0xAA)

        @self.comb
        def _driver_b() -> None:
            self.bus.set(0x55 if self.sel.value else 0x5A)


def build() -> BusContention:
    return BusContention()


def build_for_lint() -> BusContention:
    return build()

"""Seeded defect: a producer that drives ``valid`` but ignores ``ready``.

The source offers a fresh word every cycle and advances unconditionally —
no process ever samples ``out.ready``.  Against an always-ready consumer
it simulates perfectly; the first time the consumer stalls, the word on
the bus that cycle is replaced and lost.  Every blocking primitive in the
framework (FIFO full, arbiter grant) expresses itself through ``ready``,
so a blind producer cannot be backpressured.
"""

from repro.hdl import Component, Stream

EXPECTED_RULE = "protocol.valid-no-ready"


class BlindProducer(Component):
    def __init__(self) -> None:
        super().__init__("blind")
        self.out = Stream(self, "out", 8)
        self._count = self.reg("count", 8, 0)

        @self.comb
        def _offer() -> None:
            self.out.valid.set(1)
            self.out.payload.set(self._count.value)

        @self.seq(pure=True)
        def _advance() -> None:
            # unconditional: the word is assumed taken whether or not the
            # consumer was ready
            self._count.nxt = (self._count.value + 1) & 0xFF


def build() -> BlindProducer:
    return BlindProducer()


def build_for_lint() -> BlindProducer:
    return build()

"""Seeded defects for the ``issue.*`` rule family.

Two independent holes a hand-assembled out-of-order machine can leave:

* a machine-check unit plus a rename table with no
  :class:`~repro.faults.RenameGuard` — an upset in a map entry silently
  redirects every later read of that architectural register
  (``issue.unprotected-rename``);
* a functional-unit table row registered with an explicit ``latency=``
  that disagrees with the unit's own ``latency_cycles``
  (``issue.latency-mismatch``).
"""

from repro.config import FrameworkConfig
from repro.faults import MachineCheckUnit, StateFaultPlan
from repro.fu import FuComputation, PipelinedFunctionalUnit
from repro.hdl import Component
from repro.rtm.futable import FunctionalUnitTable
from repro.rtm.rename import RenameTable

EXPECTED_RULE = "issue.unprotected-rename"
LATENCY_RULE = "issue.latency-mismatch"


class ThreeStageUnit(PipelinedFunctionalUnit):
    latency_cycles = 3

    def __init__(self, name, word_bits, parent=None):
        super().__init__(name, word_bits, parent, pipeline_depth=3)

    def compute(self, s):
        return FuComputation(data1=s.op_a, flags=0)


class BareRenameMachine(Component):
    def __init__(self) -> None:
        super().__init__("barerename")
        plan = StateFaultPlan()
        self.mcu = MachineCheckUnit("mcu", parent=self)
        self.mcu.stats = plan.stats

        config = FrameworkConfig(ooo=True)
        # the seeded defect: a rename map inside a protection domain
        # (the MCU above) with no RenameGuard wired onto it
        self.rename = RenameTable("rename", config, parent=self)

        # second defect: the table row claims a latency the unit denies
        self.unit = ThreeStageUnit("unit", 32, parent=self)
        self.futable = FunctionalUnitTable()
        # trust_latency bypasses the registration-time cross-check — the
        # point of this fixture is a table that lies, so the *lint* rule
        # has something to catch
        self.futable.add(0x20, self.unit, latency=1, trust_latency=True)


def build() -> BareRenameMachine:
    return BareRenameMachine()


def build_for_lint() -> BareRenameMachine:
    return build()

"""A width-overflow defect with *observable* consequences.

``SaturatingAger`` holds a saturating age counter: every edge it adds
``RATE`` and clamps at ``CAP``, and its time-wheel hook batch-ages runs
of idle edges with the closed form ``min(age + RATE*n, CAP)`` — sound
congruence for a register wide enough to hold ``CAP``.

The seeded defect is the 4-bit register: ``min(age + 21, 100)`` is
proven to lie in ``[21, 36]``, always above the 4-bit mask, so every
per-edge store truncates (``dataflow.width-overflow``).  Truncation
breaks the hook's congruence — saturation never triggers (the stored
value can't reach 100) and ``(min(v + 21n, 100)) & 15`` disagrees with
the edge-by-edge recurrence ``v := (v + 21) & 15`` — so a wheel-enabled
run visibly desynchronises from the exhaustive oracle.  The divergence
property test pins that consequence.
"""

from __future__ import annotations

from typing import Optional

from repro.hdl import Component

EXPECTED_RULE = "dataflow.width-overflow"

RATE = 21
CAP = 100
WIDTH = 4  # the defect: CAP needs 7 bits


class SaturatingAger(Component):
    def __init__(self) -> None:
        super().__init__("satager")
        self.age = self.reg("age", WIDTH, 0)

        @self.seq(pure=True)
        def _tick() -> None:
            if self.age.value < CAP:
                self.age.nxt = min(self.age.value + RATE, CAP)

        self.wheel(self._horizon, self._skip)

    def _horizon(self) -> Optional[int]:
        v = self.age.value
        if v >= CAP:
            return None  # saturated: fully idle
        # "pure aging" until the saturation edge — a congruence the
        # truncating store below the counter's width silently voids
        return -(-(CAP - v) // RATE)

    def _skip(self, n: int) -> None:
        self.age.warp(min(self.age.value + RATE * n, CAP))


def build() -> SaturatingAger:
    return SaturatingAger()


def build_for_lint() -> SaturatingAger:
    return build()

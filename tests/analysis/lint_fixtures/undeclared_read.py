"""Seeded defect: a tracked comb process reads mutated hidden state.

The settle process gates its output on ``self._mode`` — a plain Python
attribute the edge process rewrites.  Sensitivity discovery only sees
``Signal.value`` reads, so the event kernel never re-runs the comb when
the mode flips: its output goes stale until some *tracked* input happens
to change.  The exhaustive kernel, which re-runs everything, disagrees —
this is the divergence the property suite reproduces.
"""

from repro.hdl import Component

EXPECTED_RULE = "contract.hidden-comb-read"


class ModalGate(Component):
    def __init__(self) -> None:
        super().__init__("modal")
        self.inp = self.signal("inp", 8, 0)
        self.out = self.signal("out", 8, 0)
        self._step = self.reg("step", 8, 0)
        self._mode = 0  # hidden: flips between pass-through and inversion

        @self.comb
        def _gate() -> None:
            x = self.inp.value
            self.out.set((x ^ 0xFF) if self._mode else x)

        @self.seq
        def _advance() -> None:
            step = self._step.value
            self._step.nxt = (step + 1) & 0xFF
            if step % 4 == 3:
                self._mode = 1 - self._mode


def build() -> ModalGate:
    return ModalGate()


def build_for_lint() -> ModalGate:
    return build()

"""Seeded defect: a ``seq(pure=True)`` process that isn't.

The process stages a register only while counting down, but bumps the
hidden ``ticks`` attribute on *every* edge.  Purity licenses the edge
scheduler to disarm it after a no-stage edge — once the countdown hits
zero the process goes dormant and the tally silently stops, while the
exhaustive kernel keeps counting.  (The shipped components that look like
this — serializer, decoder — only mutate on paths that also stage, and
carry a commented suppression saying so.)
"""

from repro.hdl import Component

EXPECTED_RULE = "contract.impure-pure-seq"


class SleepyCounter(Component):
    def __init__(self, start: int = 3) -> None:
        super().__init__("sleepy")
        self._remaining = self.reg("remaining", 8, start)
        self.ticks = 0  # hidden per-edge tally, mutated even when dormant-eligible

        @self.seq(pure=True)
        def _tick() -> None:
            self.ticks += 1
            left = self._remaining.value
            if left:
                self._remaining.nxt = left - 1


def build() -> SleepyCounter:
    return SleepyCounter()


def build_for_lint() -> SleepyCounter:
    return build()

"""Seeded defect: a hand-assembled functional-unit table with bad rows.

Bypasses :meth:`FunctionalUnitTable.add` (as a custom RTM assembling its
own routing data can) and seeds every defect the ``futable.*`` family
pins:

* row keyed ``0x13`` carrying unit code ``0x12`` — decoder and
  scoreboard disagree about which opcode is in flight;
* the same row reuses dispatch port 0 — two opcodes drive one unit's
  dispatch register;
* the aliased row routes to an *orphan* unit never parented into the
  component tree;
* its write profile returns a 2-tuple, so the lock manager's
  ``(dst1, dst2, flags)`` unpack blows up at dispatch time.
"""

from repro.fu.arith import ArithmeticUnit
from repro.hdl import Component
from repro.rtm.futable import FunctionalUnitTable, UnitEntry

EXPECTED_RULE = "futable.duplicate-opcode"


class HandWiredRtm(Component):
    def __init__(self) -> None:
        super().__init__("badrtm")
        self.wired_unit = ArithmeticUnit("fu_12", 16, parent=self)
        self.orphan_unit = ArithmeticUnit("orphan", 16)  # no parent: unwired

        table = FunctionalUnitTable()
        table.add(0x12, self.wired_unit, lambda v: (True, False, True))
        # the seeded defects: key != code, port collision, orphan unit,
        # malformed write profile
        table.entries[0x13] = UnitEntry(
            code=0x12, port=0, unit=self.orphan_unit,
            write_profile=lambda v: (True, False),
        )
        self.futable = table


def build() -> HandWiredRtm:
    return HandWiredRtm()


def build_for_lint() -> HandWiredRtm:
    return build()

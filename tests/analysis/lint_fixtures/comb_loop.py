"""Seeded defect: a combinational loop through plain signals.

Two settle processes feed each other: ``a`` is computed from ``b`` and
``b`` from ``a``.  Neither kernel can reach a fixpoint — the exhaustive
kernel oscillates to its iteration cap, the event kernel ping-pongs the
two processes forever.  Real hardware would be a ring oscillator.
"""

from repro.hdl import Component

EXPECTED_RULE = "graph.comb-loop"


class RingOscillator(Component):
    def __init__(self) -> None:
        super().__init__("ring")
        self.a = self.signal("a", 8, 0)
        self.b = self.signal("b", 8, 0)

        @self.comb
        def _fwd() -> None:
            self.a.set((self.b.value + 1) & 0xFF)

        @self.comb
        def _bwd() -> None:
            self.b.set((self.a.value + 1) & 0xFF)


def build() -> RingOscillator:
    return RingOscillator()


def build_for_lint() -> RingOscillator:
    return build()

"""Seeded defect: a protection domain with one bare state element.

Instantiates the machine-check unit and guards the register-file RAM the
way a protected RTM would — but adds a second scratch RAM with no guard,
the way a hand-extended design can.  An upset in the scratch RAM would be
invisible to the ECC/scrub/machine-check stack, which is exactly the
silent-corruption hole ``fault.unprotected_state`` pins shut.
"""

from repro.faults import MachineCheckUnit, RamGuard, StateFaultPlan
from repro.hdl import Component, SyncRam

EXPECTED_RULE = "fault.unprotected_state"


class HalfProtectedRtm(Component):
    def __init__(self) -> None:
        super().__init__("halfrtm")
        self.plan = StateFaultPlan()
        self.mcu = MachineCheckUnit("mcu", parent=self)
        self.mcu.stats = self.plan.stats

        self.regfile = SyncRam("regfile", words=16, width=64, parent=self)
        RamGuard("halfrtm.regfile", self.regfile, self.plan, self.mcu)

        # the seeded defect: mutable state inside a protection domain with
        # no guard wired onto it
        self.scratch = SyncRam("scratch", words=8, width=64, parent=self)


def build() -> HalfProtectedRtm:
    return HalfProtectedRtm()


def build_for_lint() -> HalfProtectedRtm:
    return build()

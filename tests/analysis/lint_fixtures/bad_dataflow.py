"""Seeded defects for the ``dataflow.*`` rule family — one per rule.

Each sub-component carries exactly one provable value/width defect, and
nothing else in the tree is allowed to trip the family (the test asserts
*exactly one* finding per rule id).  The wrap-by-design counter inside
``DeadGuard`` doubles as the negative control: its ``+ 1`` overflows the
register every 16 cycles yet must stay silent, because wrapping is only a
defect when the written value can *never* fit.
"""

from repro.config import FrameworkConfig
from repro.hdl import Component
from repro.rtm.rename import RenameTable
from repro.smem.controller import MicroController
from repro.smem.microcode import OP_A, MicroInstr
from repro.smem.scan import ScanCmd, VectorScanArray

RULES = (
    "dataflow.width-overflow",
    "dataflow.truncating-slice",
    "dataflow.constant-signal",
    "dataflow.dead-branch",
    "dataflow.unreachable-microcode",
    "dataflow.pool-underflow",
)
EXPECTED_RULE = RULES[0]


class OverflowAccumulator(Component):
    """dataflow.width-overflow: 4-bit register fed value + 21 — the
    smallest possible write (21) already exceeds the [0, 15] range."""

    def __init__(self, parent=None):
        super().__init__("overflow", parent)
        self.acc = self.reg("acc", 4, 0)

        @self.seq(pure=True)
        def _tick() -> None:
            self.acc.nxt = self.acc.value + 21


class TruncatingTap(Component):
    """dataflow.truncating-slice: an 8-bit counter shifted right by 2
    still spans [0, 63], silently dropping bits into a 4-bit register."""

    def __init__(self, parent=None):
        super().__init__("tap", parent)
        self.wide = self.reg("wide", 8, 0)
        self.nib = self.reg("nib", 4, 0)

        @self.seq(pure=True)
        def _tick() -> None:
            self.wide.nxt = self.wide.value + 1
            self.nib.nxt = self.wide.value >> 2


class TiedOff(Component):
    """dataflow.constant-signal: a driver that can only ever produce 3."""

    def __init__(self, parent=None):
        super().__init__("tied", parent)
        self.level = self.signal("level", 4, 3)

        @self.comb
        def _drive() -> None:
            self.level.set(3)


class DeadGuard(Component):
    """dataflow.dead-branch: the guard compares a 4-bit counter against
    100 — provably never true.  The counter itself wraps by design and
    must NOT raise width-overflow."""

    def __init__(self, parent=None):
        super().__init__("guard", parent)
        self.cnt = self.reg("cnt", 4, 0)
        self.pulse = self.reg("pulse", 1, 0)

        @self.seq(pure=True)
        def _tick() -> None:
            self.cnt.nxt = self.cnt.value + 1
            if self.cnt.value > 100:
                self.pulse.nxt = 1


#: one-word program whose ``done`` is followed by a second word the
#: two-state FSM can never reach (it returns to Idle on ``done``)
DEAD_TAIL_MICROCODE: dict[int, tuple[MicroInstr, ...]] = {
    0x01: (
        MicroInstr(cell_cmd=int(ScanCmd.CLEAR), done=True),
        MicroInstr(cell_cmd=int(ScanCmd.ADD_ALL), broadcast=OP_A),
    ),
}


class BadDataflowMachine(Component):
    def __init__(self) -> None:
        super().__init__("baddataflow")
        self.overflow = OverflowAccumulator(parent=self)
        self.tap = TruncatingTap(parent=self)
        self.tied = TiedOff(parent=self)
        self.guard = DeadGuard(parent=self)

        # dataflow.unreachable-microcode: controller over the dead-tail ROM
        self.array = VectorScanArray("array", 4, 32, parent=self)
        self.ctrl = MicroController(
            "ctrl", self.array, DEAD_TAIL_MICROCODE, 32, parent=self
        )

        # dataflow.pool-underflow: window 8 can hold 16 in-flight data
        # destinations beyond the 16 architectural registers, but the pool
        # only has 20 - 16 = 4 spares.
        config = FrameworkConfig(ooo=True, ooo_window=8, phys_regs=20)
        self.rename = RenameTable("rename", config, parent=self)


def build() -> BadDataflowMachine:
    return BadDataflowMachine()


def build_for_lint() -> BadDataflowMachine:
    return build()

"""Seeded-defect designs pinning the lint rule catalog.

Each module builds one deliberately broken component and records the rule
id its defect must raise (``EXPECTED_RULE``).  The suite in
``tests/analysis/test_lint.py`` asserts every fixture fires its rule and
that the shipped presets fire none — the false-negative and
false-positive halves of the checker's contract.

Every module also exposes ``build_for_lint()`` so the fixtures double as
CLI targets: ``python -m repro.analysis.lint tests/analysis/lint_fixtures/<name>.py``.
"""

"""The design-rule checker's own contract, both halves.

False negatives: every seeded-defect fixture must raise its pinned rule.
False positives: the shipped presets must raise nothing (in *error-mode*
terms: nothing at all — warnings included).  Plus the machinery around the
rules: suppressions, the builder gate, the CLI, and report rendering.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.lint import LintFailure, Linter, all_rules, iter_rule_catalog
from repro.analysis.lint.cli import main as lint_main
from repro.analysis.lint.testing import (
    assert_lint_clean,
    assert_rule_fires,
    lint_report,
)
from repro.fu import AreaOptimizedFU, FuComputation
from repro.messages.channel import PRESETS
from repro.system import SystemBuilder, build_system

from tests.analysis.lint_fixtures import (
    bad_dataflow,
    bad_futable,
    bad_issue,
    comb_loop,
    double_driver,
    impure_pure_seq,
    overflow_divergence,
    undeclared_read,
    unprotected_state,
    valid_no_ready,
)

FIXTURES = [comb_loop, double_driver, undeclared_read, impure_pure_seq,
            valid_no_ready, bad_futable, unprotected_state, bad_issue,
            bad_dataflow, overflow_divergence]
FIXTURE_DIR = Path(__file__).parent / "lint_fixtures"


# -- false negatives: seeded defects must be caught ---------------------------


@pytest.mark.parametrize("fixture", FIXTURES,
                         ids=[f.__name__.rsplit(".", 1)[-1] for f in FIXTURES])
def test_fixture_fires_pinned_rule(fixture):
    assert_rule_fires(fixture.build(), fixture.EXPECTED_RULE)


def test_bad_issue_also_fires_latency_mismatch():
    report = assert_rule_fires(bad_issue.build(), bad_issue.LATENCY_RULE)
    (diag,) = [d for d in report.diagnostics
               if d.rule_id == bad_issue.LATENCY_RULE]
    assert "0x20" in diag.message and "3" in diag.message


def test_ooo_protected_system_lint_clean():
    """The OoO preset with the full fault stack raises nothing — the
    RenameGuard wiring satisfies issue.unprotected-rename by construction."""
    built = build_system(ooo=True, fp_units=True, state_protection=True,
                         lint="off")
    assert_lint_clean(built.soc, sim=built.sim)


def test_comb_loop_names_the_cycle():
    report = assert_rule_fires(comb_loop.build(), "graph.comb-loop")
    (diag,) = [d for d in report.diagnostics if d.rule_id == "graph.comb-loop"]
    assert "a" in diag.message.split() or "a ->" in diag.message
    assert "b" in diag.message


def test_double_driver_names_both_processes():
    report = assert_rule_fires(double_driver.build(), "graph.multi-driver",
                               signal="contention.bus")
    (diag,) = [d for d in report.diagnostics
               if d.rule_id == "graph.multi-driver"]
    assert "_driver_a" in diag.message and "_driver_b" in diag.message


def test_impure_pure_seq_names_hidden_attr():
    report = assert_rule_fires(impure_pure_seq.build(),
                               "contract.impure-pure-seq")
    (diag,) = report.errors
    assert "ticks" in diag.message


def test_bad_futable_fires_whole_family():
    """One hand-built table seeds all three futable defect classes."""
    report = lint_report(bad_futable.build())
    fired = {d.rule_id for d in report.diagnostics}
    assert {"futable.duplicate-opcode", "futable.unregistered-unit",
            "futable.write-profile"} <= fired
    alias = [d for d in report.diagnostics
             if d.rule_id == "futable.duplicate-opcode"]
    # the aliased row is reported for both key/code mismatch and port reuse
    assert any("0x13" in d.message and "0x12" in d.message for d in alias)
    assert any("port 0" in d.message for d in alias)


def test_smem_suite_table_is_futable_clean():
    """The suite preset assembles six units through the guarded path —
    the new family must stay silent on it (zero false positives)."""
    from repro.fu.registry import smem_suite_registry

    built = build_system(registry=smem_suite_registry(n_cells=8), lint="off")
    report = lint_report(built.soc, sim=built.sim)
    assert not any(d.rule_id.startswith("futable.")
                   for d in report.diagnostics)


# -- the dataflow family ------------------------------------------------------


def test_bad_dataflow_fires_each_rule_exactly_once():
    """One seeded defect per rule, and no cross-talk between them."""
    from collections import Counter

    report = Linter(["dataflow.*"]).lint(bad_dataflow.build())
    counts = Counter(d.rule_id for d in report.diagnostics)
    assert counts == {rid: 1 for rid in bad_dataflow.RULES}


def test_width_overflow_names_signal_and_proved_range():
    report = Linter(["dataflow.width-overflow"]).lint(bad_dataflow.build())
    (diag,) = report.diagnostics
    assert diag.signal.endswith(".acc")
    assert "21" in diag.message  # the proven minimum of the pre-mask value


def test_wrapping_counter_is_not_flagged():
    """DeadGuard.cnt wraps by design (lo stays 0) — no width-overflow."""
    report = Linter(["dataflow.width-overflow"]).lint(bad_dataflow.build())
    assert not any(d.signal and d.signal.endswith(".cnt")
                   for d in report.diagnostics)


def test_pool_underflow_rejects_undersized_rename_pool():
    """The builder gate refuses a physical register file the renamer can
    exhaust: 20 < n_regs + 2*window = 32."""
    from repro.config import FrameworkConfig

    cfg = FrameworkConfig(ooo=True, ooo_window=8, phys_regs=20)
    with pytest.raises(LintFailure) as exc:
        build_system(cfg, lint="error")
    assert any(d.rule_id == "dataflow.pool-underflow"
               for d in exc.value.report.errors)


def test_default_pool_sizing_is_dataflow_clean():
    """The defaulted phys-reg pool is exactly the proof obligation."""
    built = build_system(ooo=True, lint="off")
    report = Linter(["dataflow.*"]).lint(built.soc, sim=built.sim)
    assert not report.diagnostics


def test_rule_glob_selects_family():
    linter = Linter(["dataflow.*"])
    assert linter.rules and all(rid.startswith("dataflow.")
                                for rid in linter.rules)


def test_rule_glob_with_no_match_is_rejected():
    with pytest.raises(KeyError):
        Linter(["nosuchfamily.*"])


# -- false positives: shipped designs must be silent --------------------------


@pytest.mark.parametrize("preset", sorted(PRESETS))
def test_presets_lint_clean(preset):
    built = build_system(channel=PRESETS[preset], lint="off")
    report = assert_lint_clean(built.soc, sim=built.sim)
    # the guard-coupled purity idioms are suppressed, not invisible
    assert report.suppressed, "expected the documented suppressions to count"


def test_presets_are_fully_analyzable():
    """No proc in the shipped SoC defeats the resolver — the closure-gated
    rules (undriven-read, unread-drive, protocol.*) are live design-wide."""
    from repro.analysis.lint import build_design

    built = build_system(lint="off")
    design = build_design(built.soc, sim=built.sim)
    assert design.read_closed and design.write_closed, (
        [(p.path, p.name) for p in design.procs if p.opaque]
    )


# -- suppressions -------------------------------------------------------------


def test_suppression_silences_and_is_counted():
    comp = impure_pure_seq.build()
    comp.lint_suppress("contract.impure-pure-seq", "fixture: testing the knob")
    report = lint_report(comp)
    assert not any(d.rule_id == "contract.impure-pure-seq"
                   for d in report.diagnostics)
    assert any(s.rule_id == "contract.impure-pure-seq"
               for s in report.suppressed)


def test_suppression_is_rule_specific():
    comp = impure_pure_seq.build()
    comp.lint_suppress("graph.multi-driver", "fixture: wrong rule on purpose")
    report = lint_report(comp)
    assert any(d.rule_id == "contract.impure-pure-seq"
               for d in report.diagnostics)


# -- builder integration ------------------------------------------------------


class _ContendingUnit(AreaOptimizedFU):
    """A user unit with a seeded defect: a second driver for ``idle``."""

    def __init__(self, name, word_bits, parent=None):
        super().__init__(name, word_bits, parent)
        self.comb(lambda: self.dp.idle.set(1))

    def compute(self, s):
        return FuComputation(data1=s.op_a)


def test_build_system_lint_error_rejects_bad_unit():
    builder = (
        SystemBuilder()
        .with_unit(0x20, lambda n, w, p: _ContendingUnit(n, w, p))
        .with_lint("error")
    )
    with pytest.raises(LintFailure) as exc:
        builder.build()
    assert any(d.rule_id == "graph.multi-driver"
               for d in exc.value.report.errors)


def test_build_system_lint_error_accepts_clean_design():
    build_system(lint="error")  # must not raise


def test_with_lint_rejects_unknown_mode():
    with pytest.raises(ValueError):
        SystemBuilder().with_lint("loud")


# -- engine / catalog ---------------------------------------------------------


def test_rule_filtering():
    report = Linter(["graph.multi-driver"]).lint(double_driver.build())
    assert {d.rule_id for d in report.diagnostics} == {"graph.multi-driver"}


def test_catalog_ids_are_unique_and_registered():
    rows = list(iter_rule_catalog())
    ids = [rid for rid, _sev, _title in rows]
    assert len(ids) == len(set(ids))
    assert set(ids) == set(all_rules())


# -- CLI ----------------------------------------------------------------------


def test_cli_flags_fixture_in_error_mode(capsys):
    path = str(FIXTURE_DIR / "double_driver.py")
    assert lint_main([path]) == 1
    assert "graph.multi-driver" in capsys.readouterr().out


def test_cli_fail_on_never(capsys):
    path = str(FIXTURE_DIR / "double_driver.py")
    assert lint_main([path, "--fail-on", "never"]) == 0


def test_cli_json_report(capsys):
    path = str(FIXTURE_DIR / "valid_no_ready.py")
    assert lint_main([path, "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    (target_report,) = payload["targets"].values()
    assert payload["summary"]["errors"] >= 1
    assert any(d["rule"] == "protocol.valid-no-ready"
               for d in target_report["diagnostics"])


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "graph.comb-loop" in out and "contract.impure-pure-seq" in out


def test_cli_rejects_unknown_rule_id():
    assert lint_main(["--rules", "graph.no-such-rule"]) == 2


def test_cli_rule_glob(capsys):
    path = str(FIXTURE_DIR / "bad_dataflow.py")
    assert lint_main([path, "--rules", "dataflow.*"]) == 1
    out = capsys.readouterr().out
    assert "dataflow.width-overflow" in out
    assert "graph." not in out


def test_cli_baseline_roundtrip(tmp_path, capsys):
    """Write a baseline from a dirty target, then re-run: everything is
    waived and the gate passes."""
    path = str(FIXTURE_DIR / "bad_dataflow.py")
    base = tmp_path / "lint-baseline.json"
    assert lint_main([path, "--rules", "dataflow.*",
                      "--baseline", str(base), "--update-baseline"]) == 0
    payload = json.loads(base.read_text())
    assert payload["version"] == 1
    (keys,) = payload["findings"].values()
    assert any(k.startswith("dataflow.width-overflow|") for k in keys)
    assert lint_main([path, "--rules", "dataflow.*",
                      "--baseline", str(base)]) == 0


def test_cli_baseline_still_fails_on_new_findings(tmp_path, capsys):
    """A baseline waives only what it recorded — new findings still gate."""
    clean = str(FIXTURE_DIR / "bad_dataflow.py")
    base = tmp_path / "lint-baseline.json"
    # baseline records nothing for this label (different target key)
    base.write_text(json.dumps({"version": 1, "findings": {}}) + "\n")
    assert lint_main([clean, "--rules", "dataflow.*",
                      "--baseline", str(base)]) == 1


def test_cli_baseline_missing_file_is_a_usage_error(tmp_path):
    with pytest.raises(SystemExit):
        lint_main([str(FIXTURE_DIR / "double_driver.py"),
                   "--baseline", str(tmp_path / "absent.json")])


def test_cli_update_baseline_requires_baseline():
    assert lint_main(["--update-baseline"]) == 2


def test_cli_rejects_unknown_target():
    with pytest.raises(SystemExit):
        lint_main(["not-a-preset-and-not-a-file"])

"""Unit contracts of the dataflow engine: domain, transfer, solver, codegen.

The end-to-end behaviour (rules firing on seeded defects, presets staying
clean) lives in ``test_lint.py`` and the property suites; this file pins
the layers underneath — interval/known-bits algebra, abstract evaluation
of resolved expression trees, the fixpoint itself, and the width-only
facts the compiled backend consumes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.dataflow import analyze, analyze_design, vector_width_bits
from repro.analysis.dataflow import domain
from repro.analysis.dataflow.transfer import eval_expr, expr_signals
from repro.analysis.lint.model import build_design
from repro.hdl import Component
from repro.hdl.sim import Simulator
from repro.smem.array import lane_dtype


# -- the abstract domain ------------------------------------------------------


def test_const_and_interval_basics():
    c = domain.const(5)
    assert c.is_const and c.lo == c.hi == 5
    iv = domain.interval(3, 9)
    assert not iv.is_const and (iv.lo, iv.hi) == (3, 9)
    assert domain.interval(4, 4).is_const


def test_interval_arithmetic():
    a, b = domain.interval(1, 3), domain.const(10)
    assert (domain.add(a, b).lo, domain.add(a, b).hi) == (11, 13)
    assert (domain.sub(b, a).lo, domain.sub(b, a).hi) == (7, 9)
    m = domain.mul(domain.interval(2, 3), domain.interval(4, 5))
    assert (m.lo, m.hi) == (8, 15)


def test_bitand_refines_known_bits():
    masked = domain.bitand(domain.top(8), domain.const(0xF0))
    # the low nibble is proven zero
    assert masked.kmask & 0xF == 0xF and masked.kval & 0xF == 0
    assert masked.lo >= 0 and masked.hi <= 0xF0


def test_compare_decided_and_undecided():
    lt = domain.compare("<", domain.interval(0, 15), domain.const(16))
    assert lt.truthiness() is True
    maybe = domain.compare("<", domain.interval(0, 15), domain.const(10))
    assert maybe.truthiness() is None
    never = domain.compare(">", domain.interval(0, 7), domain.const(40))
    assert never.truthiness() is False


def test_truthiness():
    assert domain.const(0).truthiness() is False
    assert domain.interval(1, 5).truthiness() is True
    assert domain.interval(-3, -1).truthiness() is True
    assert domain.interval(0, 5).truthiness() is None


def test_join_covers_both_sides():
    j = domain.join(domain.const(2), domain.const(7))
    assert domain.contains(j, domain.const(2))
    assert domain.contains(j, domain.const(7))
    assert not domain.contains(j, domain.const(9))


def test_fits_is_the_width_proof():
    assert domain.interval(0, 15).fits(15)
    assert not domain.interval(21, 36).fits(15)   # the overflow fixture
    assert not domain.interval(-1, 3).fits(15)    # negatives never fit


def test_apply_mask_is_sound():
    clipped = domain.apply_mask(domain.interval(21, 36), 15)
    assert clipped.lo >= 0 and clipped.hi <= 15


def test_magnitudes_saturate_not_explode():
    huge = domain.mul(domain.const(domain.LIMIT), domain.const(domain.LIMIT))
    assert abs(huge.lo) <= domain.LIMIT and abs(huge.hi) <= domain.LIMIT


def test_vector_width_bits_lanes():
    assert vector_width_bits(1) == 8
    assert vector_width_bits(8) == 8
    assert vector_width_bits(9) == 16
    assert vector_width_bits(32) == 32
    assert vector_width_bits(33) == 64
    assert vector_width_bits(64) == 64
    with pytest.raises(ValueError):
        vector_width_bits(65)


def test_lane_dtype_narrows_and_clamps():
    assert lane_dtype(4) == np.dtype(np.uint8)
    assert lane_dtype(16) == np.dtype(np.uint16)
    assert lane_dtype(32) == np.dtype(np.uint32)
    assert lane_dtype(48) == np.dtype(np.uint64)
    # wider-than-64 words keep the uint64 lane (mask keeps them exact)
    assert lane_dtype(128) == np.dtype(np.uint64)


# -- the transfer function over resolved expression trees ---------------------


class _FakeSig:
    pass


def test_eval_expr_leaves_and_slices():
    s = _FakeSig()
    val = lambda sig: domain.top(8) if sig is s else None
    assert eval_expr(None, val) is None
    assert eval_expr(("const", 42), val).is_const
    got = eval_expr(("sig", s), val)
    assert (got.lo, got.hi) == (0, 255)
    b = eval_expr(("bit", s, 0), val)
    assert (b.lo, b.hi) == (0, 1)
    nib = eval_expr(("bits", s, 3, 0), val)
    assert (nib.lo, nib.hi) == (0, 15)


def test_eval_expr_bin_and_opaque():
    s = _FakeSig()
    val = lambda sig: domain.top(4)
    plus = eval_expr(("bin", "+", ("sig", s), ("const", 21)), val)
    assert (plus.lo, plus.hi) == (21, 36)
    assert eval_expr(("bin", "@@", ("sig", s), ("const", 1)), val) is None
    # one opaque operand poisons the expression, not the whole analysis
    val_none = lambda sig: None
    assert eval_expr(("bin", "+", ("sig", s), ("const", 1)), val_none) is None


def test_expr_signals_collects_leaves():
    s, t = _FakeSig(), _FakeSig()
    expr = ("bin", "+", ("sig", s), ("bin", "&", ("bits", t, 3, 0), ("const", 7)))
    assert expr_signals(expr) == {s, t}


# -- the solver on a live component -------------------------------------------


class _BoundedPair(Component):
    """An 8-bit counter plus a derived low-3-bit tap and a dead guard."""

    def __init__(self) -> None:
        super().__init__("bounded")
        self.cnt = self.reg("cnt", 8, 0)
        self.low3 = self.reg("low3", 8, 0)
        self.flag = self.reg("flag", 1, 0)

        @self.seq(pure=True)
        def _tick() -> None:
            self.cnt.nxt = (self.cnt.value + 1) & 0xFF
            self.low3.nxt = self.cnt.value & 0x7
            if self.low3.value > 40:  # provably never: low3 ∈ [0, 7]
                self.flag.nxt = 1


def test_solver_proves_derived_bound():
    top = _BoundedPair()
    res = analyze(top)
    av = res.value_of(top.low3)
    assert av is not None
    assert av.hi <= 7, "the &0x7 write bound did not reach the fixpoint"
    assert top.low3 in res.tracked


def test_solver_records_site_and_branch_facts():
    top = _BoundedPair()
    res = analyze(top)
    low3_sites = [f for f in res.site_facts if f.target is top.low3]
    assert low3_sites and all(f.pre is not None and f.pre.hi <= 7
                              for f in low3_sites)
    dead = [b for b in res.branch_facts
            if b.verdict is False and b.signal_dependent]
    assert dead, "the provably-dead guard was not proven dead"


def test_solver_is_memoized_per_design():
    design = build_design(_BoundedPair())
    assert analyze_design(design) is analyze_design(design)


def test_solver_terminates_on_widening():
    """An unbounded-looking accumulator must widen, not loop."""

    class Accum(Component):
        def __init__(self) -> None:
            super().__init__("accum")
            self.acc = self.reg("acc", 32, 0)

            @self.seq(pure=True)
            def _tick() -> None:
                self.acc.nxt = self.acc.value + 1  # no mask in the source

        def build_for_lint(self):  # pragma: no cover - convention only
            return self

    top = Accum()
    res = analyze(top)
    av = res.value_of(top.acc)
    # the kernel masks on commit, so the value bound is still the width
    assert av is not None and av.hi <= (1 << 32) - 1
    assert res.rounds >= 1


# -- range-informed codegen ---------------------------------------------------


class _Narrow(Component):
    """Provably-fitting stores and a width-decided branch for the codegen."""

    def __init__(self) -> None:
        super().__init__("narrow")
        self.a = self.reg("a", 4, 0)
        self.b = self.reg("b", 8, 0)

        @self.seq(pure=True)
        def _tick() -> None:
            self.b.nxt = self.a.value + 3        # [3, 18] fits 8 bits
            if self.a.value < 16:                # width-proven: always taken
                self.a.nxt = (self.a.value + 1) & 0xF


def test_compiled_backend_elides_and_folds():
    sim = Simulator(_Narrow(), backend="compiled")
    sim.reset()
    sim.step(4)
    ks = sim.kernel_stats
    assert ks.masks_elided >= 1
    assert ks.branches_folded >= 1
    assert "masks_elided" in ks.as_dict()


def test_elision_preserves_observable_state():
    def run(backend):
        top = _Narrow()
        sim = Simulator(top, backend=backend)
        sim.reset()
        sim.step(40)
        return top.a.value, top.b.value, sim.now

    assert run(None) == run("compiled")

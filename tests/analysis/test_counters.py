"""Unit tests for the performance-counter reporting."""

from repro.analysis import counters_for, link_counters_for
from repro.host import CoprocessorDriver
from repro.isa import instructions as ins
from repro.messages import FaultSpec
from repro.system import build_system


def _loaded_system():
    system = build_system()
    driver = CoprocessorDriver(system, raise_on_exception=False)
    driver.write_reg(1, 3)
    driver.write_reg(2, 4)
    driver.execute(ins.add(3, 1, 2, dst_flag=1))
    driver.execute(ins.xor(4, 1, 2, dst_flag=2))
    driver.execute(ins.get(3))
    driver.execute(ins.dispatch(0x7F, 0))  # one decode error
    driver.run_until_quiet()
    return system, driver


class TestCounters:
    def test_counts_reflect_workload(self):
        system, driver = _loaded_system()
        report = counters_for(system)
        assert report.cycles == system.sim.now
        assert report.dispatches == 2           # add + xor
        assert report.decode_errors == 1
        assert report.messages_sent == 2        # data record + exception
        assert report.writes >= 4               # 2 host writes + 2 results (+flags)
        assert report.locks_outstanding == 0

    def test_grants_split_across_ports(self):
        system, driver = _loaded_system()
        report = counters_for(system)
        assert set(report.grants_by_port) == {0, 1}  # arith port and logic port

    def test_rates(self):
        system, _ = _loaded_system()
        report = counters_for(system)
        assert 0.0 < report.dispatch_rate < 1.0
        assert 0.0 <= report.stall_fraction < 1.0

    def test_table_renders(self):
        system, _ = _loaded_system()
        text = counters_for(system).table()
        assert "framework counters" in text
        assert "unit dispatches" in text
        assert "arbiter grants, port 0" in text

    def test_stall_cycles_counted_under_dependency(self):
        # A fast front end cannot hide a 20-cycle unit: the dependent chain
        # must visibly stall the dispatcher.
        from repro.fu import AreaOptimizedFU, FuComputation
        from repro.system import SystemBuilder

        class Slow(AreaOptimizedFU):
            def __init__(self, name, word_bits, parent=None):
                super().__init__(name, word_bits, parent, execute_cycles=20)

            def compute(self, s):
                return FuComputation(data1=(s.op_a + 1) & 0xFFFF_FFFF, flags=0)

        system = SystemBuilder().with_unit(0x20, lambda n, w, p: Slow(n, w, p)).build()
        driver = CoprocessorDriver(system)
        driver.write_reg(1, 0)
        for _ in range(4):
            driver.execute(ins.dispatch(0x20, 0, dst1=1, src1=1, dst_flag=1))
        driver.run_until_quiet()
        report = counters_for(system)
        assert report.stall_cycles > 0
        assert driver.soc.rtm.register_value(1) == 4


class TestKernelCounters:
    def test_edge_phase_counters_reported(self):
        from repro.messages.channel import SLOW_PROTOTYPE

        system = build_system(channel=SLOW_PROTOTYPE)
        driver = CoprocessorDriver(system)
        driver.write_reg(1, 7)
        assert driver.read_reg(1) == 7
        driver.run_until_quiet()
        report = counters_for(system)
        for key in ("edge_calls", "seq_runs", "skipped_cycles", "wheel_jumps"):
            assert key in report.kernel
        k = report.kernel
        # every simulated cycle is either an executed edge or a skipped one
        assert k["edge_calls"] + k["skipped_cycles"] == report.cycles
        # the slow link leaves long certified-idle stretches: the wheel
        # must have covered most of the run in a handful of jumps
        assert k["skipped_cycles"] > k["edge_calls"]
        assert 0 < k["wheel_jumps"] <= k["skipped_cycles"]
        assert "skipped cycles" in report.kernel_table()

    def test_wheel_off_executes_every_edge(self):
        from repro.messages.channel import SLOW_PROTOTYPE

        system = build_system(channel=SLOW_PROTOTYPE, wheel=False)
        driver = CoprocessorDriver(system)
        driver.write_reg(1, 7)
        assert driver.read_reg(1) == 7
        report = counters_for(system)
        assert report.kernel["skipped_cycles"] == 0
        assert report.kernel["wheel_jumps"] == 0
        assert report.kernel["edge_calls"] == report.cycles


def _lossy_system():
    system = build_system(reliable=True,
                          faults=FaultSpec(seed=13, drop_rate=0.02),
                          upstream_faults=FaultSpec(seed=14, drop_rate=0.02))
    driver = CoprocessorDriver(system)
    for i in range(12):
        driver.write_reg(1, i)
        assert driver.read_reg(1) == i
    driver.run_until_quiet()
    return system, driver


class TestLinkCounters:
    def test_clean_plain_system_has_no_link_section(self):
        system, _ = _loaded_system()
        report = counters_for(system)
        assert report.link == {}
        assert report.link_table() == ""

    def test_faulty_reliable_system_reports_all_sections(self):
        system, _ = _lossy_system()
        link = link_counters_for(system)
        assert set(link) == {"downstream_faults", "upstream_faults",
                             "rtm_receiver"}
        for key in ("words_offered", "words_dropped", "bits_flipped",
                    "words_duplicated", "dead"):
            assert key in link["downstream_faults"]
            assert key in link["upstream_faults"]
        for key in ("frames_ok", "delivered", "crc_failures", "resyncs",
                    "seq_gaps", "duplicates", "nacks_sent",
                    "duplicates_discarded", "duplicates_reexecuted"):
            assert key in link["rtm_receiver"]
        assert link["downstream_faults"]["words_dropped"] > 0

    def test_engine_recovery_counters_folded_in(self):
        system, driver = _lossy_system()
        report = counters_for(system, driver)
        for key in ("retransmits", "retransmitted_words", "nacks",
                    "deadline_expiries", "link_down_failures",
                    "stale_responses", "response_gaps", "rx_resyncs",
                    "degrade_entries", "replay_truncated"):
            assert key in report.engine
        assert report.engine["retransmits"] > 0

    def test_link_table_renders(self):
        system, driver = _lossy_system()
        report = counters_for(system, driver)
        text = report.link_table()
        assert "link integrity" in text
        assert "downstream_faults: words dropped" in text
        assert "rtm_receiver: nacks sent" in text

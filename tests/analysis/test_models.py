"""Unit tests for the clock, link, area and timing models."""

import pytest

from repro.analysis import (
    CYCLONE_EP1C12_LES,
    DEFAULT_CLOCKS,
    INTEGRATED_LINK,
    PCIE_CLASS_LINK,
    SERIAL_PROTOTYPE_LINK,
    AreaEstimate,
    ClockModel,
    LinkModel,
    ack_forwarding_path,
    area_case_study_system,
    area_cell,
    area_framework,
    area_tree,
    area_xisort_unit,
    estimate_clock,
    format_table,
    rtm_paths,
)
from repro.config import FrameworkConfig


class TestClockModel:
    def test_paper_constants(self):
        assert DEFAULT_CLOCKS.fpga_mhz == 50.0  # the Cyclone prototype
        assert DEFAULT_CLOCKS.clock_ratio == pytest.approx(40.0)

    def test_seconds_conversions(self):
        m = ClockModel(fpga_mhz=50, cpu_mhz=2000, cpu_cycles_per_op=3)
        assert m.fpga_seconds(50_000_000) == pytest.approx(1.0)
        assert m.cpu_seconds(2_000_000_000 // 3) == pytest.approx(1.0, rel=1e-6)


class TestLinkModel:
    def test_serial_is_orders_of_magnitude_slower(self):
        assert PCIE_CLASS_LINK.word_rate_hz / SERIAL_PROTOTYPE_LINK.word_rate_hz > 1e3

    def test_transfer_seconds(self):
        link = LinkModel("x", word_rate_hz=1000, latency_s=0.01)
        assert link.transfer_seconds(0) == 0
        assert link.transfer_seconds(10) == pytest.approx(0.02)

    def test_to_channel_spec(self):
        spec = SERIAL_PROTOTYPE_LINK.to_channel_spec(fpga_mhz=50)
        # 50 MHz / 2880 words/s ≈ 17361 cycles/word
        assert spec.cycles_per_word == pytest.approx(17361, rel=0.01)
        assert spec.latency_cycles == 5000

    def test_integrated_spec_is_tight(self):
        spec = INTEGRATED_LINK.to_channel_spec()
        assert spec.cycles_per_word == 1


class TestAreaModel:
    def test_cell_area_linear_in_cells(self):
        a64 = area_xisort_unit(64, 32).breakdown["xisort.cells"]
        a128 = area_xisort_unit(128, 32).breakdown["xisort.cells"]
        assert a128 == 2 * a64

    def test_cell_area_grows_with_word(self):
        assert area_cell(64) > area_cell(32)

    def test_tree_area_roughly_linear(self):
        assert area_tree(128, 32) < 2.5 * area_tree(64, 32)

    def test_framework_area_grows_with_word_size(self):
        small = area_framework(FrameworkConfig(word_bits=32)).total
        large = area_framework(FrameworkConfig(word_bits=128)).total
        assert large > small

    def test_modest_system_fits_small_cyclone(self):
        # the paper ran on a small prototyping Cyclone: a 16-cell system fits
        est = area_case_study_system(FrameworkConfig(), n_cells=16)
        assert est.fits(CYCLONE_EP1C12_LES)

    def test_large_array_exceeds_small_device(self):
        est = area_case_study_system(FrameworkConfig(), n_cells=512)
        assert not est.fits(CYCLONE_EP1C12_LES)

    def test_estimate_merge(self):
        a, b = AreaEstimate({"x": 1}), AreaEstimate({"x": 2, "y": 3})
        merged = a.merged(b)
        assert merged.breakdown == {"x": 3, "y": 3}
        assert merged.total == 6


class TestTimingModel:
    def test_controller_paths_are_short(self):
        """'the critical path in the controller is short' (§III)."""
        paths = rtm_paths(FrameworkConfig())
        assert max(p.levels for p in paths) <= 6

    def test_unit_paths_dominate(self):
        """'The main limitation on performance will be the functional units.'"""
        est = estimate_clock(FrameworkConfig(), n_cells=1024)
        assert est.critical.name.startswith("xisort")

    def test_tree_depth_lowers_clock(self):
        small = estimate_clock(FrameworkConfig(), n_cells=16)
        large = estimate_clock(FrameworkConfig(), n_cells=4096)
        assert large.fmax_mhz < small.fmax_mhz

    def test_ack_forwarding_stretches_path(self):
        """Thesis §2.3.4's warning, quantified (design decision 4)."""
        cfg = FrameworkConfig()
        base = estimate_clock(cfg, ack_forwarding=False)
        fwd = estimate_clock(cfg, ack_forwarding=True)
        assert fwd.fmax_mhz < base.fmax_mhz
        assert ack_forwarding_path(cfg, 2).levels > max(p.levels for p in rtm_paths(cfg))

    def test_cyclone_class_clock(self):
        # a moderate system should land in the tens-of-MHz band the paper saw
        est = estimate_clock(FrameworkConfig(), n_cells=64)
        assert 20 <= est.fmax_mhz <= 200


class TestReport:
    def test_format_table(self):
        text = format_table(["n", "cycles"], [[1, 2], [10, 2000.5]], title="T")
        assert "T" in text
        assert "cycles" in text
        lines = text.splitlines()
        assert len(lines) == 5  # title, header, rule, 2 rows

    def test_float_formatting(self):
        text = format_table(["x"], [[0.00001], [123456.0], [1.5]])
        assert "e-05" in text or "1e-05" in text

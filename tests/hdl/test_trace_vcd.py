"""Unit tests for the tracer and VCD writer."""

import io

from repro.hdl import Component, Simulator, Tracer, VcdWriter, trace_to_string


class Toggler(Component):
    def __init__(self):
        super().__init__("tg")
        self.bit = self.reg("bit", 1, 0)
        self.count = self.reg("count", 8, 0)
        self.payload = self.signal("payload", None, reset=None)

        @self.seq
        def _tick():
            self.bit.nxt = 1 - self.bit.value
            self.count.nxt = self.count.value + 1


class TestTracer:
    def test_history_recorded_per_cycle(self):
        top = Toggler()
        sim = Simulator(top)
        tr = Tracer(sim, [top.bit, top.count])
        sim.step(4)
        assert tr.series(top.count) == [1, 2, 3, 4]
        assert tr.series(top.bit) == [1, 0, 1, 0]

    def test_at_cycle(self):
        top = Toggler()
        sim = Simulator(top)
        tr = Tracer(sim, [top.count])
        sim.step(3)
        assert tr.at(2) == {"tg.count": 2}

    def test_count_transitions(self):
        top = Toggler()
        sim = Simulator(top)
        tr = Tracer(sim, [top.bit])
        sim.step(6)
        assert tr.count_transitions(top.bit) == 5

    def test_first_cycle_where(self):
        top = Toggler()
        sim = Simulator(top)
        tr = Tracer(sim, [top.count])
        sim.step(5)
        assert tr.first_cycle_where(top.count, 3) == 3
        assert tr.first_cycle_where(top.count, 99) == -1


class TestVcd:
    def test_header_and_samples(self):
        top = Toggler()
        sim = Simulator(top)
        buf = io.StringIO()
        VcdWriter(sim, buf, [top.bit, top.count], clock_period_ns=20)
        sim.step(2)
        text = buf.getvalue()
        assert "$timescale 1 ns $end" in text
        assert "$var wire 1" in text
        assert "$var wire 8" in text
        assert "#20" in text and "#40" in text

    def test_payload_signals_skipped(self):
        top = Toggler()
        sim = Simulator(top)
        buf = io.StringIO()
        writer = VcdWriter(sim, buf)
        assert all(s.width is not None for s in writer.signals)

    def test_no_output_when_nothing_changes(self):
        class Static(Component):
            def __init__(self):
                super().__init__("st")
                self.x = self.reg("x", 4, 5)
                self.seq(lambda: None)

        top = Static()
        sim = Simulator(top)
        buf = io.StringIO()
        VcdWriter(sim, buf, [top.x])
        before = buf.getvalue()
        sim.step(3)
        assert buf.getvalue() == before  # only the initial dump

    def test_trace_to_string_runs(self):
        top = Toggler()
        sim = Simulator(top)
        text = trace_to_string(sim, [top.bit], 3)
        assert text.startswith("$date")

"""Unit tests for the synchronous FIFO."""

import pytest

from repro.hdl import Component, Simulator, SyncFifo


class FifoHarness(Component):
    def __init__(self, depth=4):
        super().__init__("fh")
        self.fifo = SyncFifo("fifo", depth=depth, parent=self, width=8)
        self.to_send: list[int] = []
        self.received: list[int] = []
        self.drain = True

        @self.comb(always=True)
        def _drive():
            self.fifo.inp.valid.set(1 if self.to_send else 0)
            if self.to_send:
                self.fifo.inp.payload.set(self.to_send[0])
            self.fifo.out.ready.set(1 if self.drain else 0)

        @self.seq
        def _tick():
            if self.fifo.inp.fires():
                self.to_send.pop(0)
            if self.fifo.out.fires():
                self.received.append(self.fifo.out.payload.value)


class TestSyncFifo:
    def test_fifo_order(self):
        h = FifoHarness()
        sim = Simulator(h)
        h.to_send = [9, 8, 7]
        sim.step(8)
        assert h.received == [9, 8, 7]

    def test_fills_to_depth_under_backpressure(self):
        h = FifoHarness(depth=3)
        sim = Simulator(h)
        h.drain = False
        h.to_send = [1, 2, 3, 4, 5]
        sim.step(10)
        assert h.fifo.occupancy == 3
        assert h.fifo.is_full
        assert h.to_send == [4, 5]  # 4 and 5 refused

    def test_drains_after_backpressure(self):
        h = FifoHarness(depth=3)
        sim = Simulator(h)
        h.drain = False
        h.to_send = [1, 2, 3]
        sim.step(5)
        h.drain = True
        sim.step(5)
        assert h.received == [1, 2, 3]
        assert h.fifo.is_empty

    def test_simultaneous_push_pop_when_partially_full(self):
        h = FifoHarness(depth=2)
        sim = Simulator(h)
        h.to_send = list(range(10))
        sim.step(14)
        assert h.received == list(range(10))

    def test_occupancy_and_snapshot(self):
        h = FifoHarness(depth=4)
        sim = Simulator(h)
        h.drain = False
        h.to_send = [5, 6]
        sim.step(4)
        assert h.fifo.occupancy == 2
        assert h.fifo.snapshot() == (5, 6)

    def test_one_word_per_cycle_throughput(self):
        h = FifoHarness(depth=4)
        sim = Simulator(h)
        h.to_send = list(range(8))
        sim.step(10)  # 1 cycle latency + 8 transfers
        assert h.received == list(range(8))

    def test_zero_depth_rejected(self):
        with pytest.raises(ValueError):
            SyncFifo("bad", depth=0)

"""Regression pins for kernel behaviour immediately after a time-wheel jump.

A fast-forward jump leaves the kernel in an unusual pose: sequential
processes are dormant, wheel hooks have batch-aged their counters, and
``now`` has moved without per-cycle observer traffic.  These tests pin the
three interactions most likely to rot:

* :meth:`Simulator.reset` right after a jump must schedule rediscovery —
  re-arming every dormant process and flushing staged registers — so the
  post-reset system behaves exactly like a freshly built one;
* :meth:`Simulator.run_until` must keep stepping cycle-exactly after a
  jump;
* observers must see a strictly monotonic ``now`` with every cycle
  accounted for, whether delivered per-cycle or as compressed idle runs.
"""

from __future__ import annotations

from repro.host import CoprocessorDriver
from repro.messages.channel import SLOW_PROTOTYPE
from repro.system import build_system


def _idle_skipping_system():
    """A built system that has just taken at least one wheel jump."""
    system = build_system(channel=SLOW_PROTOTYPE)
    system.sim.step(4096)
    assert system.sim.kernel_stats.skipped_cycles > 0, "wheel never engaged"
    return system


def _transaction_cycles(system) -> tuple[int, int]:
    """Run one write+read round trip; returns (value read, cycles spent)."""
    driver = CoprocessorDriver(system)
    start = system.sim.now
    driver.write_reg(1, 42)
    value = driver.read_reg(1)
    driver.run_until_quiet()
    return value, system.sim.now - start


class TestResetAfterJump:
    def test_reset_rearms_dormant_processes(self):
        # After a jump every pure seq proc is dormant; reset must re-arm
        # them (via rediscovery) or the receiver would sleep through the
        # next transaction and the read below would time out.
        system = _idle_skipping_system()
        system.sim.reset()
        value, _ = _transaction_cycles(system)
        assert value == 42

    def test_post_reset_run_matches_fresh_system(self):
        # The reset state must be indistinguishable from a freshly built
        # system: an identical transaction costs the identical cycle count.
        jumped = _idle_skipping_system()
        jumped.sim.reset()
        fresh = build_system(channel=SLOW_PROTOTYPE)
        value_j, cycles_j = _transaction_cycles(jumped)
        value_f, cycles_f = _transaction_cycles(fresh)
        assert (value_j, cycles_j) == (value_f, cycles_f)

    def test_reset_flushes_in_flight_state(self):
        # Reset with words mid-link: staged registers and flight state are
        # dropped wholesale, so the system reports idle immediately and the
        # wheel can certify a long skip again.
        system = build_system(channel=SLOW_PROTOTYPE)
        driver = CoprocessorDriver(system)
        driver.write_reg(1, 9)
        driver.pump(10)  # words now inside the serialiser / delay line
        assert system.soc.busy
        system.sim.reset()
        assert not system.soc.busy
        # Rediscovery re-arms every process, so the scan rightly refuses to
        # jump straight out of reset; after one real edge the pure procs
        # disarm again and a long skip is certified.
        assert system.sim.fast_forward_limit(1000) == 0
        system.sim.step(2)
        assert system.sim.fast_forward_limit(1000) > 1


class TestRunUntilAfterJump:
    def test_run_until_steps_cycle_exactly(self):
        system = _idle_skipping_system()
        sim = system.sim
        n0 = sim.now
        consumed = sim.run_until(lambda: sim.now >= n0 + 7, max_cycles=100)
        assert consumed == 7
        assert sim.now == n0 + 7


class TestObserverMonotonicity:
    def test_skip_aware_observer_sees_monotonic_now(self):
        system = build_system(channel=SLOW_PROTOTYPE)
        sim = system.sim
        events = []  # (cycle, cycles_covered)
        sim.add_observer(
            lambda c: events.append((c, 1)),
            on_skip=lambda c, n: events.append((c, n)),
        )
        start = sim.now
        sim.step(3000)
        assert any(n > 1 for _, n in events), "no jump engaged"
        cycles = [c for c, _ in events]
        assert cycles == sorted(set(cycles)), "observer now not monotonic"
        assert sum(n for _, n in events) == 3000
        # each event lands exactly at the end of the span it covers
        at = start
        for cycle, covered in events:
            at += covered
            assert cycle == at
        assert sim.now == start + 3000

    def test_plain_observer_vetoes_jumps(self):
        system = build_system(channel=SLOW_PROTOTYPE)
        sim = system.sim
        seen = []
        sim.add_observer(seen.append)
        before = sim.kernel_stats.skipped_cycles
        start = sim.now
        sim.step(500)
        assert sim.kernel_stats.skipped_cycles == before
        assert seen == list(range(start + 1, start + 501))

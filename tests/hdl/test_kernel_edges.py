"""Edge-case tests of the simulation kernel's semantics."""

import pytest

from repro.hdl import (
    CombinationalLoopError,
    Component,
    Reg,
    Simulator,
)


class TestSettleScaling:
    def test_settle_iterations_track_chain_depth(self):
        """Reverse-registered comb chains need one pass per level (+1)."""

        def chain(depth):
            top = Component("c")
            src = top.reg("src", 8, 1)
            nets = [top.signal(f"n{i}", 8) for i in range(depth)]
            for i in reversed(range(depth)):
                def proc(i=i):
                    val = src.value if i == 0 else nets[i - 1].value
                    nets[i].set(val + 1)
                top.comb(proc)
            top.seq(lambda: None)
            return top, nets

        for depth in (2, 6, 12):
            top, nets = chain(depth)
            sim = Simulator(top)
            iters = sim.settle()
            assert nets[-1].value == 1 + depth
            assert iters <= depth + 2

    def test_forward_order_settles_in_two_passes(self):
        top = Component("c")
        src = top.reg("src", 8, 3)
        nets = [top.signal(f"n{i}", 8) for i in range(10)]
        for i in range(10):
            def proc(i=i):
                val = src.value if i == 0 else nets[i - 1].value
                nets[i].set(val + 1)
            top.comb(proc)
        top.seq(lambda: None)
        assert Simulator(top).settle() <= 2


class TestDoubleDriveHazard:
    def test_clear_then_set_pattern_never_settles(self):
        """The footgun ARCHITECTURE.md documents: a comb process that writes
        a signal twice with different values per pass keeps the dirty flag
        set and must be reported as a loop."""
        top = Component("c")
        strobe = top.signal("strobe", 1)
        armed = top.reg("armed", 1, 1)

        @top.comb
        def _bad():
            strobe.set(0)            # "default"
            if armed.value:
                strobe.set(1)        # "override" — toggles every pass

        top.seq(lambda: None)
        sim = Simulator(top)
        with pytest.raises(CombinationalLoopError):
            sim.settle()

    def test_compute_then_drive_is_fine(self):
        top = Component("c")
        strobe = top.signal("strobe", 1)
        armed = top.reg("armed", 1, 1)

        @top.comb
        def _good():
            strobe.set(1 if armed.value else 0)

        top.seq(lambda: None)
        Simulator(top).settle()
        assert strobe.value == 1


class TestResetSemantics:
    def test_reset_hooks_run_and_state_restored(self):
        top = Component("c")
        counter = top.reg("ctr", 8, 5)
        events = []

        @top.seq
        def _tick():
            counter.nxt = counter.value + 1

        @top.on_reset
        def _hook():
            events.append("reset")

        sim = Simulator(top)
        sim.step(3)
        assert counter.value == 8
        sim.reset()
        assert counter.value == 5
        assert events == ["reset"]

    def test_reset_drops_staged_writes(self):
        top = Component("c")
        r = top.reg("r", 8, 0)
        top.seq(lambda: None)
        sim = Simulator(top)
        r.nxt = 42
        sim.reset()
        sim.step()
        assert r.value == 0  # the staged 42 must not leak through reset

    def test_reset_restores_plain_signals(self):
        top = Component("c")
        s = top.signal("s", 8, reset=7)
        top.comb(lambda: None)
        sim = Simulator(top)
        s.force(99)
        sim.reset()
        assert s.value == 7


class TestPayloadRegs:
    def test_tuple_payloads_commit_atomically(self):
        top = Component("c")
        q = top.reg("q", None, reset=())

        @top.seq
        def _tick():
            q.nxt = q.nxt + (len(q.nxt),)

        sim = Simulator(top)
        sim.step(3)
        assert q.value == (0, 1, 2)

    def test_none_reset_payload(self):
        top = Component("c")
        r = top.reg("r", None, reset=None)
        top.seq(lambda: None)
        sim = Simulator(top)
        assert r.value is None
        r.nxt = {"k": 1}
        sim.step()
        assert r.value == {"k": 1}

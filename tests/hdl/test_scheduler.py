"""Unit tests for the event-driven settle scheduler.

Covers the discovery-pass contract (classification of tracked / always /
inert processes), read-set growth and the dynamic fallback, the quiescent
fast path, post-discovery combinational-loop detection, force/observer
interactions and the exhaustive reference mode.
"""

import pytest

from repro.hdl import (
    DYNAMIC_GROWTH_LIMIT,
    CombinationalLoopError,
    Component,
    Signal,
    SimulationError,
    Simulator,
)


class TwoLegMux(Component):
    """out = a if sel else b — reads are data-dependent (short circuit)."""

    def __init__(self):
        super().__init__("mux2")
        self.sel = self.reg("sel", 1, 0)
        self.a = self.reg("a", 8, 10)
        self.b = self.reg("b", 8, 20)
        self.out = self.signal("out", 8, 0)

        @self.comb
        def _mux():
            self.out.set(self.a.value if self.sel.value else self.b.value)

        self.seq(lambda: None)


class TestReadSetGrowth:
    def test_untaken_leg_discovered_on_first_use(self):
        """A mux leg read for the first time must immediately join the
        sensitivity set: changing only that leg afterwards re-runs the proc."""
        top = TwoLegMux()
        sim = Simulator(top)
        sim.settle()
        assert top.out.value == 20  # sel=0 leg
        top.sel.nxt = 1
        sim.step()
        sim.settle()
        assert top.out.value == 10
        # now change ONLY the newly discovered leg
        top.a.nxt = 77
        sim.step()
        sim.settle()
        assert top.out.value == 77

    def test_growth_past_limit_falls_back_to_dynamic(self):
        n = DYNAMIC_GROWTH_LIMIT + 6

        class WideMux(Component):
            def __init__(self):
                super().__init__("widemux")
                self.sel = self.reg("sel", 8, 0)
                self.ins = [self.reg(f"in{i}", 8, i + 100) for i in range(n)]
                self.out = self.signal("out", 8, 0)

                @self.comb
                def _mux():
                    self.out.set(self.ins[self.sel.value].value)

                @self.seq
                def _advance():
                    if self.sel.value < n - 1:
                        self.sel.nxt = self.sel.value + 1

        top = WideMux()
        sim = Simulator(top)
        sim.settle()
        for _ in range(n - 1):
            sim.step()
            sim.settle()
            # correctness must hold before, during and after the fallback
            assert top.out.value == top.ins[top.sel.value].value
        assert sim.kernel_stats.dynamic_fallbacks == 1
        # the fallback proc keeps tracking reality: poke the selected input
        top.ins[top.sel.value].nxt = 251
        sim.step()
        sim.settle()
        assert top.out.value == 251


class TestDiscoveryClassification:
    def test_inert_placeholder_dropped(self):
        class WithPlaceholder(Component):
            def __init__(self):
                super().__init__("ph")
                self.r = self.reg("r", 8, 0)
                self.out = self.signal("out", 8, 0)
                self.comb(lambda: None)  # no reads, no writes

                @self.comb
                def _drive():
                    self.out.set(self.r.value + 1)

                self.seq(lambda: None)

        sim = Simulator(WithPlaceholder())
        sim.settle()
        assert sim.kernel_stats.tracked_procs == 1
        assert sim.kernel_stats.always_procs == 0

    def test_hidden_input_proc_forced_always(self):
        class Hidden(Component):
            def __init__(self):
                super().__init__("hidden")
                self.state = [5]
                self.out = self.signal("out", 8, 0)

                @self.comb
                def _drive():  # writes a signal but reads only Python state
                    self.out.set(self.state[0])

                self.seq(lambda: None)

        top = Hidden()
        sim = Simulator(top)
        sim.settle()
        assert sim.kernel_stats.always_procs == 1
        top.state[0] = 9
        sim.settle()
        assert top.out.value == 9

    def test_explicit_always_annotation(self):
        class Annotated(Component):
            def __init__(self):
                super().__init__("anno")
                self.state = [1]
                self.gate = self.reg("gate", 1, 1)
                self.out = self.signal("out", 8, 0)

                # reads a signal AND hidden state: looks static to discovery,
                # so the author must pin it
                @self.comb(always=True)
                def _drive():
                    self.out.set(self.state[0] if self.gate.value else 0)

                self.seq(lambda: None)

        top = Annotated()
        sim = Simulator(top)
        sim.settle()
        assert sim.kernel_stats.always_procs == 1
        top.state[0] = 42  # invisible to signal tracking
        sim.settle()
        assert top.out.value == 42

    def test_unmanaged_signal_read_forces_always(self):
        free = Signal("free", 8, 3)

        class ReadsForeign(Component):
            def __init__(self):
                super().__init__("foreign")
                self.out = self.signal("out", 8, 0)

                @self.comb
                def _drive():
                    self.out.set(free.value * 2)

                self.seq(lambda: None)

        top = ReadsForeign()
        sim = Simulator(top)
        sim.settle()
        assert sim.kernel_stats.always_procs == 1
        free.set(11)  # no change notification reaches this simulator
        sim.settle()
        assert top.out.value == 22


class Quiesces(Component):
    """Counts to 3 then holds perfectly still."""

    def __init__(self):
        super().__init__("quiet")
        self.count = self.reg("count", 8, 0)
        self.mirror = self.signal("mirror", 8, 0)

        @self.comb
        def _drive():
            self.mirror.set(self.count.value)

        @self.seq
        def _tick():
            if self.count.value < 3:
                self.count.nxt = self.count.value + 1


class TestQuiescentFastPath:
    def test_settles_become_free_once_stable(self):
        sim = Simulator(Quiesces())
        # 3 counting cycles + 1 more so the final count commit has been seen
        sim.step(4)
        before = sim.kernel_stats.quiescent_settles
        acts = sim.kernel_stats.activations
        sim.step(10)
        assert sim.kernel_stats.quiescent_settles == before + 10
        assert sim.kernel_stats.activations == acts  # nothing re-ran

    def test_post_step_settle_is_noop(self):
        """The historical run_until double settle costs nothing now."""
        top = Quiesces()
        sim = Simulator(top)
        assert sim.run_until(lambda: top.count.value == 3) == 3
        assert sim.settle() == 0

    def test_force_wakes_fanout(self):
        class Follower(Component):
            def __init__(self):
                super().__init__("fol")
                self.inp = self.signal("inp", 8, 0)
                self.out = self.signal("out", 8, 0)

                @self.comb
                def _drive():
                    self.out.set(self.inp.value + 1)

                self.seq(lambda: None)

        top = Follower()
        sim = Simulator(top)
        sim.settle()
        top.inp.force(41)
        sim.settle()
        assert top.out.value == 42


class LatentLoop(Component):
    """Stable at reset; enabling ``en`` exposes a zero-delay oscillation."""

    def __init__(self):
        super().__init__("latent")
        self.en = self.reg("en", 1, 0)
        self.x = self.signal("x", 1, 0)

        @self.comb
        def _loop():
            if self.en.value:
                self.x.set(1 - self.x.value)
            else:
                self.x.set(0)

        self.seq(lambda: None)


class TestCombinationalLoop:
    def test_loop_after_discovery_is_diagnosed(self):
        top = LatentLoop()
        sim = Simulator(top)
        sim.settle()  # discovery passes: en=0, perfectly stable
        top.en.nxt = 1
        with pytest.raises(CombinationalLoopError) as err:
            sim.step(2)  # edge commits en, the following settle oscillates
        assert "latent.x" in str(err.value)

    def test_simulator_recoverable_after_loop(self):
        top = LatentLoop()
        sim = Simulator(top)
        sim.settle()
        top.en.nxt = 1
        with pytest.raises(CombinationalLoopError):
            sim.step(2)
        sim.reset()  # en back to 0 → stable again (forces rediscovery)
        sim.step(3)
        assert top.x.value == 0


class TestObservers:
    def test_remove_observer_restores_fast_path(self):
        sim = Simulator(Quiesces())
        seen = []
        sim.add_observer(seen.append)
        sim.step(2)
        sim.remove_observer(seen.append)
        sim.step(2)
        assert seen == [1, 2]
        assert sim._observers == []


class TestSchedulerModes:
    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(Quiesces(), scheduler="magic")

    def test_exhaustive_reference_mode(self):
        top = Quiesces()
        sim = Simulator(top, scheduler="exhaustive")
        sim.step(5)
        assert top.count.value == 3
        assert sim.kernel_stats.exhaustive_passes > 0
        assert sim.kernel_stats.discovery_passes == 0

    def test_run_until_cycle_counts_match_reference(self):
        """Satellite regression: the event kernel must not change the cycles
        run_until consumes (the double settle is now a no-op, not a skip)."""
        results = {}
        for scheduler in ("event", "exhaustive"):
            top = Quiesces()
            sim = Simulator(top, scheduler=scheduler)
            used = sim.run_until(lambda: top.count.value == 3)
            results[scheduler] = (used, sim.now, top.count.value)
        assert results["event"] == results["exhaustive"]

    def test_reset_triggers_rediscovery(self):
        sim = Simulator(TwoLegMux())
        sim.settle()
        d0 = sim.kernel_stats.discovery_passes
        sim.reset()
        assert sim.kernel_stats.discovery_passes > d0

"""Unit tests for signals, registers and the change tracker."""

import pytest

from repro.hdl import Reg, Signal, WidthError, mask_for
from repro.hdl.signal import CHANGES


class TestSignal:
    def test_initial_value_is_reset(self):
        s = Signal("s", 8, reset=7)
        assert s.value == 7
        assert s.reset == 7

    def test_set_masks_to_width(self):
        s = Signal("s", 4)
        s.set(0x1F)
        assert s.value == 0xF

    def test_set_reports_change(self):
        s = Signal("s", 8)
        assert s.set(3) is True
        assert s.set(3) is False
        assert s.set(4) is True

    def test_set_marks_change_tracker(self):
        s = Signal("s", 8)
        CHANGES.dirty = False
        s.set(9)
        assert CHANGES.dirty is True
        CHANGES.dirty = False
        s.set(9)  # no change
        assert CHANGES.dirty is False

    def test_negative_values_wrap(self):
        s = Signal("s", 8)
        s.set(-1)
        assert s.value == 0xFF

    def test_reset_value_masked(self):
        s = Signal("s", 4, reset=0x2F)
        assert s.value == 0xF

    def test_zero_width_rejected(self):
        with pytest.raises(WidthError):
            Signal("s", 0)

    def test_negative_width_rejected(self):
        with pytest.raises(WidthError):
            Signal("s", -3)

    def test_payload_signal_accepts_objects(self):
        s = Signal("s", None, reset=None)
        assert s.value is None
        s.set(("a", 1))
        assert s.value == ("a", 1)

    def test_payload_equality_suppresses_change(self):
        s = Signal("s", None, reset=None)
        s.set((1, 2))
        assert s.set((1, 2)) is False

    def test_bit_and_bits_accessors(self):
        s = Signal("s", 8)
        s.set(0b1011_0110)
        assert s.bit(0) == 0
        assert s.bit(1) == 1
        assert s.bit(7) == 1
        assert s.bits(5, 2) == 0b1101

    def test_bool_and_index(self):
        s = Signal("s", 4)
        assert not s
        s.set(5)
        assert s
        assert int(s) == 5

    def test_force_bypasses_change_tracking(self):
        s = Signal("s", 8)
        CHANGES.dirty = False
        s.force(42)
        assert s.value == 42
        assert CHANGES.dirty is False


class TestReg:
    def test_staged_value_not_visible_until_commit(self):
        r = Reg("r", 8)
        r.nxt = 5
        assert r.value == 0
        assert r.commit() is True
        assert r.value == 5

    def test_commit_without_stage_is_noop(self):
        r = Reg("r", 8, reset=3)
        assert r.commit() is False
        assert r.value == 3

    def test_nxt_reads_staged_else_current(self):
        r = Reg("r", 8, reset=1)
        assert r.nxt == 1
        r.nxt = 9
        assert r.nxt == 9
        assert r.value == 1

    def test_nxt_accumulation_read_modify_write(self):
        # the lock-manager pattern: OR into nxt repeatedly within one edge
        r = Reg("r", 8)
        r.nxt = r.nxt | 0b001
        r.nxt = r.nxt | 0b100
        r.commit()
        assert r.value == 0b101

    def test_staged_value_masked(self):
        r = Reg("r", 4)
        r.nxt = 0x3F
        r.commit()
        assert r.value == 0xF

    def test_reset_state_drops_staged(self):
        r = Reg("r", 8, reset=2)
        r.nxt = 9
        r.reset_state()
        assert r.value == 2
        assert r.commit() is False

    def test_commit_returns_false_when_same(self):
        r = Reg("r", 8, reset=4)
        r.nxt = 4
        assert r.commit() is False

    def test_payload_reg_holds_tuples(self):
        r = Reg("r", None, reset=())
        r.nxt = (1, 2)
        r.commit()
        assert r.value == (1, 2)


def test_mask_for():
    assert mask_for(1) == 1
    assert mask_for(8) == 0xFF
    assert mask_for(32) == 0xFFFF_FFFF

"""Unit tests for SyncRam and Rom."""

import pytest

from repro.hdl import Component, Rom, Simulator, SimulationError, SyncRam


class RamHarness(Component):
    def __init__(self, words=8, width=16):
        super().__init__("rh")
        self.ram = SyncRam("ram", words, width, parent=self)
        self.write_plan: list[tuple[int, int]] = []  # one per cycle

        @self.seq
        def _tick():
            if self.write_plan:
                addr, value = self.write_plan.pop(0)
                self.ram.write(addr, value)


class TestSyncRam:
    def test_write_visible_next_cycle(self):
        h = RamHarness()
        sim = Simulator(h)
        h.write_plan = [(2, 99)]
        sim.settle()
        assert h.ram.read(2) == 0  # old data during the write cycle
        sim.step()
        assert h.ram.read(2) == 99

    def test_values_masked_to_width(self):
        h = RamHarness(width=8)
        sim = Simulator(h)
        h.write_plan = [(0, 0x1FF)]
        sim.step()
        assert h.ram.read(0) == 0xFF

    def test_sequential_writes(self):
        h = RamHarness()
        sim = Simulator(h)
        h.write_plan = [(0, 1), (1, 2), (2, 3)]
        sim.step(3)
        assert h.ram.dump()[:3] == (1, 2, 3)

    def test_read_out_of_range(self):
        h = RamHarness(words=4)
        Simulator(h)
        with pytest.raises(SimulationError):
            h.ram.read(4)

    def test_write_out_of_range(self):
        h = RamHarness(words=4)
        Simulator(h)
        with pytest.raises(SimulationError):
            h.ram.write(-1, 0)

    def test_load_backdoor(self):
        h = RamHarness()
        Simulator(h)
        h.ram.load([7, 8, 9])
        assert h.ram.dump()[:3] == (7, 8, 9)

    def test_load_too_long_rejected(self):
        h = RamHarness(words=2)
        Simulator(h)
        with pytest.raises(SimulationError):
            h.ram.load([1, 2, 3])

    def test_needs_at_least_one_word(self):
        with pytest.raises(ValueError):
            SyncRam("bad", 0, 8)

    def test_two_same_cycle_writes_different_addresses_both_land(self):
        # The kernel supports it (order-independent .nxt accumulation);
        # architecturally the write arbiter is what restricts data writes.
        class TwoWriter(Component):
            def __init__(self):
                super().__init__("tw")
                self.ram = SyncRam("ram", 4, 8, parent=self)
                self.go = False

                @self.seq
                def _tick():
                    if self.go:
                        self.ram.write(0, 10)
                        self.ram.write(1, 20)

        h = TwoWriter()
        sim = Simulator(h)
        h.go = True
        sim.step()
        assert h.ram.dump()[:2] == (10, 20)


class TestRom:
    def test_read_contents(self):
        rom = Rom("rom", ["a", "b", "c"])
        Simulator(rom)
        assert rom.read(0) == "a"
        assert rom.read(2) == "c"
        assert len(rom) == 3

    def test_out_of_range(self):
        rom = Rom("rom", [1])
        with pytest.raises(SimulationError):
            rom.read(1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Rom("rom", [])

"""Coverage for small helpers not exercised elsewhere."""

from repro.hdl import Component, PipeStage, Simulator, Stream


class TestPipeStageTransform:
    def test_transform_applies_on_output(self):
        top = Component("t")
        st = PipeStage("s", parent=top, width=16, transform=lambda x: x * 2)
        received = []

        @top.comb
        def _drive():
            st.inp.valid.set(1)
            st.inp.payload.set(21)
            st.out.ready.set(1)

        @top.seq
        def _tick():
            if st.out.fires():
                received.append(st.out.payload.value)

        sim = Simulator(top)
        sim.step(3)
        assert received and all(v == 42 for v in received)

    def test_stored_payload_untouched(self):
        # the transform models the stage's combinational logic: the register
        # holds the raw input, the output port shows the transformed value
        top = Component("t")
        st = PipeStage("s", parent=top, width=16, transform=lambda x: x + 1)

        @top.comb
        def _drive():
            st.inp.valid.set(1)
            st.inp.payload.set(7)
            st.out.ready.set(0)

        top.seq(lambda: None)
        sim = Simulator(top)
        sim.step(2)
        sim.settle()
        assert st._data.value == 7
        assert st.out.payload.value == 8


class TestStreamHelpers:
    def test_drive_helper(self):
        top = Component("t")
        s = Stream(top, "s", 8)
        top.comb(lambda: s.drive(True, 5))
        top.seq(lambda: None)
        sim = Simulator(top)
        sim.settle()
        assert s.valid.value == 1 and s.payload.value == 5

    def test_drive_without_payload(self):
        top = Component("t")
        s = Stream(top, "s", 8)
        top.comb(lambda: s.drive(False))
        top.seq(lambda: None)
        Simulator(top).settle()
        assert s.valid.value == 0

    def test_fires_requires_both(self):
        top = Component("t")
        s = Stream(top, "s", 8)
        top.comb(lambda: None)
        top.seq(lambda: None)
        Simulator(top).settle()
        s.valid.force(1)
        s.ready.force(0)
        assert not s.fires()
        s.ready.force(1)
        assert s.fires()

"""Unit tests for the component hierarchy."""

import pytest

from repro.hdl import Component, ElaborationError


def test_hierarchical_paths():
    top = Component("top")
    mid = Component("mid", parent=top)
    leaf = Component("leaf", parent=mid)
    assert leaf.path == "top.mid.leaf"
    assert top.path == "top"


def test_signal_names_carry_path():
    top = Component("top")
    sub = Component("sub", parent=top)
    s = sub.signal("data", 8)
    assert s.name == "top.sub.data"
    assert s.owner is sub


def test_walk_depth_first():
    top = Component("t")
    a = Component("a", parent=top)
    b = Component("b", parent=top)
    a1 = Component("a1", parent=a)
    assert [c.name for c in top.walk()] == ["t", "a", "a1", "b"]


def test_all_signals_spans_tree():
    top = Component("t")
    top.signal("x")
    sub = Component("s", parent=top)
    sub.reg("y", 4)
    names = [s.name for s in top.all_signals()]
    assert names == ["t.x", "t.s.y"]


def test_child_adoption():
    top = Component("t")
    orphan = Component("o")
    top.child(orphan)
    assert orphan.parent is top
    assert orphan in top.children


def test_child_cannot_have_two_parents():
    t1, t2 = Component("t1"), Component("t2")
    c = Component("c", parent=t1)
    with pytest.raises(ElaborationError):
        t2.child(c)


def test_find_by_path():
    top = Component("t")
    a = Component("a", parent=top)
    b = Component("b", parent=a)
    assert top.find("a.b") is b
    with pytest.raises(KeyError):
        top.find("a.missing")


def test_process_registration_decorators():
    c = Component("c")

    @c.comb
    def f1():
        pass

    @c.seq
    def f2():
        pass

    @c.on_reset
    def f3():
        pass

    assert c.comb_procs == [f1]
    assert c.seq_procs == [f2]
    assert c.reset_hooks == [f3]

"""Unit tests for the compiled (codegen) simulation backend.

Covers backend selection/dispatch, the front end's three-way
classification (translated / guarded / unguarded fallback), guard
dormancy under external forces, sequential dormancy semantics, loop
diagnostics and recovery, reset, the vectorized cell-array executors,
and the codegen counters surfaced through ``KernelStats``.
"""

import pytest

from repro.hdl import (
    CombinationalLoopError,
    Component,
    SimulationError,
    Simulator,
)
from repro.hdl.compile.engine import CompiledSimulator


class AdderChain(Component):
    """Fully provable design: comb chain into one accumulating register."""

    def __init__(self):
        super().__init__("chain")
        self.a = self.signal("a", 8, 0)
        self.b = self.signal("b", 8, 0)
        self.s1 = self.signal("s1", 8, 0)
        self.s2 = self.signal("s2", 8, 0)
        self.acc = self.reg("acc", 8, 0)

        @self.comb
        def _sum():
            self.s1.set(self.a.value + self.b.value)

        @self.comb
        def _shift():
            self.s2.set((self.s1.value << 1) | self.s1.bit(7))

        @self.seq
        def _accumulate():
            self.acc.nxt = self.acc.value + self.s2.value


class HiddenCallback(Component):
    """The comb proc calls an opaque Python callback: unguarded fallback."""

    def __init__(self, fn):
        super().__init__("cb")
        self.x = self.signal("x", 8, 0)
        self.y = self.signal("y", 8, 0)
        self._fn = fn

        @self.comb
        def _apply():
            self.y.set(self._fn(self.x.value))

        self.seq(lambda: None)


class MutableHidden(Component):
    """Comb proc reads a hidden *mutable* attribute: must not be guarded."""

    def __init__(self):
        super().__init__("mut")
        self.out = self.signal("out", 8, 0)
        self.table = [5]

        @self.comb(always=True)
        def _lookup():
            self.out.set(self.table[0])

        self.seq(lambda: None)


def _pair(make):
    """(event sim, compiled sim) over two fresh instances of a design."""
    t_event, t_comp = make(), make()
    return (t_event, Simulator(t_event)), (t_comp, Simulator(t_comp, backend="compiled"))


class TestBackendSelection:
    def test_compiled_dispatches_subclass(self):
        sim = Simulator(AdderChain(), backend="compiled")
        assert isinstance(sim, CompiledSimulator)
        assert sim.backend == "compiled"

    def test_aliases_and_unknown_backend(self):
        assert Simulator(AdderChain(), backend="event").backend == "event"
        assert Simulator(AdderChain(), backend="exhaustive").scheduler == "exhaustive"
        with pytest.raises(SimulationError):
            Simulator(AdderChain(), backend="tpu")

    def test_compiled_counters_populated(self):
        sim = Simulator(AdderChain(), backend="compiled")
        stats = sim.kernel_stats.as_dict()
        assert stats["compiled_procs"] >= 3  # two comb + one seq specialized
        assert stats["fallback_procs"] == 0
        assert stats["compile_ms"] > 0
        for key in ("compiled_procs", "fallback_procs", "vectorized_cells",
                    "compile_ms"):
            assert key in stats

    def test_generated_source_exposed(self):
        sim = Simulator(AdderChain(), backend="compiled")
        src = sim.generated_source
        assert "_sweep" in src and "_edge" in src and "_scan_seq" in src


class TestTranslatedExecution:
    def test_matches_event_cycle_by_cycle(self):
        (te, se), (tc, sc) = _pair(AdderChain)
        for sim in (se, sc):
            sim.reset()
        for cyc in range(40):
            for top, sim in ((te, se), (tc, sc)):
                top.a.set(cyc & 0xFF)
                top.b.set((cyc * 7) & 0xFF)
                sim.step()
            assert te.acc.value == tc.acc.value
            assert te.s2.value == tc.s2.value
        assert se.now == sc.now

    def test_quiescent_settle_fast_path(self):
        top = AdderChain()
        sim = Simulator(top, backend="compiled")
        sim.reset()
        top.a.set(3)
        sim.settle()
        before = sim.kernel_stats.quiescent_settles
        sim.settle()  # nothing changed: must take the fast path
        assert sim.kernel_stats.quiescent_settles == before + 1

    def test_force_reaches_compiled_guards(self):
        top = AdderChain()
        sim = Simulator(top, backend="compiled")
        sim.reset()
        top.a.force(9)
        sim.settle()
        assert top.s1.value == 9


class TestFallbacks:
    def test_opaque_callback_still_correct(self):
        # eval keeps the callback's source out of inspect's reach, so the
        # front end genuinely cannot see through the call.
        fn = eval("lambda v: (v * 3 + 1) & 0xFF")
        make = lambda: HiddenCallback(fn)
        (te, se), (tc, sc) = _pair(make)
        assert sc.kernel_stats.fallback_procs >= 1
        for sim in (se, sc):
            sim.reset()
        for v in (0, 1, 7, 200, 255):
            for top, sim in ((te, se), (tc, sc)):
                top.x.set(v)
                sim.step()
            assert te.y.value == tc.y.value

    def test_mutable_hidden_state_reruns_every_sweep(self):
        top = MutableHidden()
        sim = Simulator(top, backend="compiled")
        sim.reset()
        assert top.out.value == 5
        # Mutation is invisible to change notification; only an unguarded
        # fallback (re-run every settle sweep) can observe it.
        top.table[0] = 42
        sim.step()
        assert top.out.value == 42

    def test_dynamic_pure_seq_matches_event(self):
        class LateBound(Component):
            """Pure seq with a data-dependent read set (mux on a reg)."""

            def __init__(self):
                super().__init__("late")
                self.sel = self.reg("sel", 1, 0)
                self.a = self.reg("a", 8, 10)
                self.b = self.reg("b", 8, 20)
                self.out = self.reg("out", 8, 0)

                @self.seq(pure=True)
                def _pick():
                    src = self.a if self.sel.value else self.b
                    self.out.nxt = src.value

                self.comb(lambda: None)

        (te, se), (tc, sc) = _pair(LateBound)
        for sim in (se, sc):
            sim.reset()
        script = [("sel", 1), ("a", 33), ("b", 44), ("sel", 0), ("b", 55)]
        for name, v in script:
            for top, sim in ((te, se), (tc, sc)):
                getattr(top, name).force(v)
                sim.step(2)
            assert te.out.value == tc.out.value


class TestLoopsAndReset:
    def test_comb_loop_detected_and_recoverable(self):
        class Osc(Component):
            def __init__(self):
                super().__init__("osc")
                self.x = self.signal("x", 1, 0)
                self.en = self.signal("en", 1, 1)

                @self.comb
                def _not():
                    if self.en.value:
                        self.x.set(0 if self.x.value else 1)

                self.seq(lambda: None)

        top = Osc()
        sim = Simulator(top, backend="compiled")
        with pytest.raises(CombinationalLoopError) as exc:
            sim.reset()
        assert "x" in str(exc.value)
        top.en.force(0)
        sim.settle()  # the engine must stay usable after the diagnostic
        assert sim.settle() == 0

    def test_reset_restores_power_on_state(self):
        top = AdderChain()
        sim = Simulator(top, backend="compiled")
        sim.reset()
        top.a.set(5)
        sim.step(3)
        assert top.acc.value != 0
        sim.reset()
        assert top.acc.value == 0
        assert top.s1.value == 0


class TestVectorizedCellArrays:
    def test_executor_absorbs_both_array_kinds(self):
        from repro.xisort import XiSortCore

        for kind in ("vector", "structural"):
            sim = Simulator(
                XiSortCore("xi", n_cells=8, array_kind=kind), backend="compiled"
            )
            assert sim.kernel_stats.vectorized_cells == 8

    def test_structural_states_redirect_through_executor(self):
        from repro.xisort import DirectXiSortMachine

        m = DirectXiSortMachine(8, array_kind="structural", backend="compiled")
        m.load([30, 10, 20])
        states = m.core.array.states()
        # LOAD shifts values in at cell 0; matches the interpreted backends.
        assert [s.data for s in states[:3]] == [20, 10, 30]

    def test_sort_identical_across_backends_and_kinds(self):
        from repro.xisort import DirectXiSortMachine

        values = [44, 7, 99, 23, 61, 5, 80, 12]
        outcomes = set()
        for backend in (None, "compiled"):
            for kind in ("vector", "structural"):
                m = DirectXiSortMachine(8, array_kind=kind, backend=backend)
                outcomes.add((tuple(m.sort(values)), m.cycles))
        assert len(outcomes) == 1
        assert list(next(iter(outcomes))[0]) == sorted(values)

    def test_ten_thousand_cells_elaborate_and_run(self):
        from repro.xisort import DirectXiSortMachine

        m = DirectXiSortMachine(10_000, array_kind="structural", backend="compiled")
        assert m.sim.kernel_stats.vectorized_cells == 10_000
        values = [5, 3, 9, 1]
        assert m.sort(values) == sorted(values)


class TestSystemIntegration:
    def test_build_system_backend_compiled(self):
        from repro.system import build_system

        system = build_system(backend="compiled", lint="off")
        assert system.sim.backend == "compiled"

    def test_counters_for_surfaces_codegen_stats(self):
        from repro.analysis import counters_for
        from repro.system import build_system

        system = build_system(backend="compiled", lint="off")
        report = counters_for(system)
        assert report.kernel["compiled_procs"] > 0
        assert "compiled procs" in report.kernel_table()

"""Unit tests for streams, pipe stages and the round-robin arbiter."""

import pytest

from repro.hdl import Component, PipeStage, RoundRobinArbiter, Simulator, priority_grant


class StreamHarness(Component):
    """Producer → PipeStage → consumer with scripted readiness."""

    def __init__(self, n_stages=1):
        super().__init__("harness")
        self.stages = []
        prev = None
        for i in range(n_stages):
            st = PipeStage(f"st{i}", parent=self, width=8)
            if prev is not None:
                st.inp.connect_from(self, prev.out)
            self.stages.append(st)
            prev = st
        self.first = self.stages[0]
        self.last = self.stages[-1]
        self.to_send: list[int] = []
        self.received: list[int] = []
        self.consumer_ready = True

        @self.comb(always=True)
        def _drive():
            self.first.inp.valid.set(1 if self.to_send else 0)
            if self.to_send:
                self.first.inp.payload.set(self.to_send[0])
            self.last.out.ready.set(1 if self.consumer_ready else 0)

        @self.seq
        def _tick():
            if self.first.inp.fires():
                self.to_send.pop(0)
            if self.last.out.fires():
                self.received.append(self.last.out.payload.value)


class TestPipeStage:
    def test_single_stage_transfers_data_in_order(self):
        h = StreamHarness(1)
        sim = Simulator(h)
        h.to_send = [3, 1, 4, 1, 5]
        sim.step(10)
        assert h.received == [3, 1, 4, 1, 5]

    def test_deep_pipeline_preserves_order(self):
        h = StreamHarness(4)
        sim = Simulator(h)
        h.to_send = list(range(10))
        sim.step(30)
        assert h.received == list(range(10))

    def test_throughput_is_one_per_cycle_when_unblocked(self):
        h = StreamHarness(2)
        sim = Simulator(h)
        h.to_send = list(range(16))
        # latency = pipeline depth, then 1/cycle
        sim.step(16 + 2 + 1)
        assert len(h.received) == 16

    def test_backpressure_stalls_without_loss(self):
        h = StreamHarness(2)
        sim = Simulator(h)
        h.to_send = list(range(6))
        h.consumer_ready = False
        sim.step(10)
        assert h.received == []
        # the pipeline is clogged: both stages hold data
        assert all(st.occupied for st in h.stages)
        h.consumer_ready = True
        sim.step(10)
        assert h.received == list(range(6))

    def test_stall_is_local_not_global(self):
        # while the consumer is blocked, the upstream stage can still accept
        h = StreamHarness(3)
        sim = Simulator(h)
        h.consumer_ready = False
        h.to_send = [1, 2, 3]
        sim.step(5)
        # all three stages filled despite a blocked consumer
        assert [st.occupied for st in h.stages] == [True, True, True]


class ArbiterHarness(Component):
    def __init__(self, n=4):
        super().__init__("ah")
        self.arb = RoundRobinArbiter("arb", n, parent=self)
        self.req_pattern = [0] * n
        self.prio = False
        self.grants: list[int] = []

        @self.comb(always=True)
        def _drive():
            for i, r in enumerate(self.req_pattern):
                self.arb.requests[i].set(r)
            self.arb.priority_request.set(1 if self.prio else 0)

        @self.seq
        def _record():
            if self.arb.grant_valid.value:
                self.grants.append(self.arb.grant.value)
            elif self.arb.priority_grant.value:
                self.grants.append(-1)


class TestRoundRobinArbiter:
    def test_single_requester_granted(self):
        h = ArbiterHarness()
        sim = Simulator(h)
        h.req_pattern = [0, 1, 0, 0]
        sim.step(3)
        assert h.grants == [1, 1, 1]

    def test_rotation_is_fair(self):
        h = ArbiterHarness(3)
        sim = Simulator(h)
        h.req_pattern = [1, 1, 1]
        sim.step(9)
        counts = {i: h.grants.count(i) for i in range(3)}
        assert counts == {0: 3, 1: 3, 2: 3}
        # strict rotation
        assert h.grants[:6] == [0, 1, 2, 0, 1, 2]

    def test_priority_preempts_everything(self):
        h = ArbiterHarness(2)
        sim = Simulator(h)
        h.req_pattern = [1, 1]
        h.prio = True
        sim.step(4)
        assert set(h.grants) == {-1}

    def test_no_requests_no_grant(self):
        h = ArbiterHarness(2)
        sim = Simulator(h)
        sim.step(3)
        assert h.grants == []

    def test_needs_at_least_one_requester(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter("bad", 0)


def test_priority_grant_helper():
    assert priority_grant([0, 0, 1, 1]) == 2
    assert priority_grant([1]) == 0
    assert priority_grant([0, 0]) == -1
    assert priority_grant([]) == -1

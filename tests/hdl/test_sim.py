"""Unit tests for the two-phase simulator: settle, edge, reset, run_until."""

import pytest

from repro.hdl import (
    CombinationalLoopError,
    Component,
    SimulationError,
    Simulator,
)


class Counter(Component):
    """Minimal clocked design: a counter with a combinational double."""

    def __init__(self):
        super().__init__("counter")
        self.count = self.reg("count", 8, 0)
        self.double = self.signal("double", 9, 0)

        @self.comb
        def _comb():
            self.double.set(self.count.value * 2)

        @self.seq
        def _seq():
            self.count.nxt = self.count.value + 1


class TestBasicStepping:
    def test_step_advances_time(self):
        sim = Simulator(Counter())
        sim.step(5)
        assert sim.now == 5

    def test_register_updates_per_cycle(self):
        top = Counter()
        sim = Simulator(top)
        sim.step(3)
        assert top.count.value == 3

    def test_comb_follows_registers(self):
        top = Counter()
        sim = Simulator(top)
        sim.step(4)
        sim.settle()
        assert top.double.value == 8

    def test_reset_restores_state(self):
        top = Counter()
        sim = Simulator(top)
        sim.step(7)
        sim.reset()
        assert top.count.value == 0
        assert top.double.value == 0

    def test_empty_design_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(Component("empty"))


class ChainedComb(Component):
    """A 5-deep combinational chain: settle needs multiple passes."""

    def __init__(self, depth=5):
        super().__init__("chain")
        self.inp = self.reg("inp", 8, 1)
        self.links = [self.signal(f"s{i}", 8, 0) for i in range(depth)]
        # register processes in *reverse* dependency order to force
        # several settle iterations
        for i in reversed(range(depth)):
            def make(i=i):
                def proc():
                    src = self.inp.value if i == 0 else self.links[i - 1].value
                    self.links[i].set(src + 1)
                return proc
            self.comb(make())
        self.seq(lambda: None)


def test_settle_reaches_fixpoint_across_passes():
    top = ChainedComb(depth=6)
    sim = Simulator(top)
    iterations = sim.settle()
    assert iterations > 1  # reverse order requires multiple passes
    assert top.links[-1].value == 1 + 6


class Oscillator(Component):
    """A genuine zero-delay loop: a ^= 1 every pass."""

    def __init__(self):
        super().__init__("osc")
        self.a = self.signal("a", 1, 0)

        @self.comb
        def _osc():
            self.a.set(1 - self.a.value)


def test_combinational_loop_detected():
    sim = Simulator(Oscillator())
    with pytest.raises(CombinationalLoopError) as err:
        sim.settle()
    assert "osc.a" in str(err.value)


class TestRunUntil:
    def test_run_until_condition(self):
        top = Counter()
        sim = Simulator(top)
        used = sim.run_until(lambda: top.count.value == 10)
        assert top.count.value == 10
        assert used == 10

    def test_run_until_timeout(self):
        top = Counter()
        sim = Simulator(top)
        with pytest.raises(SimulationError):
            sim.run_until(lambda: False, max_cycles=20)

    def test_run_until_already_true_consumes_nothing(self):
        top = Counter()
        sim = Simulator(top)
        assert sim.run_until(lambda: True) == 0


def test_observers_called_each_cycle():
    top = Counter()
    sim = Simulator(top)
    seen = []
    sim.add_observer(seen.append)
    sim.step(3)
    assert seen == [1, 2, 3]


def test_process_counts():
    sim = Simulator(Counter())
    comb, seq = sim.process_counts
    assert comb == 1 and seq == 1


class TwoPhaseRace(Component):
    """Two registers swapping values — atomic commit must prevent races."""

    def __init__(self):
        super().__init__("swap")
        self.a = self.reg("a", 8, 1)
        self.b = self.reg("b", 8, 2)

        @self.seq
        def _swap():
            self.a.nxt = self.b.value
            self.b.nxt = self.a.value


def test_register_swap_is_atomic():
    top = TwoPhaseRace()
    sim = Simulator(top)
    sim.step()
    assert (top.a.value, top.b.value) == (2, 1)
    sim.step()
    assert (top.a.value, top.b.value) == (1, 2)

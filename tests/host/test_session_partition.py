"""Session register partitioning and multi-session sharing."""

import pytest

from repro.config import FrameworkConfig
from repro.host import HostCpuDriver, OutOfRegisters, Session
from repro.isa import ArithOp
from repro.system import build_multihost_system, build_system


class TestPartitionedSessions:
    def test_allocation_confined_to_range(self):
        system = build_system(FrameworkConfig(n_regs=16))
        s = Session(system, reg_range=range(8, 16))
        regs = s.alloc_many(8)
        assert all(8 <= r < 16 for r in regs)
        with pytest.raises(OutOfRegisters):
            s.alloc()

    def test_two_sessions_share_one_system(self):
        system = build_system(FrameworkConfig(n_regs=16))
        lo = Session(system, reg_range=range(0, 8), flag_range=range(1, 4))
        hi = Session(system, reg_range=range(8, 16), flag_range=range(4, 8))
        a = lo.put(10)
        b = hi.put(20)
        assert a < 8 <= b
        assert lo.read(a) == 10
        assert hi.read(b) == 20
        # interleaved computation with disjoint registers and flags
        ra = lo.arith(ArithOp.ADD, a, a)
        rb = hi.arith(ArithOp.ADD, b, b)
        assert lo.read(ra) == 20
        assert hi.read(rb) == 40

    def test_out_of_file_range_rejected(self):
        system = build_system(FrameworkConfig(n_regs=8))
        with pytest.raises(ValueError):
            Session(system, reg_range=range(4, 12))

    def test_flag_range_respected(self):
        system = build_system()
        s = Session(system, flag_range=range(2, 4))
        flags = [s.alloc_flag(), s.alloc_flag()]
        assert set(flags) == {2, 3}
        with pytest.raises(OutOfRegisters):
            s.alloc_flag()


class TestSessionsOverMultiHost:
    def test_one_session_per_cpu(self):
        """The full Fig. 1.1 picture: per-CPU sessions on shared hardware."""
        system = build_multihost_system(FrameworkConfig(n_regs=16), n_hosts=2)
        s0 = Session(system, reg_range=range(0, 8), flag_range=range(1, 4),
                     driver=HostCpuDriver(system, 0))
        s1 = Session(system, reg_range=range(8, 16), flag_range=range(4, 8),
                     driver=HostCpuDriver(system, 1))
        assert s0.compute(ArithOp.ADD, 20, 22) == 42
        assert s1.compute(ArithOp.SUB, 100, 58) == 42
        # interleaved wide arithmetic on both CPUs
        a0 = s0.write_wide(0xFFFF_FFFF_FFFF, 2)
        a1 = s1.write_wide(0x1111_2222_3333, 2)
        b0 = s0.write_wide(1, 2)
        b1 = s1.write_wide(0x0F0F, 2)
        out0, _ = s0.add_wide(a0, b0)
        out1, _ = s1.add_wide(a1, b1)
        assert s0.read_wide(out0) == 0x1_0000_0000_0000
        assert s1.read_wide(out1) == 0x1111_2222_4242

"""Unit tests for the message-level driver."""

import pytest

from repro.hdl.errors import SimulationError
from repro.host import CoprocessorDriver
from repro.isa import instructions as ins
from repro.messages import DataRecord, Halted
from repro.system import build_system


@pytest.fixture
def driver():
    return CoprocessorDriver(build_system())


class TestDriver:
    def test_cycles_track_simulator(self, driver):
        before = driver.cycles
        driver.pump(5)
        assert driver.cycles == before + 5

    def test_wait_for_pops_in_order(self, driver):
        driver.write_reg(1, 10)
        driver.execute(ins.get(1, tag=1))
        driver.execute(ins.get(1, tag=2))
        first = driver.wait_for(1)[0]
        second = driver.wait_for(1)[0]
        assert (first.tag, second.tag) == (1, 2)

    def test_wait_for_timeout(self, driver):
        with pytest.raises(SimulationError):
            driver.wait_for(1, max_cycles=50)

    def test_read_reg_routes_past_interleaved_tags(self, driver):
        """An interloping GET no longer derails a tracked read: the engine
        routes each data record by tag, so the stray response stays queued
        in the inbox instead of raising a mismatch error."""
        driver.write_reg(1, 5)
        driver.write_reg(2, 7)
        # sneak an extra GET in so the responses interleave
        driver.execute(ins.get(2, tag=9))
        assert driver.read_reg(1, tag=3) == 5
        (stray,) = driver.wait_for(1)
        assert isinstance(stray, DataRecord)
        assert (stray.tag, stray.value) == (9, 7)

    def test_run_until_quiet_settles_everything(self, driver):
        driver.write_reg(1, 1)
        driver.write_reg(2, 2)
        driver.execute(ins.add(3, 1, 2, dst_flag=1))
        driver.run_until_quiet()
        assert not driver.soc.busy
        assert driver.soc.rtm.register_value(3) == 3

    def test_halt_and_wait(self, driver):
        driver.halt_and_wait()
        assert driver.soc.rtm.halted

    def test_expect_type_mismatch(self, driver):
        driver.execute(ins.halt())
        with pytest.raises(SimulationError, match="expected DataRecord"):
            driver._expect(DataRecord, max_cycles=10_000)

    def test_inbox_accumulates_unconsumed(self, driver):
        driver.write_reg(1, 3)
        driver.execute(ins.get(1))
        driver.run_until_quiet()
        assert len(driver.inbox) == 1
        assert isinstance(driver.inbox[0], DataRecord)


class TestProgramRunner:
    def test_run_program_collects_gets(self, driver):
        from repro.host import collect_values, run_program

        msgs = run_program(
            driver,
            """
            loadi r1, 20
            loadi r2, 22
            add r3, r1, r2 -> f1
            get r3, 1
            getf f1, 2
            """,
        )
        values = collect_values(msgs)
        assert values[0] == 42

    def test_run_program_without_gets_drains(self, driver):
        from repro.host import run_program

        msgs = run_program(driver, "loadi r1, 5\nloadi r2, 6\n")
        assert msgs == []
        assert driver.soc.rtm.register_value(1) == 5

    def test_run_program_with_halt(self, driver):
        from repro.host import run_program

        msgs = run_program(driver, "halt")
        assert msgs == [Halted()]

"""Unit tests for the asynchronous host engine.

Futures, tag allocation/reuse, completion routing, the in-flight window's
backpressure, batched framing, and exception handling with and without
``raise_on_exception``.
"""

import pytest

from repro.hdl.errors import SimulationError
from repro.host import CoprocessorDriver, CoprocessorError, TagAllocator
from repro.isa import instructions as ins
from repro.messages import DataRecord, Halted
from repro.system import build_system


@pytest.fixture
def driver():
    return CoprocessorDriver(build_system())


class TestTagAllocator:
    def test_round_robin_cycles_whole_space(self):
        alloc = TagAllocator(range(3))
        seen = []
        for _ in range(6):
            tag = alloc.acquire()
            seen.append(tag)
            alloc.release(tag)
        # every tag is used before any repeats: 0,1,2,0,1,2
        assert seen == [0, 1, 2, 0, 1, 2]

    def test_exhaustion_returns_none(self):
        alloc = TagAllocator(range(2))
        assert alloc.acquire() is not None
        assert alloc.acquire() is not None
        assert alloc.acquire() is None
        alloc.release(0)
        assert alloc.acquire() == 0

    def test_double_release_is_harmless(self):
        alloc = TagAllocator(range(2))
        t = alloc.acquire()
        alloc.release(t)
        alloc.release(t)  # no duplicate free entry
        assert alloc.free_count == 2

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            TagAllocator([])


class TestFutures:
    def test_result_blocks_until_response(self, driver):
        driver.write_reg(1, 41)
        fut = driver.read_reg_async(1)
        assert not fut.done()
        assert fut.result() == 41
        assert fut.done()

    def test_results_resolve_out_of_wait_order(self, driver):
        driver.write_reg(1, 10)
        driver.write_reg(2, 20)
        f1 = driver.read_reg_async(1)
        f2 = driver.read_reg_async(2)
        # waiting on the later future also resolves the earlier one
        assert f2.result() == 20
        assert f1.done() and f1.result() == 10

    def test_done_callback_fires_on_completion(self, driver):
        driver.write_reg(1, 5)
        fired = []
        fut = driver.read_reg_async(1)
        fut.add_done_callback(lambda f: fired.append(f.result()))
        assert fired == []
        fut.wait()
        assert fired == [5]

    def test_callback_on_already_done_future_runs_immediately(self, driver):
        driver.write_reg(1, 5)
        fut = driver.read_reg_async(1)
        fut.wait()
        fired = []
        fut.add_done_callback(lambda f: fired.append(True))
        assert fired == [True]

    def test_untracked_send_resolves_at_framing(self, driver):
        from repro.messages import WriteReg

        fut = driver.engine.submit_send([WriteReg(1, 7)])
        assert fut.done()  # window open: framed immediately
        driver.run_until_quiet()
        assert driver.soc.rtm.register_value(1) == 7

    def test_wait_timeout_raises(self, driver):
        # a GET of a register that is locked forever cannot happen, but a
        # future on a system that is never pumped far enough times out
        driver.write_reg(1, 1)
        fut = driver.read_reg_async(1)
        with pytest.raises(SimulationError):
            fut.result(max_cycles=2)


class TestWindow:
    def test_submissions_past_window_queue_host_side(self):
        driver = CoprocessorDriver(build_system(), window=2)
        driver.write_reg(1, 9)
        futures = [driver.read_reg_async(1) for _ in range(6)]
        engine = driver.engine
        assert engine.in_flight == 2          # window full
        assert engine.queued == 4             # the rest wait host-side
        assert engine.stats.window_stalls >= 1
        assert [f.result() for f in futures] == [9] * 6
        assert engine.idle
        assert engine.stats.in_flight_highwater == 2

    def test_window_one_serialises_round_trips(self):
        driver = CoprocessorDriver(build_system(), window=1)
        driver.write_reg(1, 3)
        futures = [driver.read_reg_async(1) for _ in range(3)]
        assert driver.engine.in_flight == 1
        assert [f.result() for f in futures] == [3, 3, 3]

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            CoprocessorDriver(build_system(), window=0)

    def test_builder_window_flows_to_driver(self):
        system = build_system(window=3)
        driver = CoprocessorDriver(system)
        assert driver.engine.window == 3

    def test_ordering_preserved_behind_blocked_window(self):
        """Untracked messages queued behind a window-blocked GET must not
        overtake it — the wire order is the submission order."""
        driver = CoprocessorDriver(build_system(), window=1)
        driver.write_reg(1, 1)
        first = driver.read_reg_async(1)
        driver.write_reg(1, 2)          # queued behind the blocked second GET?
        second = driver.read_reg_async(1)
        driver.write_reg(1, 3)
        third = driver.read_reg_async(1)
        assert (first.result(), second.result(), third.result()) == (1, 2, 3)


class TestTagExhaustion:
    """More in-flight GETs than distinct tag values: the pinned behaviour is
    a host-side stall (submissions queue until a tag frees), with released
    tags reused round-robin so the space is cycled before any repeat."""

    def test_tag_starved_submissions_stall_then_complete(self):
        driver = CoprocessorDriver(build_system(), window=8, tags=range(2))
        driver.write_reg(1, 7)
        futures = [driver.read_reg_async(1) for _ in range(5)]
        engine = driver.engine
        assert engine.in_flight == 2          # only two tags exist
        assert engine.queued == 3
        assert engine.stats.tag_stalls >= 1
        assert [f.result() for f in futures] == [7] * 5
        assert engine.idle

    def test_tags_recycle_round_robin(self):
        driver = CoprocessorDriver(build_system(), tags=range(2))
        driver.write_reg(1, 1)
        tags = [driver.read_reg_async(1).wait().tag for _ in range(4)]
        assert tags == [0, 1, 0, 1]

    def test_caller_tag_reuse_resolves_in_order(self, driver):
        """Two in-flight requests on the same explicit tag are legal: the
        in-order response stream resolves them oldest-first."""
        driver.write_reg(1, 11)
        driver.write_reg(2, 22)
        f1 = driver.read_reg_async(1, tag=5)
        f2 = driver.read_reg_async(2, tag=5)
        assert f1.result() == 11
        assert f2.result() == 22


class TestInterleavedRouting:
    def test_interleaved_response_types_stay_queued(self, driver):
        """A tracked read must not drop or trip over unrelated responses:
        the stray GET's record survives in the inbox, in arrival order."""
        driver.write_reg(1, 5)
        driver.write_reg(2, 6)
        driver.execute(ins.get(2, tag=9))       # untracked: destined for inbox
        assert driver.read_reg(1, tag=3) == 5   # tracked: routed by tag
        assert [type(m) for m in driver.inbox] == [DataRecord]
        assert driver.inbox[0].tag == 9

    def test_expect_skips_non_matching_messages(self, driver):
        driver.write_reg(1, 4)
        driver.execute(ins.get(1, tag=2))       # lands in inbox first
        driver.execute(ins.halt())
        msg = driver._expect(Halted, max_cycles=100_000)
        assert isinstance(msg, Halted)
        # the data record was not consumed or reordered away
        assert [m.tag for m in driver.inbox] == [2]

    def test_halt_future_routed_while_data_queues(self, driver):
        driver.write_reg(1, 8)
        driver.execute(ins.get(1, tag=1))
        driver.halt_and_wait()
        assert [type(m) for m in driver.inbox] == [DataRecord]


class TestExceptionHandling:
    def test_accumulate_without_raise(self):
        driver = CoprocessorDriver(build_system(), raise_on_exception=False)
        driver.execute(ins.dispatch(0x7F, 0))   # illegal opcode
        driver.run_until_quiet()
        assert len(driver.exceptions) == 1
        assert len(driver.inbox) == 1           # report also queued for wait_for

    def test_pending_futures_fail_with_coprocessor_error(self):
        driver = CoprocessorDriver(build_system(), raise_on_exception=False)
        driver.write_reg(1, 5)
        # the illegal op's report arrives while the GET is still in flight
        driver.execute(ins.dispatch(0x7F, 0))
        fut = driver.read_reg_async(1)
        driver.run_until_quiet()
        assert fut.done()
        assert isinstance(fut.exception(), CoprocessorError)
        with pytest.raises(CoprocessorError):
            fut.result()
        assert len(driver.exceptions) == 1

    def test_session_usable_after_exception(self):
        from repro.host import Session
        from repro.isa import ArithOp

        system = build_system()
        driver = CoprocessorDriver(system, raise_on_exception=False)
        session = Session(system, driver=driver)
        driver.execute(ins.dispatch(0x7F, 0))
        driver.run_until_quiet()
        assert driver.exceptions
        # the engine recovered: new submissions round-trip normally
        assert session.compute(ArithOp.ADD, 2, 3) == 5
        assert driver.engine.idle

    def test_raise_on_exception_propagates_from_future(self):
        driver = CoprocessorDriver(build_system(), raise_on_exception=True)
        driver.write_reg(1, 5)
        driver.execute(ins.dispatch(0x7F, 0))
        fut = driver.read_reg_async(1)
        with pytest.raises(CoprocessorError):
            driver.run_until_quiet()
        # the pending future was failed, not left hanging
        assert fut.done()
        assert isinstance(fut.exception(), CoprocessorError)

    def test_tags_released_after_failure(self):
        driver = CoprocessorDriver(
            build_system(), raise_on_exception=False, tags=range(1)
        )
        driver.write_reg(1, 5)
        driver.execute(ins.dispatch(0x7F, 0))
        fut = driver.read_reg_async(1)
        driver.run_until_quiet()
        assert isinstance(fut.exception(), CoprocessorError)
        # the failed request's tag went back to the pool
        assert driver.read_reg(1) == 5


class TestBatchedFraming:
    def test_send_all_is_one_framing_batch(self, driver):
        from repro.messages import WriteReg

        before = driver.engine.stats.batches
        driver.send_all([WriteReg(i, i) for i in range(1, 5)])
        stats = driver.engine.stats
        assert stats.batches == before + 1
        assert stats.messages_framed >= 4
        driver.run_until_quiet()
        assert driver.soc.rtm.register_value(4) == 4

    def test_stats_snapshot_keys(self, driver):
        from repro.analysis import engine_counters_for

        driver.write_reg(1, 1)
        driver.read_reg(1)
        counters = engine_counters_for(driver)
        for key in ("submitted", "completed", "window_stalls", "tag_stalls",
                    "in_flight_highwater", "queue_highwater", "batches"):
            assert key in counters
        assert counters["completed"] == 1

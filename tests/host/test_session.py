"""Unit tests for the session API (allocation, ops, multi-word arithmetic)."""

import pytest

from repro.config import FrameworkConfig
from repro.host import OutOfRegisters, Session
from repro.isa import ArithOp, LogicOp
from repro.system import build_system


@pytest.fixture
def session():
    return Session()


class TestAllocation:
    def test_alloc_returns_distinct_registers(self, session):
        regs = session.alloc_many(5)
        assert len(set(regs)) == 5

    def test_exhaustion(self):
        s = Session(build_system(FrameworkConfig(n_regs=4)))
        s.alloc_many(4)
        with pytest.raises(OutOfRegisters):
            s.alloc()

    def test_free_recycles(self):
        s = Session(build_system(FrameworkConfig(n_regs=2)))
        r = s.alloc()
        s.free(r)
        assert s.alloc() == r

    def test_flag_zero_reserved(self, session):
        flags = [session.alloc_flag() for _ in range(3)]
        assert 0 not in flags

    def test_scratch_context(self, session):
        before = len(session._free)
        with session.scratch(3) as regs:
            assert len(regs) == 3
        assert len(session._free) == before


class TestScalarOps:
    def test_put_and_read(self, session):
        r = session.put(1234)
        assert session.read(r) == 1234

    @pytest.mark.parametrize(
        "op,x,y,expected",
        [
            (ArithOp.ADD, 20, 22, 42),
            (ArithOp.SUB, 50, 8, 42),
            (LogicOp.AND, 0b1101, 0b1011, 0b1001),
            (LogicOp.OR, 0b0101, 0b0010, 0b0111),
        ],
    )
    def test_compute(self, session, op, x, y, expected):
        assert session.compute(op, x, y) == expected

    def test_arith_into_named_destination(self, session):
        a, b, d = session.put(5), session.put(6), session.alloc()
        session.arith(ArithOp.ADD, a, b, dst=d)
        assert session.read(d) == 11

    def test_read_carry(self, session):
        a = session.put(0xFFFF_FFFF)
        b = session.put(1)
        f = session.alloc_flag()
        session.arith(ArithOp.ADD, a, b, flag_out=f)
        assert session.read_carry(f) == 1


class TestMultiWord:
    def test_write_read_wide(self, session):
        v = 0x0123_4567_89AB_CDEF_0011
        regs = session.write_wide(v, 3)
        assert session.read_wide(regs) == v

    @pytest.mark.parametrize(
        "a,b",
        [
            (0, 0),
            (0xFFFF_FFFF, 1),
            (0xFFFF_FFFF_FFFF_FFFF, 1),
            (0x0123_4567_89AB_CDEF, 0xFEDC_BA98_7654_3210),
        ],
    )
    def test_add_wide_matches_bigint(self, session, a, b):
        limbs = 3
        ra = session.write_wide(a, limbs)
        rb = session.write_wide(b, limbs)
        out, carry = session.add_wide(ra, rb)
        assert session.read_wide(out) == (a + b) & ((1 << 96) - 1)

    def test_add_wide_final_carry(self, session):
        ra = session.write_wide((1 << 64) - 1, 2)
        rb = session.write_wide(1, 2)
        out, cf = session.add_wide(ra, rb)
        assert session.read_wide(out) == 0
        assert session.read_carry(cf) == 1

    @pytest.mark.parametrize(
        "a,b",
        [
            (100, 58),
            (1 << 64, 1),
            (0xFEDC_BA98_7654_3210, 0x0123_4567_89AB_CDEF),
        ],
    )
    def test_sub_wide_matches_bigint(self, session, a, b):
        ra = session.write_wide(a, 3)
        rb = session.write_wide(b, 3)
        out, _ = session.sub_wide(ra, rb)
        assert session.read_wide(out) == (a - b) & ((1 << 96) - 1)

    def test_sub_wide_borrow_flag(self, session):
        ra = session.write_wide(5, 2)
        rb = session.write_wide(6, 2)
        out, cf = session.sub_wide(ra, rb)
        assert session.read_carry(cf) == 0  # borrow happened (carry clear)

    def test_mismatched_limbs_rejected(self, session):
        with pytest.raises(ValueError):
            session.add_wide([1, 2], [3])


class TestLifecycle:
    def test_context_manager_halts(self):
        with Session() as s:
            s.put(1)
        assert s.system.soc.rtm.halted

    def test_drain_returns_cycles(self, session):
        session.put(5)
        assert session.drain() >= 0
        assert session.system.soc.rtm.lockmgr.all_free

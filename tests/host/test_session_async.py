"""Session-level asynchronous API: compute_async, read_async, pipeline()."""

import pytest

from repro.config import FrameworkConfig
from repro.host import Session
from repro.isa import ArithOp, LogicOp
from repro.system import build_system


@pytest.fixture
def session():
    return Session(build_system(FrameworkConfig(n_regs=32)))


class TestComputeAsync:
    def test_resolves_to_result(self, session):
        fut = session.compute_async(ArithOp.ADD, 20, 22)
        assert fut.result() == 42

    def test_matches_sync_compute(self, session):
        async_results = [session.compute_async(ArithOp.SUB, 50, i) for i in range(5)]
        got = [f.result() for f in async_results]
        want = [session.compute(ArithOp.SUB, 50, i) for i in range(5)]
        assert got == want

    def test_registers_recycled_by_completion(self, session):
        free_before = len(session._free)
        futures = [session.compute_async(ArithOp.ADD, i, i) for i in range(8)]
        assert [f.result() for f in futures] == [2 * i for i in range(8)]
        assert len(session._free) == free_before

    def test_register_pressure_self_throttles(self):
        """A batch wider than the register file must not raise: allocation
        waits for earlier in-flight computes to free their registers."""
        session = Session(build_system(FrameworkConfig(n_regs=8), window=8))
        with session.pipeline() as p:
            futures = [p.compute(ArithOp.ADD, i, 50) for i in range(10)]
        assert [f.result() for f in futures] == [50 + i for i in range(10)]

    def test_logic_ops_supported(self, session):
        fut = session.compute_async(LogicOp.AND, 0b1100, 0b1010)
        assert fut.result() == 0b1000


class TestPipeline:
    def test_waits_on_clean_exit(self, session):
        with session.pipeline() as p:
            futures = [p.compute(ArithOp.ADD, i, 100) for i in range(4)]
            assert not all(f.done() for f in futures)
        # exit waited everything: results are instantly available
        assert all(f.done() for f in futures)
        assert [f.result() for f in futures] == [100 + i for i in range(4)]

    def test_results_in_issue_order(self, session):
        with session.pipeline() as p:
            p.compute(ArithOp.ADD, 1, 2)
            p.compute(ArithOp.SUB, 9, 4)
            r = session.put(7)
            p.read(r)
        assert p.results() == [3, 5, 7]

    def test_read_flags_tracked(self, session):
        with session.pipeline() as p:
            fv = p.read_flags(1)
        assert fv.result() == 0

    def test_exception_inside_block_skips_wait(self, session):
        with pytest.raises(RuntimeError, match="boom"):
            with session.pipeline() as p:
                p.compute(ArithOp.ADD, 1, 1)
                raise RuntimeError("boom")
        # the future was never waited by the context manager ...
        # ... but the engine still completes it if we drain manually
        session.drain()
        assert p.futures[0].result() == 2

    def test_overlap_beats_serial_round_trips(self):
        """The point of the pipeline: n dependent-free computes cost far
        fewer cycles windowed than serialised one-at-a-time."""
        n = 6
        serial = Session(build_system(FrameworkConfig(n_regs=64), window=1))
        start = serial.driver.cycles
        for i in range(n):
            serial.compute(ArithOp.ADD, i, i)
        serial_cycles = serial.driver.cycles - start

        piped = Session(build_system(FrameworkConfig(n_regs=64), window=8))
        start = piped.driver.cycles
        with piped.pipeline() as p:
            futures = [p.compute(ArithOp.ADD, i, i) for i in range(n)]
        piped_cycles = piped.driver.cycles - start

        assert [f.result() for f in futures] == [2 * i for i in range(n)]
        assert piped_cycles < serial_cycles

"""Unit tests for the software arithmetic baselines."""

import pytest

from repro.host import OpCounter, limbs_of, multiword_add, multiword_sub, value_of


class TestLimbHelpers:
    def test_roundtrip(self):
        v = 0x0123_4567_89AB_CDEF_5555
        assert value_of(limbs_of(v, 3, 32), 32) == v

    def test_ls_first(self):
        assert limbs_of(0x1_0000_0002, 2, 32) == [2, 1]

    def test_different_widths(self):
        v = (1 << 100) | 7
        for w in (32, 64):
            n = (101 + w - 1) // w
            assert value_of(limbs_of(v, n, w), w) == v


class TestMultiwordAdd:
    @pytest.mark.parametrize(
        "a,b",
        [(0, 0), (0xFFFF_FFFF, 1), ((1 << 96) - 1, 1), (12345678901234567890, 998877)],
    )
    def test_matches_bigint(self, a, b):
        limbs = 4
        out, carry = multiword_add(limbs_of(a, limbs, 32), limbs_of(b, limbs, 32), 32)
        total = value_of(out, 32) | (carry << (32 * limbs))
        assert total == a + b

    def test_counter_scales_with_limbs(self):
        c2, c8 = OpCounter(), OpCounter()
        multiword_add([0] * 2, [0] * 2, 32, c2)
        multiword_add([0] * 8, [0] * 8, 32, c8)
        assert c8.ops == 4 * c2.ops

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            multiword_add([1], [1, 2], 32)


class TestMultiwordSub:
    @pytest.mark.parametrize(
        "a,b",
        [(10, 3), ((1 << 64), 1), (0xFFFF_FFFF_FFFF, 0x1234_5678)],
    )
    def test_matches_bigint(self, a, b):
        limbs = 3
        out, carry = multiword_sub(limbs_of(a, limbs, 32), limbs_of(b, limbs, 32), 32)
        assert value_of(out, 32) == (a - b) & ((1 << 96) - 1)
        assert carry == 1  # no borrow for a >= b

    def test_borrow_reported(self):
        out, carry = multiword_sub([0], [1], 32)
        assert carry == 0
        assert out == [0xFFFF_FFFF]

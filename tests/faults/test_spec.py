"""Unit tests for the state-upset schedule (StateFaultSpec / StateFaultStats)."""

import pytest

from repro.faults import StateFaultSpec, StateFaultStats


class TestSpecValidation:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            StateFaultSpec(flip_rate=1.5)
        with pytest.raises(ValueError):
            StateFaultSpec(flip_rate=0.6, double_rate=0.6)

    def test_schedule_entry_shape(self):
        with pytest.raises(ValueError, match="triples"):
            StateFaultSpec(schedule=(("rtm.regfile", 3),))
        with pytest.raises(ValueError, match="kind"):
            StateFaultSpec(schedule=(("rtm.regfile", 3, "explode"),))

    def test_schedule_duplicate_index_rejected(self):
        with pytest.raises(ValueError, match="more than once"):
            StateFaultSpec(schedule=(
                ("rtm.regfile", 3, "flip"),
                ("rtm.regfile", 3, "double"),
            ))

    def test_same_index_different_elements_allowed(self):
        spec = StateFaultSpec(schedule=(
            ("rtm.regfile", 3, "flip"),
            ("rtm.flagfile", 3, "double"),
        ))
        assert spec.any_faults


class TestFateDeterminism:
    def test_pure_function_of_seed_element_index(self):
        spec = StateFaultSpec(seed=42, flip_rate=0.2, double_rate=0.1)
        fates = [spec.fate("rtm.regfile", i, 64) for i in range(300)]
        assert fates == [spec.fate("rtm.regfile", i, 64) for i in range(300)]
        # a fresh spec object agrees — no hidden RNG state
        again = StateFaultSpec(seed=42, flip_rate=0.2, double_rate=0.1)
        assert fates == [again.fate("rtm.regfile", i, 64) for i in range(300)]

    def test_independent_of_query_order(self):
        spec = StateFaultSpec(seed=7, flip_rate=0.3)
        forward = [spec.fate("e", i, 32) for i in range(100)]
        backward = [spec.fate("e", i, 32) for i in reversed(range(100))]
        assert forward == list(reversed(backward))

    def test_elements_draw_independent_streams(self):
        spec = StateFaultSpec(seed=7, flip_rate=0.5)
        a = [spec.fate("rtm.regfile", i, 64) for i in range(200)]
        b = [spec.fate("rtm.flagfile", i, 64) for i in range(200)]
        assert a != b

    def test_bits_within_width_and_distinct(self):
        spec = StateFaultSpec(seed=3, flip_rate=0.4, double_rate=0.4)
        for i in range(300):
            f = spec.fate("e", i, 16)
            if f[0] == "flip":
                assert 0 <= f[1] < 16
            elif f[0] == "double":
                b1, b2 = f[1], f[2]
                assert 0 <= b1 < 16 and 0 <= b2 < 16 and b1 != b2

    def test_schedule_overrides_rates(self):
        spec = StateFaultSpec(seed=1, schedule=(
            ("e", 0, "double"), ("e", 2, "flip"), ("e", 3, "ok"),
        ))
        assert spec.fate("e", 0, 32)[0] == "double"
        assert spec.fate("e", 1, 32) == ("ok",)
        assert spec.fate("e", 2, 32)[0] == "flip"
        assert spec.fate("e", 3, 32) == ("ok",)
        # scheduled entries target their element only
        assert spec.fate("other", 0, 32) == ("ok",)

    def test_targets_gate_rate_injection_not_schedule(self):
        spec = StateFaultSpec(
            seed=5, flip_rate=1.0, targets=("rtm.regfile",),
            schedule=(("rtm.futable", 0, "double"),),
        )
        assert spec.targeted("rtm.regfile")
        assert not spec.targeted("rtm.futable")
        assert spec.fate("rtm.futable", 0, 8)[0] == "double"
        assert spec.fate("rtm.futable", 1, 8) == ("ok",)
        assert spec.fate("rtm.regfile", 1, 8)[0] == "flip"


class TestStats:
    def test_latency_aggregates(self):
        stats = StateFaultStats()
        assert stats.as_dict()["detect_latency_mean"] == 0.0
        stats.record_latency(4)
        stats.record_latency(10)
        d = stats.as_dict()
        assert d["detect_latency_mean"] == 7.0
        assert d["detect_latency_max"] == 10

"""Guards, machine-check unit and checkpoints at the component level.

The system-level acceptance story (identical-or-raises under seeded
upsets) lives in ``test_recovery.py`` and the chaos property suite; this
file pins each mechanism in isolation: the ECC shadow's correct/report
split, the scoreboard guard, first-error-wins latching, the MachineCheck
wire format, checkpoint snapshot/restore, and the reset paths that must
leave no stale ECC or machine-check state behind.
"""

from repro.config import FrameworkConfig
from repro.faults import (
    Checkpoint,
    LockGuard,
    MachineCheckUnit,
    RamGuard,
    StateFaultPlan,
    StateFaultSpec,
    restore_state,
    snapshot_state,
)
from repro.fu.protocol import WriteSpace
from repro.hdl import Component, Simulator, SyncRam
from repro.messages.framing import Deframer, Framer
from repro.messages.types import MachineCheck
from repro.rtm.lockmgr import LockManager


class GuardHarness(Component):
    """A RAM and a scoreboard, each guarded and wired to one MCU — the
    same topology the RTM builds, minus the pipeline."""

    def __init__(self, spec=None):
        super().__init__("h")
        self.plan = StateFaultPlan(spec)
        self.mcu = MachineCheckUnit("mcu", parent=self)
        self.mcu.stats = self.plan.stats
        self.ram = SyncRam("ram", words=8, width=32, parent=self)
        self.guard = RamGuard("h.ram", self.ram, self.plan, self.mcu)
        self.lockmgr = LockManager("locks", FrameworkConfig(), parent=self)
        self.lockguard = LockGuard("h.locks", self.lockmgr, self.plan, self.mcu)
        self.write_plan: list[tuple[int, int]] = []  # one RAM write per cycle
        self.lock_plan: list[tuple[WriteSpace, int]] = []  # one lock per cycle

        @self.seq
        def _tick() -> None:
            if self.write_plan:
                addr, value = self.write_plan.pop(0)
                self.ram.write(addr, value)
            if self.lock_plan:
                space, reg = self.lock_plan.pop(0)
                self.lockmgr.lock(space, reg)


def _sim(h):
    sim = Simulator(h)
    sim.reset()
    h.plan.bind_clock(lambda: sim.now)
    return sim


class TestRamGuard:
    def test_single_flip_corrected_on_read(self):
        h = GuardHarness(StateFaultSpec(seed=1, schedule=(("h.ram", 0, "flip"),)))
        sim = _sim(h)
        h.write_plan = [(3, 0xABCD)]
        sim.step(2)
        assert h.ram.read(3) == 0xABCD  # corrected, not the corrupted word
        assert h.plan.stats.injected_single == 1
        assert h.plan.stats.corrected == 1
        assert not h.mcu.pending
        # the stored word was repaired in place, not just masked on read
        assert h.ram._mem.value[3] == 0xABCD

    def test_double_raises_machine_check(self):
        h = GuardHarness(StateFaultSpec(seed=1, schedule=(("h.ram", 0, "double"),)))
        sim = _sim(h)
        h.write_plan = [(3, 0xABCD)]
        sim.step(2)
        h.ram.read(3)
        assert h.mcu.pending and h.mcu.unreported
        code, address, syndrome = h.mcu.record
        assert code == h.guard.code
        assert address == 3
        hi, lo = (syndrome >> 8) & 0xFF, syndrome & 0xFF
        assert hi != lo and hi < 32 and lo < 32
        assert h.plan.stats.uncorrectable == 1

    def test_overwrite_before_read_counts_overwritten(self):
        h = GuardHarness(StateFaultSpec(seed=1, schedule=(("h.ram", 0, "double"),)))
        sim = _sim(h)
        h.write_plan = [(3, 0xABCD), (3, 0x1234)]
        sim.step(3)
        assert h.ram.read(3) == 0x1234
        assert h.plan.stats.overwritten == 1
        assert not h.mcu.pending

    def test_first_error_wins_suppressed_counted(self):
        h = GuardHarness(StateFaultSpec(seed=1, schedule=(
            ("h.ram", 0, "double"), ("h.ram", 1, "double"),
        )))
        sim = _sim(h)
        h.write_plan = [(1, 7), (2, 9)]
        sim.step(3)
        h.ram.read(1)
        first = h.mcu.record
        assert first is not None
        h.ram.read(2)
        assert h.mcu.record == first
        assert h.plan.stats.checks_suppressed == 1


class TestLockGuard:
    def test_single_flip_repaired_at_query(self):
        h = GuardHarness(StateFaultSpec(seed=1, schedule=(("h.locks", 0, "flip"),)))
        sim = _sim(h)
        h.lock_plan = [(WriteSpace.DATA, 2)]
        sim.step(2)
        assert h.lockmgr.is_locked(WriteSpace.DATA, 2)
        assert h.plan.stats.corrected == 1
        assert not h.mcu.pending
        assert h.lockmgr._data_locks.value == h.lockguard._true[WriteSpace.DATA]

    def test_double_raises_machine_check(self):
        h = GuardHarness(StateFaultSpec(seed=1, schedule=(("h.locks", 0, "double"),)))
        sim = _sim(h)
        h.lock_plan = [(WriteSpace.DATA, 2)]
        sim.step(2)
        h.lockmgr.is_locked(WriteSpace.DATA, 0)
        assert h.mcu.pending
        assert h.plan.stats.uncorrectable == 1


class TestResetPaths:
    """Satellite regression: no reset path may leave stale ECC/scrub state
    or a pending machine check behind."""

    def _latched(self):
        h = GuardHarness(StateFaultSpec(seed=1, schedule=(("h.ram", 0, "double"),)))
        sim = _sim(h)
        h.write_plan = [(3, 0xABCD)]
        sim.step(2)
        h.ram.read(3)
        assert h.mcu.pending
        return h, sim

    def test_soft_clear_scrubs_and_drops_check(self):
        h, sim = self._latched()
        h.mcu.soft_clear()
        assert not h.mcu.pending and not h.mcu.unreported
        assert h.mcu.record is None
        assert not h.guard.tainted and not h.plan.tainted
        # the corrupt word was scrubbed back to the intended contents
        assert h.ram.read(3) == 0xABCD
        assert h.ram._mem.value[3] == 0xABCD

    def test_hard_reset_clears_check_and_taint(self):
        h, sim = self._latched()
        sim.reset()
        assert not h.mcu.pending and not h.mcu.unreported
        assert h.mcu.record is None
        assert not h.plan.tainted
        # the shadow adopted the post-reset contents: reads are clean
        assert h.ram.read(3) == 0

    def test_injection_counters_survive_reset(self):
        """Replay after rollback must draw fresh fates (see Protected.clear)."""
        h, sim = self._latched()
        writes_before = h.guard._writes
        sim.reset()
        assert h.guard._writes == writes_before
        # the same logical write now draws the *next* fate, which is clean
        h.write_plan = [(3, 0xABCD)]
        sim.step(2)
        assert h.ram.read(3) == 0xABCD
        assert not h.mcu.pending


class TestWireFormat:
    def test_machine_check_roundtrip(self):
        msg = MachineCheck(element=2, address=0x0003, syndrome=0x1D0A)
        words = Framer().frame(msg)
        deframer = Deframer()
        out = []
        for w in words:
            m = deframer.push(w)
            if m is not None:
                out.append(m)
        assert out == [msg]

    def test_wire_packing(self):
        words = Framer().frame(MachineCheck(element=2, address=0x0003,
                                            syndrome=0x1D0A))
        payload = words[-1]
        assert payload == (0x0003 << 16) | 0x1D0A


class TestCheckpoint:
    def test_snapshot_restore_roundtrip(self):
        from repro.host import CoprocessorDriver
        from repro.isa import instructions as ins
        from repro.system import build_system

        built = build_system(state_protection=True, lint="off")
        drv = CoprocessorDriver(built)
        drv.write_reg(1, 111)
        drv.write_reg(2, 222)
        drv.execute(ins.add(3, 1, 2))
        assert drv.read_reg(3) == 333
        ckpt = snapshot_state(built.soc, cycle=built.sim.now)
        assert isinstance(ckpt, Checkpoint)
        # diverge, then roll back
        drv.write_reg(3, 999)
        assert drv.read_reg(3) == 999
        built.sim.reset()
        restore_state(built.soc, ckpt)
        assert drv.read_reg(3) == 333

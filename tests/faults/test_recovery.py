"""End-to-end state-fault recovery through the host engine.

The acceptance criterion for the fault stack: under seeded bit-flips,
every scenario completes with results identical to the fault-free run, or
raises — silent corruption never.  Singles are corrected invisibly;
doubles travel the full path (machine check latched → pipeline frozen →
MachineCheck frame → engine rollback to the last quiescent checkpoint →
journal replay), and a second double before re-quiescing fails fast with
:class:`MachineCheckError`.
"""

import pytest

from repro.faults import StateFaultSpec
from repro.host import CoprocessorDriver, MachineCheckError
from repro.isa import instructions as ins
from repro.messages import FaultSpec
from repro.system import build_system

BASE = 3333


def _run(**build_kwargs):
    built = build_system(lint="off", **build_kwargs)
    drv = CoprocessorDriver(built)
    drv.write_reg(1, 1111)
    drv.write_reg(2, 2222)
    drv.execute(ins.add(3, 1, 2, dst_flag=1))
    return drv.read_reg(3), built, drv


class TestSinglesAreInvisible:
    def test_fault_free_protected_run_is_identical(self):
        out, built, drv = _run(state_protection=True)
        assert out == BASE
        assert drv.engine.stats.machine_checks == 0
        assert built.soc.state_domain.stats.injected_single == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_random_singles_corrected(self, seed):
        out, built, drv = _run(
            state_faults=StateFaultSpec(seed=seed, flip_rate=0.4))
        assert out == BASE
        stats = built.soc.state_domain.stats
        assert stats.injected_double == 0
        assert stats.uncorrectable == 0
        # corrected on read-back or scrub; the rest stayed latent in words
        # nothing read again (or were overwritten) — never wrong output
        assert stats.corrected <= stats.injected_single - stats.overwritten
        assert drv.engine.stats.rollbacks == 0


class TestDoubleFaultRecovery:
    @pytest.mark.parametrize("element", [
        "rtm.regfile", "rtm.lockmgr", "rtm.futable",
    ])
    def test_pinned_double_recovers_by_rollback(self, element):
        # index 1 for write-indexed elements; the single unit dispatch
        # makes index 0 the only one a futable fate can land on
        index = 0 if element == "rtm.futable" else 1
        out, built, drv = _run(
            state_faults=StateFaultSpec(
                seed=9, schedule=((element, index, "double"),)))
        assert out == BASE
        est = drv.engine.stats
        assert est.machine_checks == 1
        assert est.rollbacks == 1
        assert est.replayed > 0
        assert est.checkpoints >= 1
        # settle-phase re-queries may re-detect the same divergence before
        # the rollback lands, so the count is at-least-one, not exactly-one
        assert built.soc.state_domain.stats.uncorrectable >= 1

    def test_detection_latency_recorded(self):
        _, built, _ = _run(
            state_faults=StateFaultSpec(
                seed=9, schedule=(("rtm.regfile", 1, "double"),)))
        d = built.soc.state_domain.stats.as_dict()
        assert d["detect_latency_mean"] is not None
        assert d["detect_latency_max"] >= 0

    def test_repeated_doubles_fail_fast(self):
        # pin enough doubles that the replay (which draws fresh fates from
        # the surviving write counters) takes a second hit before the
        # engine can reach a new quiescent checkpoint
        schedule = tuple(("rtm.regfile", i, "double") for i in range(1, 6))
        with pytest.raises(MachineCheckError) as exc:
            _run(state_faults=StateFaultSpec(seed=9, schedule=schedule))
        assert "rtm.regfile" in str(exc.value)
        assert exc.value.syndrome != 0

    def test_fatal_engine_fails_later_submissions(self):
        built = build_system(
            lint="off",
            state_faults=StateFaultSpec(
                seed=9,
                schedule=tuple(("rtm.regfile", i, "double")
                               for i in range(1, 6))),
        )
        drv = CoprocessorDriver(built)
        with pytest.raises(MachineCheckError):
            drv.write_reg(1, 1111)
            drv.write_reg(2, 2222)
            drv.execute(ins.add(3, 1, 2, dst_flag=1))
            drv.read_reg(3)
        assert drv.engine.fatal_error is not None
        with pytest.raises(MachineCheckError):
            drv.read_reg(1)  # still down — no silent half-alive state


class TestCombinedFaultDomains:
    def test_reliable_link_plus_state_doubles(self):
        out, built, drv = _run(
            reliable=True,
            faults=FaultSpec(seed=4, drop_rate=0.05),
            state_faults=StateFaultSpec(
                seed=9, schedule=(("rtm.regfile", 1, "double"),)),
        )
        assert out == BASE
        est = drv.engine.stats
        assert est.rollbacks == 1
        assert est.machine_checks == 1


class TestBackendParity:
    """Injection is indexed by architectural operations, so the same spec
    must inject identically under every execution backend."""

    @pytest.mark.parametrize("seed", [11, 12])
    def test_compiled_matches_event(self, seed):
        spec = StateFaultSpec(seed=seed, flip_rate=0.3)
        results = {}
        for backend in (None, "compiled"):
            out, built, _ = _run(state_faults=spec, backend=backend)
            assert out == BASE
            stats = built.soc.state_domain.stats
            results[backend] = (stats.injected_single, stats.injected_double,
                                stats.corrected, stats.uncorrectable)
        assert results[None] == results["compiled"]

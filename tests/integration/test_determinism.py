"""Determinism: identical stimuli produce identical cycle-by-cycle traces.

A simulation kernel that is order- or hash-sensitive would make every
benchmark in this repository unreproducible; this locks the property down.
"""

import random

from repro.fu import default_registry
from repro.hdl import Tracer
from repro.host import CoprocessorDriver
from repro.isa import Opcode, instructions as ins
from repro.system import build_system
from repro.xisort import DirectXiSortMachine, xisort_factory


def _run_traced(seed: int):
    system = build_system()
    rtm = system.soc.rtm
    tracer = Tracer(system.sim, [
        rtm.dispatcher.stalled,
        rtm.units[0].dp.dispatch,
        rtm.units[0].rp.ready,
        rtm.execution.prio_valid,
    ])
    driver = CoprocessorDriver(system)
    rng = random.Random(seed)
    driver.write_reg(1, rng.randrange(1 << 16))
    driver.write_reg(2, rng.randrange(1 << 16))
    for _ in range(8):
        driver.execute(ins.add(3 + rng.randrange(3), 1, 2, dst_flag=1))
    driver.execute(ins.get(3))
    driver.wait_for(1)
    driver.run_until_quiet()
    return tracer.history, system.sim.now, system.soc.rtm.regfile.dump()


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        h1, now1, rf1 = _run_traced(7)
        h2, now2, rf2 = _run_traced(7)
        assert now1 == now2
        assert rf1 == rf2
        assert h1 == h2

    def test_different_stimuli_differ(self):
        _, _, rf1 = _run_traced(7)
        _, _, rf2 = _run_traced(8)
        assert rf1 != rf2

    def test_xisort_cycle_counts_reproducible(self):
        values = random.Random(3).sample(range(1000), 10)
        runs = set()
        for _ in range(2):
            m = DirectXiSortMachine(16)
            m.sort(values)
            runs.add(m.cycles)
        assert len(runs) == 1

    def test_full_system_sort_reproducible(self):
        cycles = set()
        for _ in range(2):
            registry = default_registry()
            registry.register(Opcode.XISORT, xisort_factory(n_cells=8))
            system = build_system(registry=registry)
            from repro.host import Session
            from repro.xisort import XiSortAccelerator

            acc = XiSortAccelerator(Session(system))
            acc.sort([5, 1, 4, 2])
            cycles.add(system.sim.now)
        assert len(cycles) == 1

"""Experiment F2: the FPGA-side component structure of paper Fig. 2.

Verifies the assembled design contains exactly the blocks of the figure —
interface circuitry (receiver/transmitter), message buffer, RTM, message
serialiser, functional units — wired point-to-point, plus the Fig. 4
internals (decoder, dispatcher, execution, register files, lock manager,
write arbiter).
"""

from repro.hdl import Component
from repro.system import build_system


def _names(comp: Component) -> set[str]:
    return {c.name for c in comp.walk()}


class TestFig2Blocks:
    def test_top_level_blocks_present(self):
        soc = build_system().soc
        names = _names(soc)
        for block in ("host", "link", "receiver", "transmitter", "rtm"):
            assert block in names

    def test_rtm_internal_blocks(self):
        rtm = build_system().soc.rtm
        names = {c.name for c in rtm.children}
        for block in (
            "msgbuffer", "decoder", "dispatcher", "execution",
            "encoder", "serializer", "regfile", "flagfile",
            "lockmgr", "write_arbiter",
        ):
            assert block in names, f"missing {block}"

    def test_functional_units_attached(self):
        rtm = build_system().soc.rtm
        fu_names = [c.name for c in rtm.children if c.name.startswith("fu_")]
        assert len(fu_names) == 2
        assert rtm.write_arbiter.n_ports == 2

    def test_hierarchical_paths(self):
        soc = build_system().soc
        dispatcher = soc.find("rtm.dispatcher")
        assert dispatcher.path == "soc.rtm.dispatcher"

    def test_link_is_full_duplex(self):
        soc = build_system().soc
        assert {c.name for c in soc.link.children} == {"downstream", "upstream"}

    def test_messages_go_via_buffers(self):
        """Incoming/outgoing messages go via hardware buffers (Fig. 2)."""
        soc = build_system().soc
        assert soc.receiver.fifo.depth >= 1
        assert soc.transmitter.fifo.depth >= 1
        assert soc.rtm.encoder.fifo.depth >= 1

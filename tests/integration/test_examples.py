"""Smoke tests: every shipped example runs to completion.

Keeps the examples from rotting as the library evolves; each is executed
in-process (import + main) with its working artefacts redirected to a temp
directory.
"""

import os
import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    p.name for p in (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.fixture(autouse=True)
def _isolate(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # VCD dumps etc. land in tmp


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys):
    path = Path(__file__).resolve().parents[2] / "examples" / script
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_example_inventory():
    # the deliverable: a quickstart plus at least three domain scenarios
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 4

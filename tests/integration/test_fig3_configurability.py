"""Experiment F3: the programmer's configuration surface of paper Fig. 3.

"To use the system, the programmer needs to: partition the algorithm;
define the specialised operations and implement them as functional units;
configure the interface framework by specifying size parameters for the
register file, and selecting the appropriate transmitter and receiver
modules."  These tests walk that workflow end-to-end with a user-defined
unit, several register-file configurations and several channel choices —
without modifying a single framework component.
"""

import pytest

from repro.config import FrameworkConfig
from repro.fu import AreaOptimizedFU, FuComputation, MinimalFunctionalUnit
from repro.host import CoprocessorDriver
from repro.isa import instructions as ins
from repro.messages import FAST_BUS, INTEGRATED, SLOW_PROTOTYPE
from repro.system import SystemBuilder

MASK = (1 << 32) - 1


class PopcountUnit(MinimalFunctionalUnit):
    """A user-defined specialised operation (population count)."""

    def compute(self, s):
        return FuComputation(data1=bin(s.op_a).count("1"))


class GcdUnit(AreaOptimizedFU):
    """A stateless multi-cycle unit: binary GCD as a single instruction."""

    def __init__(self, name, word_bits, parent=None):
        super().__init__(name, word_bits, parent, execute_cycles=8)

    def compute(self, s):
        import math

        return FuComputation(data1=math.gcd(s.op_a, s.op_b), flags=0)


class TestUserDefinedUnits:
    def test_popcount_unit(self):
        built = SystemBuilder().with_unit(0x20, lambda n, w, p: PopcountUnit(n, w, p)).build()
        d = CoprocessorDriver(built)
        d.write_reg(1, 0b1011_0111)
        d.execute(ins.dispatch(0x20, 0, dst1=2, src1=1))
        assert d.read_reg(2) == 6

    def test_gcd_unit(self):
        built = SystemBuilder().with_unit(0x21, lambda n, w, p: GcdUnit(n, w, p)).build()
        d = CoprocessorDriver(built)
        d.write_reg(1, 48)
        d.write_reg(2, 36)
        d.execute(ins.dispatch(0x21, 0, dst1=3, src1=1, src2=2, dst_flag=1))
        assert d.read_reg(3) == 12

    def test_multiple_user_units_coexist_with_case_study_units(self):
        built = (
            SystemBuilder()
            .with_unit(0x20, lambda n, w, p: PopcountUnit(n, w, p))
            .with_unit(0x21, lambda n, w, p: GcdUnit(n, w, p))
            .build()
        )
        d = CoprocessorDriver(built)
        d.write_reg(1, 21)
        d.write_reg(2, 14)
        d.execute(ins.add(3, 1, 2, dst_flag=1))            # framework unit
        d.execute(ins.dispatch(0x21, 0, dst1=4, src1=1, src2=2, dst_flag=1))
        d.execute(ins.dispatch(0x20, 0, dst1=5, src1=3))
        assert d.read_reg(3) == 35
        assert d.read_reg(4) == 7
        assert d.read_reg(5) == bin(35).count("1")


class TestSizeParameters:
    @pytest.mark.parametrize("n_regs", [4, 16, 256])
    def test_register_file_sizes(self, n_regs):
        built = SystemBuilder().with_config(n_regs=n_regs).build()
        d = CoprocessorDriver(built)
        last = n_regs - 1
        d.write_reg(last, 7)
        assert d.read_reg(last) == 7

    @pytest.mark.parametrize("word_bits", [32, 96])
    def test_word_sizes(self, word_bits):
        built = SystemBuilder().with_config(word_bits=word_bits).build()
        d = CoprocessorDriver(built)
        v = (1 << (word_bits - 1)) | 3
        d.write_reg(1, v)
        assert d.read_reg(1) == v


class TestTransceiverSelection:
    @pytest.mark.parametrize("channel", [INTEGRATED, FAST_BUS, SLOW_PROTOTYPE],
                             ids=lambda c: c.name)
    def test_same_program_any_link(self, channel):
        """Functional behaviour is link-independent; only timing changes."""
        built = SystemBuilder().with_channel(channel).build()
        d = CoprocessorDriver(built)
        d.write_reg(1, 20)
        d.write_reg(2, 22)
        d.execute(ins.add(3, 1, 2, dst_flag=1))
        assert d.read_reg(3, max_cycles=5_000_000) == 42

    def test_links_differ_only_in_cycles(self):
        results = {}
        for channel in (INTEGRATED, SLOW_PROTOTYPE):
            built = SystemBuilder().with_channel(channel).build()
            d = CoprocessorDriver(built)
            d.write_reg(1, 9)
            value = d.read_reg(1, max_cycles=5_000_000)
            results[channel.name] = (value, d.cycles)
        assert results["integrated"][0] == results["slow-prototype"][0] == 9
        assert results["slow-prototype"][1] > 20 * results["integrated"][1]

"""Multi-word arithmetic end-to-end: hardware carry chains vs software.

Thesis §3.2.2: "Multi-word operation is supported through an externally
provided carry bit read from the input carry flag."
"""

import random

import pytest

from repro.host import (
    OpCounter,
    Session,
    limbs_of,
    multiword_add,
    multiword_sub,
    value_of,
)


class TestHardwareVsSoftware:
    @pytest.mark.parametrize("limbs", [1, 2, 4])
    def test_add_agrees_with_software(self, limbs):
        rng = random.Random(limbs)
        bits = 32 * limbs
        a, b = rng.getrandbits(bits), rng.getrandbits(bits)
        with Session() as s:
            ra = s.write_wide(a, limbs)
            rb = s.write_wide(b, limbs)
            out, cf = s.add_wide(ra, rb)
            hw = s.read_wide(out)
            hw_carry = s.read_carry(cf)
        sw_limbs, sw_carry = multiword_add(limbs_of(a, limbs, 32), limbs_of(b, limbs, 32), 32)
        assert hw == value_of(sw_limbs, 32)
        assert hw_carry == sw_carry

    @pytest.mark.parametrize("limbs", [2, 3])
    def test_sub_agrees_with_software(self, limbs):
        rng = random.Random(limbs + 10)
        bits = 32 * limbs
        a, b = rng.getrandbits(bits), rng.getrandbits(bits)
        with Session() as s:
            ra = s.write_wide(a, limbs)
            rb = s.write_wide(b, limbs)
            out, cf = s.sub_wide(ra, rb)
            hw = s.read_wide(out)
            hw_carry = s.read_carry(cf)
        sw_limbs, sw_carry = multiword_sub(limbs_of(a, limbs, 32), limbs_of(b, limbs, 32), 32)
        assert hw == value_of(sw_limbs, 32)
        assert hw_carry == sw_carry

    def test_carry_ripples_across_all_limbs(self):
        # 0xFFFF...F + 1 ripples through every limb
        limbs = 4
        with Session() as s:
            ra = s.write_wide((1 << 128) - 1, limbs)
            rb = s.write_wide(1, limbs)
            out, cf = s.add_wide(ra, rb)
            assert s.read_wide(out) == 0
            assert s.read_carry(cf) == 1

    def test_128bit_random_soak(self):
        rng = random.Random(99)
        with Session() as s:
            for _ in range(5):
                a, b = rng.getrandbits(128), rng.getrandbits(128)
                ra = s.write_wide(a, 4)
                rb = s.write_wide(b, 4)
                out, cf = s.add_wide(ra, rb)
                got = s.read_wide(out) | (s.read_carry(cf) << 128)
                assert got == a + b
                s.free(*ra, *rb, *out)
                s.free_flag(cf)


class TestWideWordAlternative:
    """The same capability via the word-size generic instead of chains."""

    def test_single_instruction_128bit_add(self):
        from repro.config import FrameworkConfig
        from repro.system import build_system

        s = Session(build_system(FrameworkConfig(word_bits=128)))
        a = (1 << 127) | 12345
        b = (1 << 126) | 67890
        ra, rb = s.put(a), s.put(b)
        from repro.isa import ArithOp

        rd = s.arith(ArithOp.ADD, ra, rb)
        assert s.read(rd) == (a + b) & ((1 << 128) - 1)

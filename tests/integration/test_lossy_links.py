"""End-to-end workloads over lossy links on every channel preset.

The acceptance bar for the reliability layer: with 1% word drops and 1%
bit-flips injected in both directions, the arithmetic and χ-sort workloads
must complete with results identical to a fault-free run, visibly exercising
the recovery machinery (nonzero retransmission counters) — and a link that
dies outright must raise :class:`LinkDownError` instead of hanging.
"""

import pytest

from repro.fu import default_registry
from repro.host import CoprocessorDriver, LinkDownError, Session
from repro.isa import Opcode, instructions as ins
from repro.messages import FAST_BUS, INTEGRATED, SLOW_PROTOTYPE, FaultSpec
from repro.system import build_system
from repro.xisort import XiSortAccelerator, xisort_factory

PRESETS = [
    pytest.param(INTEGRATED, id="integrated"),
    pytest.param(FAST_BUS, id="fast_bus"),
    pytest.param(SLOW_PROTOTYPE, id="slow_prototype"),
]


def _lossy(channel, seed):
    return dict(
        channel=channel,
        reliable=True,
        faults=FaultSpec(seed=seed, drop_rate=0.01, flip_rate=0.01),
        upstream_faults=FaultSpec(seed=seed + 1, drop_rate=0.01,
                                  flip_rate=0.01),
    )


class TestArithOverLossyLinks:
    @pytest.mark.parametrize("channel", PRESETS)
    def test_results_identical_to_fault_free(self, channel):
        drv = CoprocessorDriver(build_system(**_lossy(channel, seed=31)))
        # fewer ops on the slow prototype link to bound wall time
        n_ops = 8 if channel is SLOW_PROTOTYPE else 30
        for i in range(n_ops):
            drv.write_reg(1, i)
            drv.write_reg(2, 1000 + i)
            drv.execute(ins.add(3, 1, 2))
            assert drv.read_reg(3) == 1000 + 2 * i
        drv.run_until_quiet()
        assert drv.engine.stats.retransmits > 0
        link = drv.soc.link
        assert (link.downstream.fault_stats.faults_injected
                + link.upstream.fault_stats.faults_injected) > 0


class TestXiSortOverLossyLinks:
    @pytest.mark.parametrize("channel", PRESETS)
    def test_sort_identical_to_fault_free(self, channel):
        registry = default_registry()
        registry.register(Opcode.XISORT, xisort_factory(n_cells=32))
        session = Session(build_system(registry=registry,
                                       **_lossy(channel, seed=47)))
        accel = XiSortAccelerator(session)
        if channel is SLOW_PROTOTYPE:
            values = [83, 2, 57, 2, 91, 30]
        else:
            values = [830, 11, 427, 55, 999, 101, 3, 742, 55, 68,
                      214, 906, 1, 333, 87, 500]
        assert accel.sort(values) == sorted(values)
        assert session.driver.engine.stats.retransmits > 0


class TestDeadLinkWorkloads:
    @pytest.mark.parametrize(
        "channel",
        [pytest.param(INTEGRATED, id="integrated"),
         pytest.param(FAST_BUS, id="fast_bus")],
    )
    def test_dead_downstream_raises_link_down(self, channel):
        drv = CoprocessorDriver(build_system(
            channel=channel, reliable=True,
            faults=FaultSpec(seed=7, dead_after_words=10),
        ))
        with pytest.raises(LinkDownError):
            for i in range(6):
                drv.write_reg(1, i)
                assert drv.read_reg(1) == i

    def test_dead_upstream_raises_link_down(self):
        drv = CoprocessorDriver(build_system(
            reliable=True,
            upstream_faults=FaultSpec(seed=7, dead_after_words=6),
        ))
        with pytest.raises(LinkDownError):
            for i in range(6):
                drv.write_reg(1, i)
                assert drv.read_reg(1) == i

"""End-to-end backpressure: a slow upstream channel must stall, not drop.

A GET flood fills the serialiser → transmitter → upstream link path; the
handshaked pipeline must propagate the stall back through the encoder and
execution stage without losing or reordering a single response, and the
downstream direction must keep flowing meanwhile (full duplex).
"""

import pytest

from repro.config import FrameworkConfig
from repro.host import CoprocessorDriver
from repro.isa import instructions as ins
from repro.messages import ChannelSpec, DataRecord
from repro.system import build_system

from repro.messages import INTEGRATED
from repro.system import SystemBuilder

#: a fast write path with a slow readback path — the asymmetric case where
#: the outbound (response) direction is the bottleneck
SLOW_UP = ChannelSpec("slow-up", latency_cycles=4, cycles_per_word=12)


def _asym_system(cfg):
    return SystemBuilder(cfg).with_channel(INTEGRATED, upstream=SLOW_UP).build()


class TestGetFlood:
    def test_flood_is_lossless_and_ordered(self):
        cfg = FrameworkConfig(encoder_fifo_depth=2, transceiver_fifo_depth=2)
        driver = CoprocessorDriver(_asym_system(cfg))
        driver.write_reg(1, 0xABCD)
        n = 24
        for i in range(n):
            driver.execute(ins.get(1, tag=i & 0xFF))
        msgs = driver.wait_for(n, max_cycles=2_000_000)
        assert [m.tag for m in msgs] == list(range(n))
        assert all(isinstance(m, DataRecord) and m.value == 0xABCD for m in msgs)

    def test_pipeline_stalls_rather_than_drops(self):
        cfg = FrameworkConfig(encoder_fifo_depth=2, transceiver_fifo_depth=2)
        system = _asym_system(cfg)
        driver = CoprocessorDriver(system)
        driver.write_reg(1, 7)
        for i in range(10):
            driver.execute(ins.get(1, tag=i))
        # run until the first response lands at the host; by then, later
        # responses must be queued somewhere along the clogged outbound path
        driver.wait_for(1, max_cycles=2_000_000)
        rtm = system.soc.rtm
        occupancy = (
            rtm.encoder.queued
            + rtm.serializer.words_pending
            + system.soc.transmitter.buffered
            + system.soc.link.upstream.in_flight
        )
        assert occupancy > 0  # responses are queued, not vanished
        msgs = driver.wait_for(9, max_cycles=2_000_000)
        assert [m.tag for m in msgs] == list(range(1, 10))

    def test_downstream_keeps_flowing_during_upstream_clog(self):
        cfg = FrameworkConfig(encoder_fifo_depth=2, transceiver_fifo_depth=2)
        system = _asym_system(cfg)
        driver = CoprocessorDriver(system)
        driver.write_reg(1, 1)
        for i in range(6):
            driver.execute(ins.get(1, tag=i))
        # while responses drain slowly, new writes must still land
        driver.write_reg(2, 0x77)
        driver.wait_for(6, max_cycles=2_000_000)
        driver.run_until_quiet(max_cycles=2_000_000)
        assert system.soc.rtm.register_value(2) == 0x77


class TestWideWordBuildUp:
    def test_loadis_builds_wide_constants_end_to_end(self):
        """LOADI + LOADIS chain assembles a 128-bit constant 32 bits at a time."""
        driver = CoprocessorDriver(build_system(FrameworkConfig(word_bits=128)))
        value = 0x0123_4567_89AB_CDEF_FEDC_BA98_7654_3210
        words = [(value >> shift) & 0xFFFF_FFFF for shift in (96, 64, 32, 0)]
        driver.execute(ins.loadi(1, words[0]))
        for w in words[1:]:
            driver.execute(ins.loadis(1, w))
        assert driver.read_reg(1) == value

    def test_loadis_is_read_modify_write_hazard_safe(self):
        """LOADIS reads its own destination: the scoreboard must order the chain."""
        driver = CoprocessorDriver(build_system(FrameworkConfig(word_bits=64)))
        driver.execute(ins.loadi(1, 0xAAAA))
        driver.execute(ins.loadis(1, 0xBBBB))
        # a unit op writing r1 right after must serialise behind the chain
        driver.write_reg(2, 1)
        driver.execute(ins.add(1, 1, 2, dst_flag=1))
        assert driver.read_reg(1) == ((0xAAAA << 32) | 0xBBBB) + 1

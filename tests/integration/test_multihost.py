"""Multi-CPU hosts sharing one coprocessor (paper Fig. 1.1, thesis §1.2).

"...a common interface to hardware accelerators accessible by one or more
host CPUs running standard software."  The coprocessor side is unchanged;
the shared bus arbitrates frames and routes responses by tag namespace.
"""

import pytest

from repro.config import FrameworkConfig
from repro.host import drivers_for
from repro.isa import instructions as ins
from repro.messages.multihost import host_tag, tag_owner
from repro.system import build_multihost_system


@pytest.fixture
def duo():
    system = build_multihost_system(n_hosts=2)
    return system, drivers_for(system)


class TestTagNamespace:
    def test_tag_roundtrip(self):
        for host in range(4):
            for seq in (0, 1, 63):
                assert tag_owner(host_tag(host, seq)) == host

    def test_namespace_bounds(self):
        with pytest.raises(ValueError):
            host_tag(4, 0)


class TestTwoCpus:
    def test_each_cpu_reads_its_own_writes(self, duo):
        system, (cpu0, cpu1) = duo
        # software convention: cpu0 owns r0-r7, cpu1 owns r8-r15
        cpu0.write_reg(1, 111)
        cpu1.write_reg(9, 999)
        assert cpu0.read_reg(1) == 111
        assert cpu1.read_reg(9) == 999

    def test_interleaved_computation(self, duo):
        system, (cpu0, cpu1) = duo
        cpu0.write_reg(1, 10)
        cpu0.write_reg(2, 20)
        cpu1.write_reg(9, 7)
        cpu1.write_reg(10, 5)
        # both CPUs issue before either collects
        cpu0.execute(ins.add(3, 1, 2, dst_flag=1))
        cpu1.execute(ins.sub(11, 9, 10, dst_flag=2))
        assert cpu0.read_reg(3) == 30
        assert cpu1.read_reg(11) == 2

    def test_responses_routed_not_broadcast(self, duo):
        system, (cpu0, cpu1) = duo
        cpu0.write_reg(1, 42)
        assert cpu0.read_reg(1) == 42
        # cpu1 saw nothing of cpu0's data record
        cpu1.pump(5)
        assert cpu1.inbox == []

    def test_frames_never_interleave(self, duo):
        system, (cpu0, cpu1) = duo
        # both CPUs blast multi-word frames simultaneously; if the bus
        # interleaved them mid-frame, the deframer would desynchronise and
        # at least one value would corrupt.
        for i in range(8):
            cpu0.write_reg(1, 0x1000 + i)
            cpu1.write_reg(9, 0x2000 + i)
        cpu0.run_until_quiet()
        assert system.soc.rtm.register_value(1) == 0x1007
        assert system.soc.rtm.register_value(9) == 0x2007

    def test_bus_fairness(self, duo):
        system, (cpu0, cpu1) = duo
        for i in range(6):
            cpu0.write_reg(1, i)
            cpu1.write_reg(9, i)
        cpu0.run_until_quiet()
        f0, f1 = system.soc.bus.frames_forwarded
        assert f0 == f1 == 6

    def test_exceptions_broadcast_to_all_cpus(self, duo):
        system, _ = duo
        cpu0, cpu1 = drivers_for(system, raise_on_exception=False)
        cpu0.execute(ins.dispatch(0x7F, 0))  # illegal opcode
        (msg0,) = cpu0.wait_for(1)
        assert msg0.code  # exception report
        cpu1.pump(2)
        assert any(getattr(m, "code", None) == msg0.code for m in cpu1.inbox)


class TestScaling:
    def test_four_cpus(self):
        system = build_multihost_system(
            FrameworkConfig(n_regs=32), n_hosts=4
        )
        cpus = drivers_for(system)
        for i, cpu in enumerate(cpus):
            cpu.write_reg(i * 8, 100 + i)
        for i, cpu in enumerate(cpus):
            assert cpu.read_reg(i * 8) == 100 + i

    def test_single_host_degenerate(self):
        system = build_multihost_system(n_hosts=1)
        (cpu,) = drivers_for(system)
        cpu.write_reg(1, 5)
        assert cpu.read_reg(1) == 5

    def test_too_many_hosts_rejected(self):
        with pytest.raises(ValueError):
            build_multihost_system(n_hosts=5)


class TestSharedUnitPipelining:
    def test_scoreboard_isolates_cpu_workloads(self, duo):
        """Two CPUs' dependency chains interleave safely in one RTM."""
        system, (cpu0, cpu1) = duo
        cpu0.write_reg(1, 1)
        cpu1.write_reg(9, 1)
        for _ in range(5):
            cpu0.execute(ins.add(1, 1, 1, dst_flag=1))  # r1 doubles
            cpu1.execute(ins.add(9, 9, 9, dst_flag=2))  # r9 doubles
        assert cpu0.read_reg(1) == 32
        assert cpu1.read_reg(9) == 32

"""Experiment F1: the high-level organisation of paper Fig. 1.

A main program (Python standing in for C) runs on the host CPU and
communicates via the interface with a set of functional units; the
coprocessor behaves like "any conventional coprocessor ... treated as a
fast I/O device" (§IV).
"""

import pytest

from repro import Session
from repro.isa import ArithOp, LogicOp


class TestHostProgramUsesCoprocessor:
    def test_mixed_workload_program(self):
        """A small 'application': polynomial evaluation via Horner's rule."""
        # p(x) = 3x^2 + 2x + 1 at x = 7 → 162, using only coprocessor ops
        with Session() as s:
            x = s.put(7)
            acc = s.put(3)
            for coeff in (2, 1):
                # acc = acc*x + coeff, multiplication by repeated addition
                # (the arithmetic unit has no multiplier — a realistic limit)
                partial = s.put(0)
                for _ in range(7):
                    new = s.alloc()
                    s.arith(ArithOp.ADD, partial, acc, dst=new)
                    s.free(partial)
                    partial = new
                c = s.put(coeff)
                acc2 = s.alloc()
                s.arith(ArithOp.ADD, partial, c, dst=acc2)
                s.free(acc, c, partial)
                acc = acc2
            assert s.read(acc) == 3 * 49 + 2 * 7 + 1

    def test_two_units_cooperate(self):
        """Data flows between different functional units via the register file."""
        with Session() as s:
            a, b = s.put(0b1111_0000), s.put(0b1010_1010)
            masked = s.logic(LogicOp.AND, a, b)
            total = s.arith(ArithOp.ADD, masked, b)
            assert s.read(total) == (0b1111_0000 & 0b1010_1010) + 0b1010_1010

    def test_coprocessor_like_io_device(self):
        """The host only ever sends messages and receives records."""
        s = Session()
        d = s.driver
        sent_types = set()
        value = s.compute(ArithOp.SUB, 100, 58)
        assert value == 42
        # all interaction went through the message channel
        assert d.cycles > 0
        assert not d.soc.busy or True
        s.close()

"""Property tests of the handshake discipline: no loss, no duplication,
no reorder under arbitrary ready/valid patterns.

These are the kernel-level guarantees everything else (the RTM pipeline,
the FU protocol, the channel) is built on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import Component, PipeStage, Simulator, SyncFifo

patterns = st.lists(st.booleans(), min_size=20, max_size=60)


class _Harness(Component):
    """Scripted producer/consumer around a device under test."""

    def __init__(self, dut, inp, out, src_pattern, snk_pattern, items):
        super().__init__("h")
        self.child(dut)
        self.inp_s, self.out_s = inp, out
        self.src = list(src_pattern)
        self.snk = list(snk_pattern)
        self.items = list(items)
        self.received: list[int] = []
        self.cursor = 0

        @self.comb(always=True)
        def _drive():
            i = min(self.cursor, len(self.src) - 1)
            offering = bool(self.items) and self.src[i]
            self.inp_s.valid.set(1 if offering else 0)
            if self.items:
                self.inp_s.payload.set(self.items[0])
            self.out_s.ready.set(1 if self.snk[min(self.cursor, len(self.snk) - 1)] else 0)

        @self.seq
        def _tick():
            if self.inp_s.fires():
                self.items.pop(0)
            if self.out_s.fires():
                self.received.append(self.out_s.payload.value)
            self.cursor += 1


def _run(dut_factory, src_pattern, snk_pattern):
    n_items = 12
    items = list(range(100, 100 + n_items))
    dut, inp, out = dut_factory()
    h = _Harness(dut, inp, out, src_pattern, snk_pattern, items)
    sim = Simulator(h)
    sim.reset()
    # run past the patterns, then drain with both sides fully willing
    sim.step(max(len(src_pattern), len(snk_pattern)))
    h.src = [True]
    h.snk = [True]
    h.cursor = 0
    sim.step(n_items * 3 + 20)  # enough for rate-limited devices to drain
    return h.received, items


class TestStreamDiscipline:
    @settings(max_examples=30, deadline=None)
    @given(src=patterns, snk=patterns)
    def test_pipestage_chain_is_lossless_fifo(self, src, snk):
        def factory():
            top = Component("dut")
            a = PipeStage("a", parent=top, width=16)
            b = PipeStage("b", parent=top, width=16)
            b.inp.connect_from(top, a.out)
            return top, a.inp, b.out

        received, _ = _run(factory, src, snk)
        assert received == list(range(100, 112))

    @settings(max_examples=30, deadline=None)
    @given(src=patterns, snk=patterns, depth=st.integers(1, 5))
    def test_fifo_is_lossless_fifo(self, src, snk, depth):
        def factory():
            f = SyncFifo("f", depth=depth, width=16)
            return f, f.inp, f.out

        received, _ = _run(factory, src, snk)
        assert received == list(range(100, 112))

    @settings(max_examples=20, deadline=None)
    @given(src=patterns, snk=patterns)
    def test_channel_delayline_is_lossless_fifo(self, src, snk):
        from repro.messages.channel import ChannelSpec, DelayLine

        def factory():
            line = DelayLine("l", ChannelSpec("t", latency_cycles=3, cycles_per_word=2))
            return line, line.inp, line.out

        received, _ = _run(factory, src, snk)
        assert received == list(range(100, 112))

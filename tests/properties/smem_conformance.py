"""Generic ``__compile_vector__`` conformance harness for kit arrays.

Any smart-memory machine built on :mod:`repro.smem` owes the compiled
backend the same obligations ξ-sort pioneered: the vectorized executor
must be *observably invisible* (event-kernel parity down to cycle counts
and VCD bytes), must leave *zero* interpreted fallbacks at production
sizes, and must certify wheel jumps soundly (fast-forwarding an idle
array never changes behaviour).  This module states those obligations
once, as a :class:`MachineSpec` per machine plus check functions that
:mod:`tests.properties.test_prop_smem_conformance` instantiates over
every in-tree kit client — a new machine joins the suite by adding one
spec entry.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Callable

from repro.hdl.vcd import VcdWriter
from repro.smem import verify_array_contract
from repro.smem.core import DirectMachine

#: exhaustive is the reference oracle; compiled is the backend under test
BACKENDS = ("exhaustive", "event", "compiled")
ARRAY_KINDS = ("vector", "structural")

#: "production size" for the zero-fallback obligation (ISSUE acceptance)
FULL_SIZE = 256


@dataclass(frozen=True)
class MachineSpec:
    """One kit machine under conformance test."""

    name: str
    #: machine factory — (n_cells, array_kind, backend, wheel) → DirectMachine
    make: Callable[..., DirectMachine]
    #: deterministic workload; returns hashable observations
    script: Callable[[DirectMachine], tuple]
    #: cells needed by the script (kept small: exhaustive runs it too)
    script_cells: int = 16


def _make(spec: MachineSpec, *, n_cells=None, array_kind="vector",
          backend=None, wheel=True) -> DirectMachine:
    return spec.make(n_cells or spec.script_cells, array_kind=array_kind,
                     backend=backend, wheel=wheel)


def _scan_script(m) -> tuple:
    m.reset_column()
    m.load([3, 1, 4, 1, 5, 9, 2, 6])
    obs = (m.count(), m.total(), m.minimum(), m.maximum(), m.prefix_sum())
    reads = tuple(m.read_at(i) for i in range(9))
    m.add_all(7)
    return obs + reads + (m.read_at(0), m.total(), m.cycles)


def _hist_script(m) -> tuple:
    m.reset_bins()
    m.load([1, 2, 2, 5, 5, 5, 0, 15])
    m.increment(2)
    obs = (m.total(), m.peak(), m.nonzero_bins())
    reads = tuple(m.read_bin(i) for i in range(6)) + (m.read_bin(99),)
    return obs + reads + (m.cycles,)


def _match_script(m) -> tuple:
    m.reset_machine()
    m.set_pattern(b"aba")
    first = tuple(m.feed(b"abababax"))
    obs = (m.hits(), m.pattern_length())
    m.restart()
    second = tuple(m.feed(b"xxabay"))
    return first + obs + second + (m.hits(), m.cycles)


def _xisort_script(m) -> tuple:
    values = [9, 3, 14, 1, 12, 7, 5, 11]
    out = tuple(m.sort(values))
    return out + (m.imprecise_count(), m.cycles)


def _specs() -> list[MachineSpec]:
    # imported here, not at module top: pulling the machines in at collection
    # time would slow unrelated test files in this directory
    from repro.smem.histogram import DirectHistMachine
    from repro.smem.match import DirectMatchMachine
    from repro.smem.scan import DirectScanMachine
    from repro.xisort import DirectXiSortMachine

    return [
        MachineSpec("scan", DirectScanMachine, _scan_script),
        MachineSpec("histogram", DirectHistMachine, _hist_script),
        MachineSpec("match", DirectMatchMachine, _match_script),
        MachineSpec("xisort", DirectXiSortMachine, _xisort_script),
    ]


def conformance_specs() -> list[MachineSpec]:
    return _specs()


# ---------------------------------------------------------------------------
# the three obligations


def run_traced(spec: MachineSpec, array_kind: str, backend: str,
               wheel: bool = True) -> dict:
    """Run the spec's script under a full-hierarchy VCD observer."""
    m = _make(spec, array_kind=array_kind, backend=backend, wheel=wheel)
    buf = io.StringIO()
    writer = VcdWriter(m.sim, buf)
    obs = spec.script(m)
    writer.detach()
    return {"obs": obs, "now": m.sim.now, "vcd": buf.getvalue()}


def check_event_kernel_parity(spec: MachineSpec, array_kind: str) -> None:
    """Obligation 1: identical observations, cycle counts and VCD bytes
    across the exhaustive, event and compiled kernels."""
    runs = {b: run_traced(spec, array_kind, b) for b in BACKENDS}
    base = runs[BACKENDS[0]]
    for backend in BACKENDS[1:]:
        run = runs[backend]
        assert run["obs"] == base["obs"], (
            f"{spec.name}/{array_kind}: observations diverge between "
            f"{BACKENDS[0]} and {backend}"
        )
        assert run["now"] == base["now"], (
            f"{spec.name}/{array_kind}: cycle counts diverge between "
            f"{BACKENDS[0]} and {backend}"
        )
        assert run["vcd"] == base["vcd"], (
            f"{spec.name}/{array_kind}: VCD bytes diverge between "
            f"{BACKENDS[0]} and {backend}"
        )


def check_zero_fallback(spec: MachineSpec, array_kind: str,
                        n_cells: int = FULL_SIZE) -> None:
    """Obligation 2: at production size every process compiles — no
    interpreted fallbacks, and the whole column is vectorized."""
    m = _make(spec, n_cells=n_cells, array_kind=array_kind, backend="compiled")
    stats = m.sim.kernel_stats
    assert stats.fallback_procs == 0, (
        f"{spec.name}/{array_kind}@{n_cells}: "
        f"{stats.fallback_procs} interpreted fallback(s)"
    )
    assert stats.vectorized_cells == n_cells, (
        f"{spec.name}/{array_kind}@{n_cells}: vectorized "
        f"{stats.vectorized_cells} of {n_cells} cells"
    )
    assert stats.compiled_procs > 0


def check_wheel_jump_safety(spec: MachineSpec, array_kind: str) -> None:
    """Obligation 3: the executor's horizon lets the wheel fast-forward an
    idle array, and jumping never changes the script's observations."""
    jumping = _make(spec, array_kind=array_kind, backend="compiled", wheel=True)
    obs_jump = spec.script(jumping)
    jumping.sim.step(500)  # idle tail: NOP horizon must engage
    assert jumping.sim.kernel_stats.skipped_cycles > 0, (
        f"{spec.name}/{array_kind}: wheel never jumped on an idle array"
    )
    stepping = _make(spec, array_kind=array_kind, backend="compiled", wheel=False)
    obs_step = spec.script(stepping)
    assert obs_jump == obs_step, (
        f"{spec.name}/{array_kind}: wheel jumps changed observable behaviour"
    )


def check_contract(spec: MachineSpec, array_kind: str) -> None:
    """The static kit contract (see repro.smem.contract) holds as built."""
    m = _make(spec, array_kind=array_kind, backend="compiled")
    problems = verify_array_contract(m.core.array)
    assert problems == [], f"{spec.name}/{array_kind}: {problems}"

"""Model-based property tests: kernel primitives vs pure-Python models.

Each device is driven by a random operation script while a trivially
correct Python model shadows it; the observable state must match at every
step.  (The stateful-testing idiom, written as explicit loops for speed.)
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import FrameworkConfig
from repro.fu import WriteSpace
from repro.hdl import Component, Simulator, SyncRam
from repro.rtm import LockManager

# ---------------------------------------------------------------------------
# LockManager vs a set model
# ---------------------------------------------------------------------------

lock_ops = st.lists(
    st.tuples(
        st.sampled_from(["lock", "unlock"]),
        st.sampled_from([WriteSpace.DATA, WriteSpace.FLAG]),
        st.integers(0, 7),
    ),
    min_size=1,
    max_size=40,
)


class _LockHarness(Component):
    def __init__(self):
        super().__init__("lh")
        self.mgr = LockManager("m", FrameworkConfig(n_regs=8, n_flag_regs=8),
                               parent=self)
        self.batch = []

        @self.seq
        def _tick():
            for action, space, reg in self.batch:
                getattr(self.mgr, action)(space, reg)


@settings(max_examples=40, deadline=None)
@given(script=lock_ops, batch_size=st.integers(1, 4))
def test_lockmgr_matches_set_model(script, batch_size):
    h = _LockHarness()
    sim = Simulator(h)
    sim.reset()
    model: set[tuple[WriteSpace, int]] = set()
    i = 0
    while i < len(script):
        batch = script[i : i + batch_size]
        # skip batches that lock and unlock the same register in one edge —
        # architecturally impossible (dispatcher sees the latched state)
        touched = [(s, r) for _, s, r in batch]
        if len(set(touched)) != len(touched):
            i += batch_size
            continue
        h.batch = batch
        sim.step()
        h.batch = []
        for action, space, reg in batch:
            if action == "lock":
                model.add((space, reg))
            else:
                model.discard((space, reg))
        for space in (WriteSpace.DATA, WriteSpace.FLAG):
            for reg in range(8):
                assert h.mgr.is_locked(space, reg) == ((space, reg) in model)
        assert h.mgr.all_free == (not model)
        assert h.mgr.locked_count == len(model)
        i += batch_size


# ---------------------------------------------------------------------------
# SyncRam vs a dict model
# ---------------------------------------------------------------------------

ram_ops = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 0xFFFF)),
    min_size=1,
    max_size=30,
)


class _RamHarness(Component):
    def __init__(self):
        super().__init__("rh")
        self.ram = SyncRam("ram", 8, 16, parent=self)
        self.pending = None

        @self.seq
        def _tick():
            if self.pending is not None:
                self.ram.write(*self.pending)
                self.pending = None


@settings(max_examples=40, deadline=None)
@given(script=ram_ops)
def test_syncram_matches_dict_model(script):
    h = _RamHarness()
    sim = Simulator(h)
    sim.reset()
    model = {i: 0 for i in range(8)}
    for addr, value in script:
        h.pending = (addr, value)
        # old-data semantics: reads during the write cycle see the old value
        sim.settle()
        for a in range(8):
            assert h.ram.read(a) == model[a]
        sim.step()
        model[addr] = value
        for a in range(8):
            assert h.ram.read(a) == model[a]

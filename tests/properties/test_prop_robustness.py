"""Robustness fuzzing: the coprocessor must survive arbitrary channel input.

"The entire system is controlled by the host computer" (§II) — which means
a buggy host must never be able to wedge the coprocessor.  We fire random
word streams (including torn frames and unknown message types) at the
channel and require that the RTM keeps responding to well-formed traffic
afterwards.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.host import CoprocessorDriver
from repro.messages import Reset
from repro.system import build_system

WORDS = st.integers(min_value=0, max_value=(1 << 32) - 1)


def _frame_boundary_flush(driver: CoprocessorDriver) -> None:
    """Force the deframer back to a frame boundary.

    Random garbage may leave a legitimate-looking frame half-received;
    feeding zero-payload RESET headers until the deframer is idle models
    the host's resynchronisation procedure.
    """
    # Header validation is eager, so at most max_length (= 2 here) words of
    # a legitimate-looking garbage frame can be absorbed before resync.
    for _ in range(8):
        if not driver.soc.rtm.msgbuffer._deframer.mid_frame:
            break
        driver.send(Reset())
        driver.pump(4)
    driver.reset_message()  # ensure any halted state is cleared


class TestGarbageTolerance:
    @settings(max_examples=15, deadline=None)
    @given(garbage=st.lists(WORDS, min_size=1, max_size=12))
    def test_survives_random_words(self, garbage):
        driver = CoprocessorDriver(build_system(), raise_on_exception=False)
        driver.soc.host.send_words(garbage)
        driver.pump(len(garbage) * 8 + 50)
        _frame_boundary_flush(driver)
        driver.run_until_quiet(max_cycles=2_000_000)
        driver.inbox.clear()
        # the machine still works
        driver.write_reg(1, 1234)
        assert driver.read_reg(1, max_cycles=2_000_000) == 1234

    @settings(max_examples=10, deadline=None)
    @given(
        garbage=st.lists(WORDS, min_size=1, max_size=6),
        value=st.integers(0, (1 << 32) - 1),
    )
    def test_garbage_then_valid_traffic(self, garbage, value):
        driver = CoprocessorDriver(build_system(), raise_on_exception=False)
        driver.soc.host.send_words(garbage)
        driver.pump(len(garbage) * 8 + 50)
        _frame_boundary_flush(driver)
        driver.inbox.clear()
        driver.write_reg(2, value)
        assert driver.read_reg(2, max_cycles=2_000_000) == value

    def test_unknown_type_reports_bad_message(self):
        from repro.messages import ExceptionCode

        driver = CoprocessorDriver(build_system(), raise_on_exception=False)
        driver.soc.host.send_words([0x7F00_0000])  # type 0x7F, zero payload
        (msg,) = driver.wait_for(1)
        assert msg.code == ExceptionCode.BAD_MESSAGE
        assert msg.info == 0x7F00_0000

    def test_torn_frame_resynchronises(self):
        driver = CoprocessorDriver(build_system(), raise_on_exception=False)
        # a WRITE_REG header claiming 1 payload word, followed by nothing,
        # then a full valid frame that lands as the torn frame's payload
        from repro.messages import make_header, MsgType

        driver.soc.host.send_word(make_header(MsgType.WRITE_REG, 3, 1))
        driver.pump(10)
        _frame_boundary_flush(driver)
        driver.inbox.clear()
        driver.write_reg(1, 77)
        assert driver.read_reg(1) == 77

"""Property-based tests of the whole RTM against a golden software model.

Random instruction programs are executed both on the simulated coprocessor
and on a direct Python interpreter of the ISA; final register files and the
GET result streams must agree.  This is the strongest end-to-end check of
the decoder/dispatcher/scoreboard/arbiter machinery: any hazard mishandled
under any interleaving shows up as a state divergence.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import FrameworkConfig
from repro.fu import arith_datapath, logic_datapath
from repro.host import CoprocessorDriver
from repro.isa import ArithOp, LogicOp, Opcode, instructions as ins
from repro.messages import DataRecord, FlagVector
from repro.system import build_system

N_REGS = 8
N_FLAGS = 4
W = 32
MASK = (1 << W) - 1

REG = st.integers(0, N_REGS - 1)
FLAG = st.integers(0, N_FLAGS - 1)

random_instrs = st.one_of(
    st.builds(lambda d, a, b, f: ins.add(d, a, b, dst_flag=f), REG, REG, REG, FLAG),
    st.builds(lambda d, a, b, f, sf: ins.adc(d, a, b, sf, dst_flag=f),
              REG, REG, REG, FLAG, FLAG),
    st.builds(lambda d, a, b, f: ins.sub(d, a, b, dst_flag=f), REG, REG, REG, FLAG),
    st.builds(lambda d, a, b, f, sf: ins.sbb(d, a, b, sf, dst_flag=f),
              REG, REG, REG, FLAG, FLAG),
    st.builds(lambda d, a, f: ins.inc(d, a, dst_flag=f), REG, REG, FLAG),
    st.builds(lambda d, a, f: ins.dec(d, a, dst_flag=f), REG, REG, FLAG),
    st.builds(lambda d, b, f: ins.neg(d, b, dst_flag=f), REG, REG, FLAG),
    st.builds(lambda a, b, f: ins.cmp(a, b, dst_flag=f), REG, REG, FLAG),
    st.builds(lambda d, a, b, f: ins.and_(d, a, b, dst_flag=f), REG, REG, REG, FLAG),
    st.builds(lambda d, a, b, f: ins.xor(d, a, b, dst_flag=f), REG, REG, REG, FLAG),
    st.builds(lambda d, a, f: ins.not_(d, a, dst_flag=f), REG, REG, FLAG),
    st.builds(ins.copy, REG, REG),
    st.builds(ins.cpflag, FLAG, FLAG),
    st.builds(lambda d, i: ins.loadi(d, i), REG, st.integers(0, MASK)),
    st.builds(lambda f, v: ins.setf(f, v), FLAG, st.integers(0, 255)),
    st.builds(lambda s, t: ins.get(s, t), REG, st.integers(0, 255)),
    st.builds(lambda s, t: ins.getf(s, t), FLAG, st.integers(0, 255)),
    st.just(ins.nop()),
    st.just(ins.fence()),
)


class GoldenModel:
    """Direct sequential interpreter of the ISA (the architectural spec)."""

    def __init__(self):
        self.regs = [0] * N_REGS
        self.flags = [0] * N_FLAGS
        self.outputs: list[tuple[str, int, int]] = []

    def execute(self, instr):
        op = instr.opcode
        if op == Opcode.ARITH:
            r = arith_datapath(instr.variety, self.regs[instr.src1],
                               self.regs[instr.src2], self.flags[instr.src_flag], W)
            if r.writes_data:
                self.regs[instr.dst1] = r.value
            self.flags[instr.dst_flag] = r.flags
        elif op == Opcode.LOGIC:
            v, f = logic_datapath(instr.variety, self.regs[instr.src1],
                                  self.regs[instr.src2], W)
            self.regs[instr.dst1] = v
            self.flags[instr.dst_flag] = f
        elif op == Opcode.COPY:
            self.regs[instr.dst1] = self.regs[instr.src1]
        elif op == Opcode.CPFLAG:
            self.flags[instr.dst_flag] = self.flags[instr.src_flag]
        elif op == Opcode.LOADI:
            self.regs[instr.dst1] = instr.imm & MASK
        elif op == Opcode.SETF:
            self.flags[instr.dst_flag] = instr.variety
        elif op == Opcode.GET:
            self.outputs.append(("data", instr.variety, self.regs[instr.src1]))
        elif op == Opcode.GETF:
            self.outputs.append(("flag", instr.variety, self.flags[instr.src_flag]))
        elif op in (Opcode.NOP, Opcode.FENCE):
            pass
        else:
            raise AssertionError(f"golden model: unexpected opcode {op:#x}")


@settings(max_examples=30, deadline=None)
@given(program=st.lists(random_instrs, min_size=1, max_size=25))
def test_rtm_matches_golden_model(program):
    cfg = FrameworkConfig(n_regs=N_REGS, n_flag_regs=N_FLAGS)
    driver = CoprocessorDriver(build_system(cfg))
    golden = GoldenModel()

    driver.execute_all(program)
    for instr in program:
        golden.execute(instr)
    driver.execute(ins.fence())
    driver.run_until_quiet(max_cycles=200_000)

    # final architectural state agrees
    assert list(driver.soc.rtm.regfile.dump()) == golden.regs
    assert list(driver.soc.rtm.flagfile.dump()) == golden.flags

    # the response stream agrees in order, kind, tag and value
    got = [
        ("data" if isinstance(m, DataRecord) else "flag", m.tag, m.value)
        for m in driver.inbox
        if isinstance(m, (DataRecord, FlagVector))
    ]
    assert got == golden.outputs

"""Property-based tests: instruction and message codecs round-trip."""

from hypothesis import given
from hypothesis import strategies as st

from repro.isa import Instruction, Opcode, decode, disassemble, encode
from repro.isa.assembler import assemble_line
from repro.messages import (
    DataRecord,
    Deframer,
    Exec,
    ExceptionReport,
    FlagVector,
    Framer,
    Halted,
    Reset,
    WriteFlags,
    WriteReg,
)

REG = st.integers(min_value=0, max_value=255)
BYTE = st.integers(min_value=0, max_value=255)
W32 = st.integers(min_value=0, max_value=(1 << 32) - 1)
W64 = st.integers(min_value=0, max_value=(1 << 64) - 1)

register_instrs = st.builds(
    Instruction,
    opcode=st.sampled_from([int(o) for o in Opcode if o not in (Opcode.LOADI, Opcode.LOADIS)]),
    variety=BYTE,
    dst_flag=REG,
    dst1=REG,
    dst2=REG,
    src1=REG,
    src2=REG,
    src_flag=REG,
)

immediate_instrs = st.builds(
    Instruction,
    opcode=st.sampled_from([int(Opcode.LOADI), int(Opcode.LOADIS)]),
    variety=BYTE,
    dst_flag=REG,
    dst1=REG,
    imm=W32,
)


class TestInstructionCodec:
    @given(register_instrs)
    def test_register_roundtrip(self, instr):
        assert decode(encode(instr)) == instr

    @given(immediate_instrs)
    def test_immediate_roundtrip(self, instr):
        assert decode(encode(instr)) == instr

    @given(register_instrs)
    def test_encode_is_deterministic(self, instr):
        assert encode(instr) == encode(instr)

    @given(register_instrs | immediate_instrs)
    def test_word_fits_64_bits(self, instr):
        assert 0 <= encode(instr) < (1 << 64)

    @given(W64)
    def test_decode_encode_partial_inverse(self, word):
        """decode is total on 64-bit words; re-encoding reproduces the word
        except for don't-care bits of immediate formats."""
        instr = decode(word)
        again = decode(encode(instr))
        assert again == instr


DISTINCT_MESSAGES = st.one_of(
    st.builds(Exec, word=W64),
    st.builds(WriteReg, reg=BYTE, value=W32),
    st.builds(WriteFlags, flag_reg=BYTE, value=st.integers(0, 0xFF)),
    st.just(Reset()),
    st.builds(DataRecord, tag=BYTE, value=W32),
    st.builds(FlagVector, tag=BYTE, value=st.integers(0, 0xFF)),
    st.builds(ExceptionReport, code=st.integers(0, 255), info=W32),
    st.just(Halted()),
)


class TestFramingCodec:
    @given(DISTINCT_MESSAGES)
    def test_single_message_roundtrip(self, msg):
        framer, deframer = Framer(1), Deframer(1)
        assert list(deframer.push_all(framer.frame(msg))) == [msg]

    @given(st.lists(DISTINCT_MESSAGES, max_size=20))
    def test_stream_roundtrip(self, msgs):
        framer, deframer = Framer(1), Deframer(1)
        out = list(deframer.push_all(framer.frame_all(msgs)))
        assert out == msgs

    @given(st.integers(1, 8), st.lists(DISTINCT_MESSAGES, max_size=8))
    def test_any_data_width_roundtrip(self, dw, msgs):
        # values must fit the configured width
        bound = (1 << (32 * dw)) - 1
        msgs = [
            WriteReg(m.reg, m.value & bound) if isinstance(m, WriteReg)
            else DataRecord(m.tag, m.value & bound) if isinstance(m, DataRecord)
            else m
            for m in msgs
        ]
        framer, deframer = Framer(dw), Deframer(dw)
        assert list(deframer.push_all(framer.frame_all(msgs))) == msgs


class TestDisassemblerProperty:
    @given(st.sampled_from([
        "add", "sub", "and", "or", "xor", "nand", "nor", "xnor", "andn", "orn",
    ]), st.integers(0, 15), st.integers(0, 15), st.integers(0, 15), st.integers(0, 7))
    def test_assembler_disassembler_galois(self, mn, d, a, b, f):
        text = f"{mn} r{d}, r{a}, r{b} -> f{f}" if f else f"{mn} r{d}, r{a}, r{b}"
        instr = assemble_line(text)
        assert assemble_line(disassemble(instr)) == instr

"""Property tests: time-wheel fast-forward is observably invisible.

The wheel is an optimisation of *when* edges execute, never of *what* the
design computes.  For randomized host programs across all three link
presets — and under seeded fault schedules with the reliable frame format
recovering — a wheel-enabled run must produce:

* identical response values and final architectural state,
* an identical final ``sim.now`` (the currency every benchmark reports),
* identical VCD traces,

compared to a wheel-disabled event run and to the exhaustive reference
kernel.  The suite also asserts the wheel actually *engaged* (skipped
cycles, took jumps) in the wheel-on runs, so the equivalences are exercised
rather than vacuous.

Two tracing regimes are covered, matching the observer contract:

* a plain :class:`VcdWriter` forces per-cycle stepping (its observer
  vetoes jumps), so full-hierarchy dumps are exact in all modes;
* a ``compress_idle=True`` writer over architectural signals rides through
  jumps and must still emit byte-identical VCD text, because the jump's
  precondition is that no non-warped signal can change inside a skip.
"""

from __future__ import annotations

import io
import random

import pytest

from repro.hdl.vcd import VcdWriter
from repro.host import CoprocessorDriver
from repro.isa import instructions as ins
from repro.messages import FaultSpec
from repro.messages.channel import FAST_BUS, INTEGRATED, SLOW_PROTOTYPE
from repro.system import build_system

PRESETS = [
    pytest.param(INTEGRATED, id="integrated"),
    pytest.param(FAST_BUS, id="fast-bus"),
    pytest.param(SLOW_PROTOTYPE, id="slow-prototype"),
]

#: (scheduler, wheel) triples under comparison
MODES = (("exhaustive", False), ("event", False), ("event", True))


def _random_program(driver, rng):
    """A randomized host session; returns every observed response value.

    Mixes register writes, dependent arithmetic, synchronous reads and —
    the point of the exercise — explicit idle stretches, so wheel-on runs
    have provably quiet spans to jump over on every preset.
    """
    results = []
    live = []
    for r in range(1, 5):
        v = rng.randrange(1 << 16)
        driver.write_reg(r, v)
        live.append(r)
    for _ in range(rng.randrange(3, 7)):
        op = rng.choice(("add", "xor", "read", "idle"))
        if op == "add":
            driver.execute(ins.add(rng.randrange(1, 8), rng.choice(live),
                                   rng.choice(live), dst_flag=1))
        elif op == "xor":
            driver.execute(ins.xor(rng.randrange(1, 8), rng.choice(live),
                                   rng.choice(live), dst_flag=2))
        elif op == "read":
            results.append(driver.read_reg(rng.choice(live)))
        else:
            driver.pump(rng.randrange(20, 200))
    driver.pump(rng.randrange(50, 400))
    results.append(driver.read_reg(rng.choice(live)))
    driver.run_until_quiet()
    return results


def _run(channel, scheduler, wheel, seed, *, faults=None, upstream_faults=None,
         reliable=False, vcd="none"):
    """One full system run; returns everything the modes must agree on."""
    system = build_system(
        channel=channel,
        scheduler=scheduler,
        wheel=wheel,
        faults=faults,
        upstream_faults=upstream_faults,
        reliable=reliable,
    )
    sim = system.sim
    buf = io.StringIO()
    writer = None
    if vcd == "full":
        writer = VcdWriter(sim, buf)
    elif vcd == "ports":
        link = system.soc.link
        picked = [
            system.soc.host.tx.valid, system.soc.host.tx.payload,
            system.soc.host.rx.valid, system.soc.host.rx.payload,
            link.downstream.out.valid, link.downstream.out.payload,
            link.upstream.inp.valid, link.upstream.inp.payload,
        ]
        writer = VcdWriter(sim, buf, signals=picked, compress_idle=True)
    driver = CoprocessorDriver(system)
    results = _random_program(driver, random.Random(seed))
    if writer is not None:
        writer.detach()
    regs = [system.soc.rtm.register_value(r) for r in range(1, 8)]
    return {
        "results": results,
        "now": sim.now,
        "regs": regs,
        "vcd": buf.getvalue(),
        "stats": sim.kernel_stats,
    }


def _assert_agree(runs):
    base_mode, base = runs[0]
    for mode, run in runs[1:]:
        for key in ("results", "now", "regs", "vcd"):
            assert run[key] == base[key], (
                f"{key} diverges between {base_mode} and {mode}: "
                f"{base[key]!r} vs {run[key]!r}"
            )


class TestFastForwardEquivalence:
    @pytest.mark.parametrize("channel", PRESETS)
    @pytest.mark.parametrize("seed", [1, 7])
    def test_results_and_cycle_counts_identical(self, channel, seed):
        runs = [
            (f"{sched}/wheel={wheel}",
             _run(channel, sched, wheel, seed))
            for sched, wheel in MODES
        ]
        _assert_agree(runs)
        wheeled = runs[-1][1]["stats"]
        assert wheeled.skipped_cycles > 0, "wheel never engaged"
        assert wheeled.wheel_jumps > 0
        # every simulated cycle was either an executed edge or a skip
        assert wheeled.edge_calls + wheeled.skipped_cycles == runs[-1][1]["now"]
        unwheeled = runs[1][1]["stats"]
        assert unwheeled.skipped_cycles == 0

    @pytest.mark.parametrize("channel", PRESETS)
    def test_full_vcd_identical_across_modes(self, channel):
        # A full-hierarchy VcdWriter is a plain observer: it pins per-cycle
        # stepping, so dumps — hidden pacing counters included — must match
        # byte for byte in every mode.
        runs = [
            (f"{sched}/wheel={wheel}",
             _run(channel, sched, wheel, seed=3, vcd="full"))
            for sched, wheel in MODES
        ]
        _assert_agree(runs)
        assert runs[-1][1]["stats"].skipped_cycles == 0  # observer vetoed

    @pytest.mark.parametrize("channel", PRESETS)
    def test_compressed_vcd_rides_through_jumps(self, channel):
        # Architectural-signal VCD with compress_idle stays byte-identical
        # while the wheel actually skips underneath it.
        runs = [
            (f"{sched}/wheel={wheel}",
             _run(channel, sched, wheel, seed=5, vcd="ports"))
            for sched, wheel in MODES
        ]
        _assert_agree(runs)
        assert runs[-1][1]["stats"].skipped_cycles > 0, "wheel never engaged"

    @pytest.mark.parametrize("channel", [PRESETS[1], PRESETS[2]])
    @pytest.mark.parametrize("seed", [11, 23])
    def test_faulty_reliable_link_identical(self, channel, seed):
        faults = dict(
            faults=FaultSpec(seed=seed, drop_rate=0.03, flip_rate=0.01),
            upstream_faults=FaultSpec(seed=seed + 1, drop_rate=0.03),
            reliable=True,
        )
        runs = [
            (f"{sched}/wheel={wheel}",
             _run(channel, sched, wheel, seed, **faults))
            for sched, wheel in MODES
        ]
        _assert_agree(runs)
        assert runs[-1][1]["stats"].skipped_cycles > 0, "wheel never engaged"

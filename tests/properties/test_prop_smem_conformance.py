"""Kit-wide ``__compile_vector__`` conformance (see smem_conformance).

Every smart-memory machine — ξ-sort plus the three kit-native machines —
is held to the same three obligations on both array kinds:

1. event-kernel parity (observations, cycle counts, VCD bytes identical
   across exhaustive / event / compiled),
2. zero interpreted fallbacks with the full column vectorized at 256
   cells,
3. wheel-jump safety (idle arrays fast-forward, jumps are invisible),

plus the kit's static array contract.  A new machine gets all of this by
adding one ``MachineSpec`` to :func:`smem_conformance.conformance_specs`.
"""

from __future__ import annotations

import pytest

from tests.properties.smem_conformance import (
    ARRAY_KINDS,
    check_contract,
    check_event_kernel_parity,
    check_wheel_jump_safety,
    check_zero_fallback,
    conformance_specs,
)

SPECS = conformance_specs()
SPEC_PARAMS = [pytest.param(s, id=s.name) for s in SPECS]


@pytest.mark.parametrize("kind", ARRAY_KINDS)
@pytest.mark.parametrize("spec", SPEC_PARAMS)
class TestKitConformance:
    def test_event_kernel_parity(self, spec, kind):
        check_event_kernel_parity(spec, kind)

    def test_zero_fallback_at_full_size(self, spec, kind):
        check_zero_fallback(spec, kind)

    def test_wheel_jump_safety(self, spec, kind):
        check_wheel_jump_safety(spec, kind)

    def test_array_contract_holds(self, spec, kind):
        check_contract(spec, kind)

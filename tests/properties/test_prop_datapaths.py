"""Property-based tests of the stateless datapaths against Python semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fu import arith_datapath, logic_datapath
from repro.isa import (
    FLAG_CARRY,
    FLAG_NEGATIVE,
    FLAG_ZERO,
    ArithOp,
    LogicOp,
)

WORDS = st.integers(min_value=0, max_value=(1 << 32) - 1)
CARRIES = st.integers(min_value=0, max_value=0xFF)
W = 32
MASK = (1 << W) - 1


class TestArithProperties:
    @given(a=WORDS, b=WORDS)
    def test_add_mod_2_32(self, a, b):
        r = arith_datapath(ArithOp.ADD, a, b, 0, W)
        assert r.value == (a + b) & MASK
        assert bool(r.flags & FLAG_CARRY) == (a + b > MASK)

    @given(a=WORDS, b=WORDS, f=CARRIES)
    def test_adc_full_adder_identity(self, a, b, f):
        cin = f & FLAG_CARRY
        r = arith_datapath(ArithOp.ADC, a, b, f, W)
        assert r.value == (a + b + cin) & MASK

    @given(a=WORDS, b=WORDS)
    def test_sub_two_complement_identity(self, a, b):
        r = arith_datapath(ArithOp.SUB, a, b, 0, W)
        assert r.value == (a - b) & MASK
        assert bool(r.flags & FLAG_CARRY) == (a >= b)

    @given(a=WORDS, b=WORDS, f=CARRIES)
    def test_sbb_borrow_identity(self, a, b, f):
        borrow = 1 - (f & FLAG_CARRY)
        r = arith_datapath(ArithOp.SBB, a, b, f, W)
        assert r.value == (a - b - borrow) & MASK

    @given(a=WORDS)
    def test_inc_dec_inverse(self, a):
        up = arith_datapath(ArithOp.INC, a, 0, 0, W).value
        down = arith_datapath(ArithOp.DEC, up, 0, 0, W).value
        assert down == a

    @given(b=WORDS)
    def test_neg_is_additive_inverse(self, b):
        n = arith_datapath(ArithOp.NEG, 0, b, 0, W).value
        assert (n + b) & MASK == 0

    @given(a=WORDS, b=WORDS)
    def test_cmp_matches_sub_flags(self, a, b):
        cmp_r = arith_datapath(ArithOp.CMP, a, b, 0, W)
        sub_r = arith_datapath(ArithOp.SUB, a, b, 0, W)
        assert cmp_r.flags == sub_r.flags
        assert not cmp_r.writes_data

    @given(a=WORDS, b=WORDS)
    def test_zero_flag_iff_result_zero(self, a, b):
        r = arith_datapath(ArithOp.ADD, a, b, 0, W)
        assert bool(r.flags & FLAG_ZERO) == (r.value == 0)

    @given(a=WORDS, b=WORDS)
    def test_negative_flag_is_msb(self, a, b):
        r = arith_datapath(ArithOp.ADD, a, b, 0, W)
        assert bool(r.flags & FLAG_NEGATIVE) == bool(r.value >> (W - 1))

    @given(a=WORDS, b=WORDS)
    def test_signed_overflow_definition(self, a, b):
        from repro.isa import FLAG_OVERFLOW

        def signed(x):
            return x - (1 << W) if x >> (W - 1) else x

        r = arith_datapath(ArithOp.ADD, a, b, 0, W)
        true_sum = signed(a) + signed(b)
        assert bool(r.flags & FLAG_OVERFLOW) == not_in_range(true_sum, W)

    @given(
        a=st.integers(min_value=0, max_value=(1 << 128) - 1),
        b=st.integers(min_value=0, max_value=(1 << 128) - 1),
    )
    def test_multiword_chain_equals_bigint(self, a, b):
        """ADC chains over 4 limbs compute exact 128-bit addition."""
        flags = 0
        result = 0
        for i in range(4):
            la = (a >> (32 * i)) & MASK
            lb = (b >> (32 * i)) & MASK
            op = ArithOp.ADD if i == 0 else ArithOp.ADC
            r = arith_datapath(op, la, lb, flags, W)
            flags = r.flags
            result |= r.value << (32 * i)
        carry = 1 if flags & FLAG_CARRY else 0
        assert result | (carry << 128) == a + b


def not_in_range(v: int, width: int) -> bool:
    lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
    return not lo <= v <= hi


class TestLogicProperties:
    @given(a=WORDS, b=WORDS)
    def test_demorgan(self, a, b):
        nand, _ = logic_datapath(int(LogicOp.NAND), a, b, W)
        or_of_nots = (logic_datapath(int(LogicOp.NOT), a, 0, W)[0]
                      | logic_datapath(int(LogicOp.NOT), b, 0, W)[0])
        assert nand == or_of_nots

    @given(a=WORDS)
    def test_not_involution(self, a):
        once, _ = logic_datapath(int(LogicOp.NOT), a, 0, W)
        twice, _ = logic_datapath(int(LogicOp.NOT), once, 0, W)
        assert twice == a

    @given(a=WORDS, b=WORDS)
    def test_xor_xnor_complementary(self, a, b):
        x, _ = logic_datapath(int(LogicOp.XOR), a, b, W)
        xn, _ = logic_datapath(int(LogicOp.XNOR), a, b, W)
        assert x ^ xn == MASK

    @given(a=WORDS, b=WORDS)
    def test_andn_identity(self, a, b):
        v, _ = logic_datapath(int(LogicOp.ANDN), a, b, W)
        assert v == a & ~b & MASK

    @given(a=WORDS)
    def test_pass_preserves(self, a):
        v, _ = logic_datapath(int(LogicOp.PASS), a, 12345, W)
        assert v == a

    @given(a=WORDS, b=WORDS, op=st.sampled_from(list(LogicOp)))
    def test_flags_consistent(self, a, b, op):
        from repro.isa import FLAG_PARITY

        v, flags = logic_datapath(int(op), a, b, W)
        assert bool(flags & FLAG_ZERO) == (v == 0)
        assert bool(flags & FLAG_NEGATIVE) == bool(v >> (W - 1))
        assert bool(flags & FLAG_PARITY) == (bin(v).count("1") % 2 == 0)

"""The lint fixtures' defects are real: fast kernels actually diverge.

The contract rules exist because a dishonest declaration does not crash —
it silently desynchronises the event/wheel kernels from the exhaustive
reference.  This suite closes the loop on two seeded-defect fixtures from
``tests/analysis/lint_fixtures``: the very designs the checker flags are
run under both kernels and shown to disagree, so the rules are pinned to
observable miscomputation, not style.

(The converse — lint-clean designs never diverge — is the kernel
equivalence suite next door.)
"""

from __future__ import annotations

import pytest

from repro.hdl.sim import Simulator

from tests.analysis.lint_fixtures import (
    impure_pure_seq,
    overflow_divergence,
    undeclared_read,
)
from tests.properties.test_prop_kernel_equiv import SCHEDULERS, _dual_trace


def _final_states(build, drive, attr):
    """Run under each scheduler; return {scheduler: getattr(top, attr)}."""
    out = {}
    for scheduler in SCHEDULERS:
        top = build()
        sim = Simulator(top, scheduler=scheduler)
        sim.reset()
        drive(sim, top)
        out[scheduler] = getattr(top, attr)
    return out


def test_hidden_comb_read_diverges_between_kernels():
    """The undeclared-read fixture: the event kernel serves a stale gate.

    ``_gate``'s output depends on hidden ``_mode``, which the edge process
    flips while the tracked input holds still.  The exhaustive kernel
    re-settles everything and sees the flip; the event kernel has no edge
    in ``_gate``'s read set to wake it, so ``out`` goes stale — exactly
    what contract.hidden-comb-read predicts.
    """

    def drive(sim, top):
        top.inp.force(0x0F)   # held constant: only the hidden mode moves
        sim.step(12)          # _mode flips every 4th edge

    traces = _dual_trace(undeclared_read.build, drive)
    vcd_ex, now_ex = traces["exhaustive"]
    vcd_ev, now_ev = traces["event"]
    assert now_ex == now_ev
    assert vcd_ex != vcd_ev, (
        "kernels agreed on the hidden-comb-read fixture — the defect the "
        "rule flags is no longer observable"
    )


def test_hidden_comb_read_stale_value():
    """Pin the direction of the divergence: event holds the pre-flip value."""

    def drive(sim, top):
        top.inp.force(0x0F)
        sim.step(6)  # past the first mode flip (after edge 4)

    finals = {}
    for scheduler in SCHEDULERS:
        top = undeclared_read.build()
        sim = Simulator(top, scheduler=scheduler)
        sim.reset()
        drive(sim, top)
        finals[scheduler] = top.out.value
    assert finals["exhaustive"] == 0xF0   # mode flipped: inverted
    assert finals["event"] == 0x0F        # stale pass-through


@pytest.mark.parametrize("wheel", [False, True], ids=["event", "event+wheel"])
def test_impure_pure_seq_loses_hidden_work(wheel):
    """The impure-pure fixture: dormancy drops the hidden tally.

    Once the countdown stages nothing, the pure-declared process is
    disarmed (and, with the wheel, whole idle spans are skipped), so the
    hidden ``ticks`` counter stops.  The exhaustive kernel runs every edge
    and keeps counting — the lost work contract.impure-pure-seq describes.
    """
    n = 20

    def run(scheduler, use_wheel):
        top = impure_pure_seq.build()
        sim = Simulator(top, scheduler=scheduler, wheel=use_wheel)
        sim.reset()
        sim.step(n)
        assert sim.now == n
        return top.ticks

    exhaustive = run("exhaustive", False)
    fast = run("event", wheel)
    assert exhaustive == n
    assert fast < exhaustive, (
        "the event kernel matched the exhaustive tally — the fixture's "
        "purity violation is no longer load-bearing"
    )


def test_width_overflow_breaks_wheel_congruence():
    """The dataflow.width-overflow fixture: truncation voids batch aging.

    ``SaturatingAger``'s wheel hook fast-forwards with the saturating
    closed form ``min(age + 21n, 100)`` — congruent with per-edge stepping
    only when the register holds ``min(age + 21, 100)`` without loss.  The
    4-bit store the rule flags truncates every edge, so the edge-by-edge
    recurrence is really ``age := (age + 21) & 15`` and the wheel-enabled
    run lands on a different value than the exhaustive oracle.
    """
    n = 12

    def run(scheduler: str, wheel: bool) -> int:
        top = overflow_divergence.build()
        sim = Simulator(top, scheduler=scheduler, wheel=wheel)
        sim.reset()
        sim.step(n)
        assert sim.now == n
        return top.age.value

    exhaustive = run("exhaustive", False)
    stepped_event = run("event", False)
    fast = run("event", True)
    # without the wheel both kernels agree on the truncated recurrence:
    # +21 mod 16 is +5 per edge
    assert exhaustive == stepped_event == (n * 21) % 16
    assert fast != exhaustive, (
        "the wheeled run matched the exhaustive oracle — the fixture's "
        "width overflow no longer breaks the skip hook's congruence"
    )


def test_width_overflow_divergence_also_under_compiled():
    """Same defect, compiled backend: the generated kernel inherits the
    wheel fast-forward path and the same broken closed form."""
    n = 12

    def run(backend: str, wheel: bool) -> int:
        top = overflow_divergence.build()
        sim = Simulator(top, scheduler="event", wheel=wheel, backend=backend)
        sim.reset()
        sim.step(n)
        return top.age.value

    stepped = run("compiled", False)
    fast = run("compiled", True)
    assert stepped == (n * 21) % 16
    assert fast != stepped

"""Property: seeded state upsets may slow the system down or take it down,
but they must never make it lie.

The state-fault acceptance criterion, as a hypothesis chaos test: under any
seeded combination of single/double bit upsets in architectural state
(register file, flag file, lock scoreboard, FU config table) — optionally
stacked on top of a lossy link — every program either completes with the
exact fault-free reference result or raises a ``SimulationError`` subclass
(``MachineCheckError`` when rollback-replay cannot recover).  A read that
returns a wrong value is the one outcome that must be impossible.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import StateFaultSpec
from repro.hdl.errors import SimulationError
from repro.host import CoprocessorDriver
from repro.isa import instructions as ins
from repro.messages import FaultSpec
from repro.system import build_system

N_REGS = 8
W = 32
MASK = (1 << W) - 1

REG = st.integers(0, N_REGS - 1)
VAL = st.integers(0, MASK)

OPS = st.one_of(
    st.tuples(st.just("write"), REG, VAL),
    st.tuples(st.just("add"), REG, REG, REG),
    st.tuples(st.just("xor"), REG, REG, REG),
    st.tuples(st.just("read"), REG),
)


def _apply(drv, model, op):
    kind = op[0]
    if kind == "write":
        _, reg, value = op
        drv.write_reg(reg, value)
        model[reg] = value
    elif kind == "add":
        _, dst, a, b = op
        drv.execute(ins.add(dst, a, b))
        model[dst] = (model[a] + model[b]) & MASK
    elif kind == "xor":
        _, dst, a, b = op
        drv.execute(ins.xor(dst, a, b))
        model[dst] = model[a] ^ model[b]
    else:  # read
        _, reg = op
        assert drv.read_reg(reg) == model[reg]


def _chaos_run(program, **build_kwargs):
    drv = CoprocessorDriver(build_system(lint="off", **build_kwargs))
    model = [0] * N_REGS
    try:
        for op in program:
            _apply(drv, model, op)
        for reg in range(N_REGS):
            assert drv.read_reg(reg) == model[reg]
    except SimulationError:
        pass  # giving up loudly is always an acceptable outcome


class TestCorrectOrRaises:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 2**16 - 1),
        flip=st.floats(0.0, 0.4),
        double=st.floats(0.0, 0.05),
        program=st.lists(OPS, min_size=1, max_size=6),
    )
    def test_state_upsets_correct_or_raises(self, seed, flip, double,
                                            program):
        _chaos_run(
            program,
            state_faults=StateFaultSpec(
                seed=seed, flip_rate=flip, double_rate=double),
        )

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 2**16 - 1),
        drop=st.floats(0.0, 0.04),
        double=st.floats(0.0, 0.04),
        program=st.lists(OPS, min_size=1, max_size=5),
    )
    def test_link_and_state_faults_stacked(self, seed, drop, double, program):
        # both fault domains at once: retransmission must not replay its
        # way into accepting results computed from corrupt state
        _chaos_run(
            program,
            reliable=True,
            faults=FaultSpec(seed=seed, drop_rate=drop),
            state_faults=StateFaultSpec(
                seed=seed + 1, flip_rate=0.2, double_rate=double),
        )

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(0, 2**16 - 1),
        backend=st.sampled_from(["event", "wheel-off", "compiled"]),
        program=st.lists(OPS, min_size=1, max_size=5),
    )
    def test_every_backend_correct_or_raises(self, seed, backend, program):
        kwargs = {}
        if backend == "wheel-off":
            kwargs["wheel"] = False
        elif backend == "compiled":
            kwargs["backend"] = "compiled"
        _chaos_run(
            program,
            state_faults=StateFaultSpec(seed=seed, flip_rate=0.3,
                                        double_rate=0.03),
            **kwargs,
        )


class TestOoOChaos:
    """The out-of-order engine adds state (rename map, issue queue) but no
    new ways to lie: under seeded upsets — optionally stacked on a lossy
    link — an OoO machine still either matches the fault-free reference
    or raises."""

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 2**16 - 1),
        flip=st.floats(0.0, 0.4),
        double=st.floats(0.0, 0.05),
        program=st.lists(OPS, min_size=1, max_size=6),
    )
    def test_ooo_state_upsets_correct_or_raises(self, seed, flip, double,
                                                program):
        _chaos_run(
            program,
            ooo=True,
            state_faults=StateFaultSpec(
                seed=seed, flip_rate=flip, double_rate=double),
        )

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(0, 2**16 - 1),
        drop=st.floats(0.0, 0.04),
        program=st.lists(OPS, min_size=1, max_size=5),
    )
    def test_ooo_link_and_state_faults_stacked(self, seed, drop, program):
        _chaos_run(
            program,
            ooo=True,
            reliable=True,
            faults=FaultSpec(seed=seed, drop_rate=drop),
            state_faults=StateFaultSpec(
                seed=seed + 1, flip_rate=0.2, double_rate=0.03),
        )


class TestBackendInjectionParity:
    """Injection is keyed by architectural write index, not simulator
    pacing, so every backend must draw the identical fate sequence."""

    @settings(max_examples=5, deadline=None)
    @given(
        seed=st.integers(0, 2**16 - 1),
        program=st.lists(OPS, min_size=2, max_size=5),
    )
    def test_injection_counts_match_across_backends(self, seed, program):
        spec = StateFaultSpec(seed=seed, flip_rate=0.3)
        counts = []
        for kwargs in ({}, {"wheel": False}, {"backend": "compiled"}):
            built = build_system(lint="off", state_faults=spec, **kwargs)
            drv = CoprocessorDriver(built)
            model = [0] * N_REGS
            try:
                for op in program:
                    _apply(drv, model, op)
            except SimulationError:
                pass  # an unrecoverable check aborts every backend alike
            stats = built.soc.state_domain.stats
            counts.append((stats.injected_single, stats.injected_double))
        assert counts[0] == counts[1] == counts[2]

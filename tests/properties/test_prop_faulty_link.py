"""Property: a faulty link may slow the system down or take it down, but it
must never make it lie.

Under any seeded fault schedule (drops, bit-flips, duplications at modest
rates; sudden link death), every operation submitted through the reliable
message layer either completes with exactly the fault-free reference result
or raises a ``SimulationError`` subclass (``HostTimeoutError`` /
``LinkDownError``).  Silent corruption — a read that returns the wrong
value — is the one outcome that must be impossible.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl.errors import SimulationError
from repro.host import CoprocessorDriver
from repro.isa import instructions as ins
from repro.messages import FaultSpec
from repro.system import build_system

N_REGS = 8
W = 32
MASK = (1 << W) - 1

REG = st.integers(0, N_REGS - 1)
VAL = st.integers(0, MASK)

# (op, *operands) tuples interpreted by both the driver and the model
OPS = st.one_of(
    st.tuples(st.just("write"), REG, VAL),
    st.tuples(st.just("add"), REG, REG, REG),
    st.tuples(st.just("xor"), REG, REG, REG),
    st.tuples(st.just("read"), REG),
)


def _apply(drv, model, op):
    kind = op[0]
    if kind == "write":
        _, reg, value = op
        drv.write_reg(reg, value)
        model[reg] = value
    elif kind == "add":
        _, dst, a, b = op
        drv.execute(ins.add(dst, a, b))
        model[dst] = (model[a] + model[b]) & MASK
    elif kind == "xor":
        _, dst, a, b = op
        drv.execute(ins.xor(dst, a, b))
        model[dst] = model[a] ^ model[b]
    else:  # read
        _, reg = op
        assert drv.read_reg(reg) == model[reg]


class TestCorrectOrRaises:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 2**16 - 1),
        drop=st.floats(0.0, 0.05),
        flip=st.floats(0.0, 0.03),
        up_drop=st.floats(0.0, 0.05),
        program=st.lists(OPS, min_size=1, max_size=6),
    )
    def test_lossy_link_correct_or_raises(self, seed, drop, flip, up_drop,
                                          program):
        system = build_system(
            reliable=True,
            faults=FaultSpec(seed=seed, drop_rate=drop, flip_rate=flip),
            upstream_faults=FaultSpec(seed=seed + 1, drop_rate=up_drop),
        )
        drv = CoprocessorDriver(system)
        model = [0] * N_REGS
        try:
            for op in program:
                _apply(drv, model, op)
            # final architectural state agrees with the fault-free reference
            for reg in range(N_REGS):
                assert drv.read_reg(reg) == model[reg]
        except SimulationError:
            pass  # giving up loudly is always an acceptable outcome

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 2**16 - 1),
        dup=st.floats(0.0, 0.05),
        up_flip=st.floats(0.0, 0.03),
        program=st.lists(OPS, min_size=1, max_size=6),
    )
    def test_duplication_and_response_corruption(self, seed, dup, up_flip,
                                                 program):
        system = build_system(
            reliable=True,
            faults=FaultSpec(seed=seed, dup_rate=dup),
            upstream_faults=FaultSpec(seed=seed + 1, flip_rate=up_flip),
        )
        drv = CoprocessorDriver(system)
        model = [0] * N_REGS
        try:
            for op in program:
                _apply(drv, model, op)
            for reg in range(N_REGS):
                assert drv.read_reg(reg) == model[reg]
        except SimulationError:
            pass


class TestDeadLinkNeverHangs:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**16 - 1), dead_after=st.integers(0, 12))
    def test_downstream_death_raises(self, seed, dead_after):
        drv = CoprocessorDriver(build_system(
            reliable=True,
            faults=FaultSpec(seed=seed, dead_after_words=dead_after),
        ))
        # enough traffic to guarantee crossing the death threshold; reads
        # completed before the link dies must still be correct
        with pytest.raises(SimulationError):
            for i in range(4):
                drv.write_reg(1, i)
                assert drv.read_reg(1) == i

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**16 - 1), dead_after=st.integers(0, 8))
    def test_upstream_death_raises(self, seed, dead_after):
        drv = CoprocessorDriver(build_system(
            reliable=True,
            upstream_faults=FaultSpec(seed=seed, dead_after_words=dead_after),
        ))
        with pytest.raises(SimulationError):
            for i in range(4):
                drv.write_reg(2, i)
                assert drv.read_reg(2) == i

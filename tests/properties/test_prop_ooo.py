"""Property: renaming must be invisible in the host result stream.

The paper's §II contract — "the stream of results returned to the
processor will be consistent with the stream of instructions that were
issued" — sharpened into the OoO acceptance criterion: for any program,
the GET/GETF result stream of the renaming machine is byte-identical to
the in-order machine's, on every simulation backend.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.host import CoprocessorDriver
from repro.isa import instructions as ins
from repro.system import build_system

N_REGS = 8
N_FLAGS = 8

REG = st.integers(0, N_REGS - 1)
FLAG = st.integers(0, N_FLAGS - 1)
VAL = st.integers(0, 0xFFFF_FFFF)

# A mix that exercises every hazard the engine reorders around: long-latency
# FP ops sharing the default dst_flag, integer ops, explicit fences, and
# mid-program GET/GETF probes whose stream position is the contract.
OPS = st.one_of(
    st.tuples(st.just("loadi"), REG, VAL),
    st.tuples(st.just("fadd"), REG, REG, REG),
    st.tuples(st.just("fmul"), REG, REG, REG),
    st.tuples(st.just("fmadd"), REG, REG, REG),
    st.tuples(st.just("add"), REG, REG, REG),
    st.tuples(st.just("xor"), REG, REG, REG),
    st.tuples(st.just("get"), REG),
    st.tuples(st.just("getf"), FLAG),
    st.tuples(st.just("fence"),),
)


def _instruction(op):
    kind = op[0]
    if kind == "loadi":
        return ins.loadi(op[1], op[2]), 0
    if kind == "fadd":
        return ins.fadd(op[1], op[2], op[3]), 0
    if kind == "fmul":
        return ins.fmul(op[1], op[2], op[3]), 0
    if kind == "fmadd":
        return ins.fmadd(op[1], op[2], op[3]), 0
    if kind == "add":
        return ins.add(op[1], op[2], op[3]), 0
    if kind == "xor":
        return ins.xor(op[1], op[2], op[3]), 0
    if kind == "get":
        return ins.get(op[1], tag=op[1]), 1
    if kind == "getf":
        return ins.getf(op[1], tag=op[1]), 1
    return ins.fence(), 0


def _result_stream(program, **build_kwargs):
    drv = CoprocessorDriver(
        build_system(lint="off", fp_units=True, **build_kwargs)
    )
    expected = 0
    for op in program:
        instr, yields = _instruction(op)
        drv.execute(instr)
        expected += yields
    # final architectural sweep: every register and flag, tagged by index
    for reg in range(N_REGS):
        drv.execute(ins.get(reg, tag=reg))
    for flag in range(N_FLAGS):
        drv.execute(ins.getf(flag, tag=flag))
    expected += N_REGS + N_FLAGS
    msgs = drv.wait_for(expected)
    return [(type(m).__name__, m.tag, m.value) for m in msgs]


class TestRenamingInvisible:
    @settings(max_examples=10, deadline=None)
    @given(
        backend=st.sampled_from(["event", "wheel-off", "compiled"]),
        program=st.lists(OPS, min_size=1, max_size=10),
    )
    def test_get_stream_byte_identical(self, backend, program):
        kwargs = {}
        if backend == "wheel-off":
            kwargs["wheel"] = False
        elif backend == "compiled":
            kwargs["backend"] = "compiled"
        baseline = _result_stream(program, **kwargs)
        renamed = _result_stream(program, ooo=True, **kwargs)
        assert renamed == baseline

"""Property tests: the event-driven settle scheduler is indistinguishable
from the exhaustive reference kernel at the waveform level.

For every design and stimulus, both schedulers must produce byte-identical
VCD traces (every fixed-width signal, every cycle) and identical cycle
counts.  This is the contract that lets the framework default to the event
kernel: it is an optimisation of *when* processes run, never of *what* the
settled fixpoint is.

Coverage:

* randomized DAG netlists (hypothesis-generated widths, operators, mux
  legs — exercising read-set growth and the dynamic fallback),
* the handshake components everything else is built on (PipeStage chain,
  SyncFifo, the channel DelayLine) under arbitrary ready/valid patterns,
* the ξ-sort smart-memory core running real microprograms,
* the full fig. 4 RTM system executing an instruction burst.
"""

from __future__ import annotations

import io
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import Component, PipeStage, Simulator, SyncFifo
from repro.hdl.vcd import VcdWriter

SCHEDULERS = ("exhaustive", "event")


def _dual_trace(build, drive, reset: bool = True):
    """Run the same design+stimulus under both schedulers; return traces.

    ``build()`` must construct a fresh top component each call (a design is
    claimed by its simulator).  ``drive(sim, top)`` applies the stimulus.
    """
    traces = {}
    for scheduler in SCHEDULERS:
        top = build()
        sim = Simulator(top, scheduler=scheduler)
        if reset:
            sim.reset()
        buf = io.StringIO()
        writer = VcdWriter(sim, buf)
        drive(sim, top)
        writer.detach()
        traces[scheduler] = (buf.getvalue(), sim.now)
    return traces


def _assert_identical(traces):
    vcd_ex, now_ex = traces["exhaustive"]
    vcd_ev, now_ev = traces["event"]
    assert now_ex == now_ev, f"cycle counts diverge: {now_ex} vs {now_ev}"
    assert vcd_ex == vcd_ev, "VCD traces diverge between schedulers"


# -- randomized netlists -----------------------------------------------------


class RandomNetlist(Component):
    """A random synchronous DAG: regs feeding combinational expressions.

    Comb process ``k`` writes ``out[k]`` and may read registers and earlier
    outputs only (acyclic by construction).  Mux-shaped expressions make
    read sets data-dependent, exercising on-the-fly growth and — when a
    selector keeps switching — the dynamic fallback.
    """

    def __init__(self, seed: int, n_regs: int, n_comb: int):
        super().__init__("rand")
        rng = random.Random(seed)
        self.regs = [self.reg(f"r{i}", 8, rng.randrange(256)) for i in range(n_regs)]
        self.outs = []
        for k in range(n_comb):
            out = self.signal(f"o{k}", 8, 0)
            pool = self.regs + self.outs
            srcs = rng.sample(pool, min(len(pool), rng.randint(1, 3)))
            shape = rng.choice(("add", "xor", "mux", "shift"))
            self._make_comb(out, srcs, shape, rng.randrange(256))
            self.outs.append(out)
        for reg in self.regs:
            src = rng.choice(self.outs) if self.outs and rng.random() < 0.7 else reg
            self._make_seq(reg, src, rng.randrange(1, 256))
        if not self.regs:
            self.seq(lambda: None)

    def _make_comb(self, out, srcs, shape, const):
        if shape == "add":
            @self.comb
            def _p(out=out, srcs=srcs, const=const):
                out.set(sum(s.value for s in srcs) + const)
        elif shape == "xor":
            @self.comb
            def _p(out=out, srcs=srcs, const=const):
                acc = const
                for s in srcs:
                    acc ^= s.value
                out.set(acc)
        elif shape == "mux":
            @self.comb
            def _p(out=out, srcs=srcs, const=const):
                # data-dependent leg selection: only one source is read
                sel = srcs[0].bit(0)
                out.set(srcs[-1].value if sel else const)
        else:  # shift
            @self.comb
            def _p(out=out, srcs=srcs, const=const):
                out.set((srcs[0].value << 1) | (const & 1))

    def _make_seq(self, reg, src, const):
        @self.seq
        def _t(reg=reg, src=src, const=const):
            reg.nxt = (src.value + const) & 0xFF


class TestRandomNetlists:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n_regs=st.integers(1, 6),
        n_comb=st.integers(1, 10),
        cycles=st.integers(1, 40),
    )
    def test_random_dag_bit_identical(self, seed, n_regs, n_comb, cycles):
        def drive(sim, top, seed=seed, cycles=cycles):
            rng = random.Random(seed ^ 0x5EED)
            for _ in range(cycles):
                if top.regs and rng.random() < 0.25:
                    rng.choice(top.regs).force(rng.randrange(256))
                sim.step()

        _assert_identical(
            _dual_trace(lambda: RandomNetlist(seed, n_regs, n_comb), drive)
        )


# -- handshake components ----------------------------------------------------


class _ScriptedStream(Component):
    """Producer/consumer with scripted valid/ready patterns around a DUT."""

    def __init__(self, dut, inp, out, src, snk, items):
        super().__init__("h")
        self.child(dut)
        self.inp_s, self.out_s = inp, out
        self.src, self.snk = list(src), list(snk)
        self.items = list(items)
        self.cursor = 0

        @self.comb(always=True)
        def _drive():
            i = min(self.cursor, len(self.src) - 1)
            self.inp_s.valid.set(1 if (self.items and self.src[i]) else 0)
            if self.items:
                self.inp_s.payload.set(self.items[0])
            self.out_s.ready.set(1 if self.snk[min(self.cursor, len(self.snk) - 1)] else 0)

        @self.seq
        def _tick():
            if self.inp_s.fires():
                self.items.pop(0)
            self.cursor += 1


patterns = st.lists(st.booleans(), min_size=10, max_size=40)


class TestHandshakeComponents:
    @settings(max_examples=20, deadline=None)
    @given(src=patterns, snk=patterns)
    def test_pipestage_fifo_chain_bit_identical(self, src, snk):
        def build():
            top = Component("dut")
            a = PipeStage("a", parent=top, width=16)
            f = SyncFifo("f", depth=3, width=16, parent=top)
            f.inp.connect_from(top, a.out)
            return _ScriptedStream(top, a.inp, f.out, src, snk, range(50, 62))

        def drive(sim, top):
            sim.step(max(len(src), len(snk)) + 20)

        _assert_identical(_dual_trace(build, drive))

    @settings(max_examples=15, deadline=None)
    @given(
        src=patterns,
        snk=patterns,
        latency=st.integers(1, 5),
        per_word=st.integers(1, 6),
    )
    def test_channel_delayline_bit_identical(self, src, snk, latency, per_word):
        from repro.messages.channel import ChannelSpec, DelayLine

        def build():
            line = DelayLine(
                "l", ChannelSpec("t", latency_cycles=latency, cycles_per_word=per_word)
            )
            return _ScriptedStream(line, line.inp, line.out, src, snk, range(7, 19))

        def drive(sim, top):
            sim.step(max(len(src), len(snk)) + 12 * (per_word + latency) + 10)

        _assert_identical(_dual_trace(build, drive))


# -- the case-study designs --------------------------------------------------


class TestCaseStudyDesigns:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_xisort_core_bit_identical(self, seed):
        from repro.xisort import XI_FIND_PIVOT, XI_LOAD, XI_RESET, XiSortCore

        values = random.Random(seed).sample(range(1 << 12), 4)

        def build():
            return XiSortCore("xi", n_cells=4, word_bits=16, array_kind="structural")

        def drive(sim, core):
            def run_op(variety, op_a=0, op_b=0):
                core.variety.force(variety)
                core.op_a.force(op_a)
                core.op_b.force(op_b)
                core.start.force(1)
                sim.step()
                core.start.force(0)
                sim.settle()
                guard = 0
                while not core.completed.value:
                    sim.step()
                    sim.settle()
                    guard += 1
                    assert guard < 1000
                sim.step()

            run_op(XI_RESET)
            for v in values:
                run_op(XI_LOAD, v, len(values) - 1)
            run_op(XI_FIND_PIVOT)

        _assert_identical(_dual_trace(build, drive))

    def test_rtm_system_bit_identical(self):
        """Full fig. 4 system: an instruction burst produces the same
        waveform, cycle for cycle, under both schedulers."""
        from repro.analysis import make_system
        from repro.host import CoprocessorDriver
        from repro.isa import instructions as ins

        traces = {}
        for scheduler in SCHEDULERS:
            system = make_system(scheduler=scheduler)
            sim = system.sim
            buf = io.StringIO()
            writer = VcdWriter(sim, buf)
            driver = CoprocessorDriver(system)
            driver.write_reg(1, 3)
            driver.write_reg(2, 5)
            for i in range(8):
                driver.execute(ins.add(3 + i % 4, 1, 2, dst_flag=1))
            driver.execute(ins.fence())
            driver.run_until_quiet()
            writer.detach()
            traces[scheduler] = (buf.getvalue(), sim.now)
        _assert_identical(traces)

"""Property tests: the compiled backend is observably invisible.

``backend="compiled"`` changes *how* processes execute — specialized
straight-line code, value-polled guards, vectorized cell arrays — never
*what* the design computes.  For randomized host programs across all
three link presets, a compiled run must produce:

* identical response values and final architectural state,
* an identical final ``sim.now`` (the currency every benchmark reports),
* identical VCD traces (full-hierarchy and compressed-idle),

compared to the interpreted event kernel and to the exhaustive reference
kernel.  The coprocessor system is deliberately a *fallback-heavy* design
for the compiled front end (dozens of procs with unprovable closures), so
these runs exercise the translated, guarded, unguarded and dynamic paths
together; the ξ-sort tests at the bottom add the vectorized-executor path
on both cell-array kinds.
"""

from __future__ import annotations

import io
import random

import pytest

from repro.hdl.vcd import VcdWriter
from repro.host import CoprocessorDriver
from repro.isa import instructions as ins
from repro.messages import FaultSpec
from repro.messages.channel import FAST_BUS, INTEGRATED, SLOW_PROTOTYPE
from repro.system import build_system

PRESETS = [
    pytest.param(INTEGRATED, id="integrated"),
    pytest.param(FAST_BUS, id="fast-bus"),
    pytest.param(SLOW_PROTOTYPE, id="slow-prototype"),
]

#: backends under comparison — exhaustive is the reference oracle
BACKENDS = ("exhaustive", "event", "compiled")


def _random_program(driver, rng):
    """A randomized host session; returns every observed response value."""
    results = []
    live = []
    for r in range(1, 5):
        v = rng.randrange(1 << 16)
        driver.write_reg(r, v)
        live.append(r)
    for _ in range(rng.randrange(3, 7)):
        op = rng.choice(("add", "xor", "read", "idle"))
        if op == "add":
            driver.execute(ins.add(rng.randrange(1, 8), rng.choice(live),
                                   rng.choice(live), dst_flag=1))
        elif op == "xor":
            driver.execute(ins.xor(rng.randrange(1, 8), rng.choice(live),
                                   rng.choice(live), dst_flag=2))
        elif op == "read":
            results.append(driver.read_reg(rng.choice(live)))
        else:
            driver.pump(rng.randrange(20, 200))
    driver.pump(rng.randrange(50, 400))
    results.append(driver.read_reg(rng.choice(live)))
    driver.run_until_quiet()
    return results


def _run(channel, backend, seed, *, faults=None, upstream_faults=None,
         reliable=False, vcd="none"):
    """One full system run; returns everything the backends must agree on."""
    system = build_system(
        channel=channel,
        backend=backend,
        faults=faults,
        upstream_faults=upstream_faults,
        reliable=reliable,
    )
    sim = system.sim
    buf = io.StringIO()
    writer = None
    if vcd == "full":
        writer = VcdWriter(sim, buf)
    elif vcd == "ports":
        link = system.soc.link
        picked = [
            system.soc.host.tx.valid, system.soc.host.tx.payload,
            system.soc.host.rx.valid, system.soc.host.rx.payload,
            link.downstream.out.valid, link.downstream.out.payload,
            link.upstream.inp.valid, link.upstream.inp.payload,
        ]
        writer = VcdWriter(sim, buf, signals=picked, compress_idle=True)
    driver = CoprocessorDriver(system)
    results = _random_program(driver, random.Random(seed))
    if writer is not None:
        writer.detach()
    regs = [system.soc.rtm.register_value(r) for r in range(1, 8)]
    return {
        "results": results,
        "now": sim.now,
        "regs": regs,
        "vcd": buf.getvalue(),
        "stats": sim.kernel_stats,
    }


def _assert_agree(runs):
    base_mode, base = runs[0]
    for mode, run in runs[1:]:
        for key in ("results", "now", "regs", "vcd"):
            assert run[key] == base[key], (
                f"{key} diverges between {base_mode} and {mode}: "
                f"{base[key]!r} vs {run[key]!r}"
            )


class TestCompiledEquivalence:
    @pytest.mark.parametrize("channel", PRESETS)
    @pytest.mark.parametrize("seed", [1, 7])
    def test_results_and_cycle_counts_identical(self, channel, seed):
        runs = [(b, _run(channel, b, seed)) for b in BACKENDS]
        _assert_agree(runs)
        compiled = runs[-1][1]["stats"]
        # the codegen actually engaged: specialized procs exist, and the
        # fallback paths were exercised too (the SoC is fallback-heavy)
        assert compiled.compiled_procs > 0
        assert compiled.fallback_procs > 0

    @pytest.mark.parametrize("channel", PRESETS)
    def test_full_vcd_identical_across_backends(self, channel):
        runs = [(b, _run(channel, b, seed=3, vcd="full")) for b in BACKENDS]
        _assert_agree(runs)

    @pytest.mark.parametrize("channel", PRESETS)
    def test_compressed_vcd_identical_across_backends(self, channel):
        runs = [(b, _run(channel, b, seed=5, vcd="ports")) for b in BACKENDS]
        _assert_agree(runs)

    @pytest.mark.parametrize("channel", [PRESETS[1], PRESETS[2]])
    @pytest.mark.parametrize("seed", [11, 23])
    def test_faulty_reliable_link_identical(self, channel, seed):
        faults = dict(
            faults=FaultSpec(seed=seed, drop_rate=0.03, flip_rate=0.01),
            upstream_faults=FaultSpec(seed=seed + 1, drop_rate=0.03),
            reliable=True,
        )
        runs = [(b, _run(channel, b, seed, **faults)) for b in BACKENDS]
        _assert_agree(runs)


class TestCompiledVectorizedEquivalence:
    """The vectorized cell-array executor against both interpreted kernels."""

    @pytest.mark.parametrize("kind", ["vector", "structural"])
    @pytest.mark.parametrize("seed", [2, 9])
    def test_sort_traces_identical(self, kind, seed):
        from repro.xisort import DirectXiSortMachine

        values = random.Random(seed).sample(range(1 << 16), 24)
        outcomes = set()
        for backend in BACKENDS:
            m = DirectXiSortMachine(32, array_kind=kind, backend=backend)
            outcomes.add((tuple(m.sort(values)), m.cycles))
        assert len(outcomes) == 1
        out, _cycles = next(iter(outcomes))
        assert list(out) == sorted(values)

    def test_wheel_still_engages_under_compiled(self):
        # An idle ξ-sort array is NOP-wheeled; with the always-proc absorbed
        # into the executor the compiled backend can take wheel jumps the
        # interpreted event kernel cannot.
        from repro.xisort import DirectXiSortMachine

        m = DirectXiSortMachine(16, backend="compiled")
        m.load([3, 1, 2])
        before = m.sim.kernel_stats.skipped_cycles
        m.sim.step(500)
        assert m.sim.kernel_stats.skipped_cycles > before

"""Differential testing of stateful units under random interleaving.

Random operation sequences run through the full coprocessor (five units
sharing the pipeline, scoreboard and write arbiter) while pure-Python
models shadow each unit; the observable state afterwards must agree.
This catches cross-unit interference: a write-arbiter or lock-manager bug
that only appears when stateful and stateless dispatches interleave.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fu.stateful import (
    CAM_CLEAR,
    CAM_DELETE,
    CAM_FLAG_HIT,
    CAM_LOOKUP,
    CAM_STORE,
    HIST_CLEAR,
    HIST_READ,
    HIST_SAMPLE,
    HIST_TOTAL,
    PRNG_NEXT,
    PRNG_SEED,
    cam_factory,
    histogram_factory,
    prng_factory,
    xorshift32,
)
from repro.host import CoprocessorDriver
from repro.isa import instructions as ins
from repro.system import SystemBuilder

HIST, PRNG, CAM = 0x30, 0x31, 0x32
N_BINS, CAPACITY = 8, 4

operations = st.lists(
    st.one_of(
        st.tuples(st.just("hist_sample"), st.integers(0, 255)),
        st.tuples(st.just("hist_clear"), st.just(0)),
        st.tuples(st.just("prng_seed"), st.integers(1, 1 << 31)),
        st.tuples(st.just("prng_next"), st.just(0)),
        st.tuples(st.just("cam_store"), st.tuples(st.integers(0, 2),  # ≤3 keys: no eviction
                                                  st.integers(0, 1000))),
        st.tuples(st.just("cam_delete"), st.integers(0, 2)),
        st.tuples(st.just("arith_add"), st.integers(0, 1000)),
    ),
    min_size=1,
    max_size=30,
)


class GoldenStateful:
    """Pure-Python mirror of the three stateful units + a scratch adder."""

    def __init__(self):
        self.bins = [0] * N_BINS
        self.total = 0
        self.prng = 1
        self.cam: dict[int, int] = {}
        self.acc = 0

    def apply(self, op, arg):
        if op == "hist_sample":
            self.bins[arg % N_BINS] += 1
            self.total += 1
        elif op == "hist_clear":
            self.bins = [0] * N_BINS
            self.total = 0
        elif op == "prng_seed":
            self.prng = arg or 1
        elif op == "prng_next":
            self.prng = xorshift32(self.prng)
        elif op == "cam_store":
            k, v = arg
            self.cam[k] = v
        elif op == "cam_delete":
            self.cam.pop(arg, None)
        elif op == "arith_add":
            self.acc = (self.acc + arg) & 0xFFFF_FFFF


def _build():
    built = (
        SystemBuilder()
        .with_config(n_regs=16)
        .with_unit(HIST, histogram_factory(n_bins=N_BINS))
        .with_unit(PRNG, prng_factory())
        .with_unit(CAM, cam_factory(capacity=CAPACITY))
        .build()
    )
    return CoprocessorDriver(built)


def _issue(driver, op, arg):
    """Translate one model op into coprocessor instructions (no waiting)."""
    if op == "hist_sample":
        driver.write_reg(10, arg)
        driver.execute(ins.dispatch(HIST, HIST_SAMPLE, src1=10))
    elif op == "hist_clear":
        driver.execute(ins.dispatch(HIST, HIST_CLEAR))
    elif op == "prng_seed":
        driver.write_reg(10, arg)
        driver.execute(ins.dispatch(PRNG, PRNG_SEED, src1=10))
    elif op == "prng_next":
        driver.execute(ins.dispatch(PRNG, PRNG_NEXT, dst1=11))
    elif op == "cam_store":
        k, v = arg
        driver.write_reg(10, k)
        driver.write_reg(12, v)
        driver.execute(ins.dispatch(CAM, CAM_STORE, src1=10, src2=12))
    elif op == "cam_delete":
        driver.write_reg(10, arg)
        driver.execute(ins.dispatch(CAM, CAM_DELETE, src1=10))
    elif op == "arith_add":
        driver.write_reg(10, arg)
        driver.execute(ins.add(13, 13, 10, dst_flag=1))


@settings(max_examples=15, deadline=None)
@given(script=operations)
def test_interleaved_stateful_units_match_models(script):
    driver = _build()
    golden = GoldenStateful()
    driver.execute(ins.dispatch(HIST, HIST_CLEAR))
    driver.execute(ins.dispatch(CAM, CAM_CLEAR))
    driver.write_reg(13, 0)  # arith accumulator
    for op, arg in script:
        _issue(driver, op, arg)
        golden.apply(op, arg)
    driver.execute(ins.fence())
    driver.run_until_quiet(max_cycles=500_000)

    # histogram state
    for b in range(N_BINS):
        driver.write_reg(10, b)
        driver.execute(ins.dispatch(HIST, HIST_READ, src1=10, dst1=14))
        assert driver.read_reg(14) == golden.bins[b], f"bin {b}"
    driver.execute(ins.dispatch(HIST, HIST_TOTAL, dst1=14))
    assert driver.read_reg(14) == golden.total

    # CAM state (keys 0..2)
    for k in range(3):
        driver.write_reg(10, k)
        driver.execute(ins.dispatch(CAM, CAM_LOOKUP, src1=10, dst1=14, dst_flag=2))
        hit = driver.read_flags(2) & CAM_FLAG_HIT
        if k in golden.cam:
            assert hit
            assert driver.read_reg(14) == golden.cam[k]
        else:
            assert not hit

    # PRNG state: the next draw must continue the model's sequence
    driver.execute(ins.dispatch(PRNG, PRNG_NEXT, dst1=14))
    assert driver.read_reg(14) == xorshift32(golden.prng)

    # arithmetic accumulator
    assert driver.soc.rtm.register_value(13) == golden.acc

"""Property-based tests of the χ-sort machine against Python's sort."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xisort import DirectXiSortMachine, SoftwareXiSort

distinct_values = st.lists(
    st.integers(min_value=0, max_value=(1 << 20) - 1),
    min_size=1,
    max_size=14,
    unique=True,
)


class TestHardwareSortProperties:
    @settings(max_examples=20, deadline=None)
    @given(values=distinct_values)
    def test_sorts_any_distinct_input(self, values):
        machine = DirectXiSortMachine(max(2, len(values)))
        assert machine.sort(values) == sorted(values)

    @settings(max_examples=15, deadline=None)
    @given(values=distinct_values, data=st.data())
    def test_select_matches_sorted_index(self, values, data):
        k = data.draw(st.integers(0, len(values) - 1))
        machine = DirectXiSortMachine(max(2, len(values)))
        assert machine.select(values, k) == sorted(values)[k]

    @settings(max_examples=10, deadline=None)
    @given(values=distinct_values)
    def test_hw_and_sw_agree(self, values):
        hw = DirectXiSortMachine(max(2, len(values))).sort(values)
        sw = SoftwareXiSort(values).sort()
        assert hw == sw

    @settings(max_examples=10, deadline=None)
    @given(values=distinct_values)
    def test_intervals_are_invariant_preserving(self, values):
        """After every split, each datum's interval still brackets its true rank,
        and all cells of one segment share identical intervals."""
        machine = DirectXiSortMachine(max(2, len(values)))
        machine.reset_array()
        machine.load(values)
        ranks = {v: i for i, v in enumerate(sorted(values))}
        while True:
            pivot = machine.find_pivot()
            if pivot is None:
                break
            machine.split(*pivot)
            for s in machine.core.array.states():
                if s.lower == s.upper == 0xFFFF:
                    continue  # empty sentinel cell
                assert s.lower <= ranks[s.data] <= s.upper, (
                    f"interval <{s.lower},{s.upper}> lost rank {ranks[s.data]} "
                    f"of value {s.data}"
                )
        # termination: everything precise and correctly placed
        for s in machine.core.array.states():
            if s.lower == s.upper == 0xFFFF:
                continue
            assert s.lower == s.upper == ranks[s.data]

    @settings(max_examples=10, deadline=None)
    @given(values=distinct_values)
    def test_split_count_bounded_by_n(self, values):
        """χ-sort performs at most n split rounds (each fixes ≥1 pivot)."""
        machine = DirectXiSortMachine(max(2, len(values)))
        machine.reset_array()
        machine.load(values)
        rounds = 0
        while machine.find_pivot() is not None:
            pivot = machine.find_pivot()
            machine.split(*pivot)
            rounds += 1
            assert rounds <= len(values)

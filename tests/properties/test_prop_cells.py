"""Property-based tests of the SIMD cell semantics and array equivalence."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import Component, Simulator
from repro.xisort import (
    SENTINEL,
    CellCmd,
    CellState,
    StructuralCellArray,
    VectorCellArray,
    cell_step,
)

BOUND = st.integers(min_value=0, max_value=SENTINEL)
DATA = st.integers(min_value=0, max_value=(1 << 32) - 1)

cell_states = st.builds(
    CellState,
    data=DATA,
    lower=BOUND,
    upper=BOUND,
    selected=st.booleans(),
    saved=st.booleans(),
)

MATCH_CMDS = [
    CellCmd.SELECT_IMPRECISE,
    CellCmd.MATCH_DATA_LT,
    CellCmd.MATCH_DATA_EQ,
    CellCmd.MATCH_DATA_GT,
    CellCmd.MATCH_LOWER_BOUND,
    CellCmd.MATCH_UPPER_BOUND,
    CellCmd.MATCH_LOWER_BOUND_I,
    CellCmd.MATCH_UPPER_BOUND_I,
]


class TestCellStepProperties:
    @given(cell_states, st.sampled_from(MATCH_CMDS), DATA)
    def test_matches_only_narrow_selection(self, state, cmd, bcast):
        """Match commands are monotone: they never select a deselected cell."""
        after = cell_step(state, cmd, broadcast=bcast)
        assert not (after.selected and not state.selected)

    @given(cell_states, st.sampled_from(MATCH_CMDS), DATA)
    def test_matches_preserve_payload(self, state, cmd, bcast):
        after = cell_step(state, cmd, broadcast=bcast)
        assert (after.data, after.lower, after.upper) == (
            state.data, state.lower, state.upper
        )

    @given(cell_states)
    def test_save_restore_roundtrip(self, state):
        saved = cell_step(state, CellCmd.SAVE)
        mutated = cell_step(saved, CellCmd.MATCH_DATA_LT, broadcast=0)
        restored = cell_step(mutated, CellCmd.RESTORE)
        assert restored.selected == state.selected

    @given(cell_states, DATA)
    def test_set_bounds_makes_precise(self, state, bcast):
        after = cell_step(state, CellCmd.SET_BOUNDS, broadcast=bcast)
        if state.selected:
            assert not after.imprecise
        else:
            assert (after.lower, after.upper) == (state.lower, state.upper)

    @given(cell_states)
    def test_clear_is_absorbing(self, state):
        assert cell_step(state, CellCmd.CLEAR) == CellState()

    @given(cell_states, st.sampled_from(list(CellCmd)), DATA)
    def test_step_is_total_and_pure(self, state, cmd, bcast):
        if cmd == CellCmd.LOAD:
            return  # requires shift_in wiring
        a = cell_step(state, cmd, broadcast=bcast)
        b = cell_step(state, cmd, broadcast=bcast)
        assert a == b


command_scripts = st.lists(
    st.tuples(
        st.sampled_from([c for c in CellCmd]),
        st.integers(0, 63),     # broadcast
        st.integers(0, 63),     # load_data
        st.integers(0, 15),     # load_lower
        st.integers(0, 15),     # load_upper
    ),
    min_size=1,
    max_size=40,
)


class _Dual(Component):
    def __init__(self, n_cells):
        super().__init__("dual")
        self.vec = VectorCellArray("vec", n_cells, 32, parent=self)
        self.struct = StructuralCellArray("struct", n_cells, 32, parent=self)
        self.script = []

        @self.comb(always=True)
        def _drive():
            cmd, b, ld, ll, lu = (
                self.script[0] if self.script else (CellCmd.NOP, 0, 0, 0, 0)
            )
            for arr in (self.vec, self.struct):
                arr.cmd.set(int(cmd))
                arr.broadcast.set(b)
                arr.load_data.set(ld)
                arr.load_lower.set(ll)
                arr.load_upper.set(lu)

        @self.seq
        def _tick():
            if self.script:
                self.script.pop(0)


class TestArrayEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(script=command_scripts, n_cells=st.integers(1, 5))
    def test_vector_equals_structural_under_any_script(self, script, n_cells):
        """The NumPy hot path is observationally equal to the per-cell netlist."""
        top = _Dual(n_cells)
        sim = Simulator(top)
        sim.reset()
        top.script = list(script)
        sim.step(len(script) + 1)
        sim.settle()
        assert top.vec.states() == top.struct.states()
        assert top.vec.count.value == top.struct.count.value
        assert top.vec.leftmost_found.value == top.struct.leftmost_found.value
        assert top.vec.selected_value.value == top.struct.selected_value.value

"""Unit tests for the framework configuration (the VHDL generics)."""

import pytest

from repro.config import DEFAULT_CONFIG, FrameworkConfig


class TestValidation:
    @pytest.mark.parametrize("bad", [0, 16, 33, 48, -32])
    def test_word_bits_must_be_multiple_of_32(self, bad):
        with pytest.raises(ValueError):
            FrameworkConfig(word_bits=bad)

    @pytest.mark.parametrize("good", [32, 64, 96, 128, 256])
    def test_valid_word_sizes(self, good):
        cfg = FrameworkConfig(word_bits=good)
        assert cfg.data_words == good // 32
        assert cfg.word_mask == (1 << good) - 1

    def test_register_count_bounds(self):
        with pytest.raises(ValueError):
            FrameworkConfig(n_regs=0)
        with pytest.raises(ValueError):
            FrameworkConfig(n_regs=257)
        FrameworkConfig(n_regs=256)  # 8-bit fields: exactly addressable

    def test_flag_reg_bounds(self):
        with pytest.raises(ValueError):
            FrameworkConfig(n_flag_regs=0)

    def test_flag_bits_bounds(self):
        with pytest.raises(ValueError):
            FrameworkConfig(flag_bits=33)


class TestWith:
    def test_with_returns_modified_copy(self):
        cfg = DEFAULT_CONFIG.with_(word_bits=64)
        assert cfg.word_bits == 64
        assert DEFAULT_CONFIG.word_bits == 32

    def test_with_validates(self):
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.with_(word_bits=17)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.word_bits = 64

"""Unit tests for the system builder (the paper's configuration workflow)."""

import pytest

from repro.config import FrameworkConfig
from repro.fu import ArithmeticUnit, FuComputation, MinimalFunctionalUnit
from repro.host import CoprocessorDriver
from repro.isa import Opcode, instructions as ins
from repro.messages import FAST_BUS, SLOW_PROTOTYPE
from repro.system import SystemBuilder, build_system


class TestBuilder:
    def test_defaults(self):
        built = SystemBuilder().build()
        assert built.config.word_bits == 32
        assert built.soc.channel_spec.name == "integrated"
        assert len(built.soc.rtm.units) == 2

    def test_with_config_overrides(self):
        built = SystemBuilder().with_config(word_bits=64, n_regs=32).build()
        assert built.config.word_bits == 64
        assert built.config.n_regs == 32

    def test_with_channel(self):
        built = SystemBuilder().with_channel(SLOW_PROTOTYPE).build()
        assert built.soc.channel_spec is SLOW_PROTOTYPE

    def test_with_units_subset(self):
        built = SystemBuilder().with_units([Opcode.ARITH]).build()
        assert len(built.soc.rtm.units) == 1
        assert isinstance(built.soc.rtm.unit_for(Opcode.ARITH), ArithmeticUnit)

    def test_custom_unit_registration(self):
        class Triple(MinimalFunctionalUnit):
            def compute(self, s):
                return FuComputation(data1=(s.op_a * 3) & 0xFFFF_FFFF)

        built = (
            SystemBuilder()
            .with_unit(0x20, lambda n, w, p: Triple(n, w, p))
            .build()
        )
        driver = CoprocessorDriver(built)
        driver.write_reg(1, 14)
        driver.execute(ins.dispatch(0x20, 0, dst1=2, src1=1))
        assert driver.read_reg(2) == 42

    def test_build_system_convenience(self):
        built = build_system(FrameworkConfig(n_regs=8), channel=FAST_BUS)
        assert built.config.n_regs == 8
        assert built.soc.channel_spec is FAST_BUS


class TestWordSizeGeneric:
    """'The word size used for the register file is adjustable' (§II)."""

    @pytest.mark.parametrize("bits", [32, 64, 128])
    def test_wide_values_round_trip(self, bits):
        built = build_system(FrameworkConfig(word_bits=bits))
        driver = CoprocessorDriver(built)
        value = (1 << (bits - 1)) | 0xABC
        driver.write_reg(1, value)
        assert driver.read_reg(1) == value

    @pytest.mark.parametrize("bits", [64, 96])
    def test_wide_arithmetic(self, bits):
        built = build_system(FrameworkConfig(word_bits=bits))
        driver = CoprocessorDriver(built)
        a = (1 << bits) - 1
        driver.write_reg(1, a)
        driver.write_reg(2, 5)
        driver.execute(ins.add(3, 1, 2, dst_flag=1))
        assert driver.read_reg(3) == 4  # wrapped
        from repro.isa import FLAG_CARRY

        assert driver.read_flags(1) & FLAG_CARRY


class TestBusyTracking:
    def test_quiescent_after_reset(self):
        built = build_system()
        built.sim.settle()
        assert not built.soc.busy

    def test_busy_during_flight(self):
        built = build_system()
        driver = CoprocessorDriver(built)
        driver.write_reg(1, 1)
        driver.pump(1)
        assert built.soc.busy
        driver.run_until_quiet()
        assert not built.soc.busy

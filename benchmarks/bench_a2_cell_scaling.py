"""Experiment A2 — cell-count scaling of the χ-sort machine (thesis §3.3).

Regenerated series across n cells: split-step cycles flat; area linear
(cells) plus ~linear tree; gate depth logarithmic; estimated fmax falling
slowly; which Cyclone-class device the system fits.  Also the simulation-
engineering comparison: the vectorised NumPy array vs the structural
per-cell netlist (design decision 5).
"""

import random
import time

import pytest

from conftest import report
from repro.analysis import (
    CYCLONE_EP1C3_LES,
    CYCLONE_EP1C12_LES,
    CYCLONE_EP1C20_LES,
    area_case_study_system,
    estimate_clock,
    format_table,
    measure_xisort_step_costs,
)
from repro.config import FrameworkConfig
from repro.xisort import DirectXiSortMachine, tree_depth

SIZES = (8, 32, 128, 512)


@pytest.mark.parametrize("n", SIZES)
def test_a2_split_cycles(benchmark, n):
    costs = benchmark.pedantic(lambda: measure_xisort_step_costs(n),
                               rounds=1, iterations=1)
    assert costs.split_cycles == measure_xisort_step_costs(8).split_cycles


def _device(les: int) -> str:
    if les <= CYCLONE_EP1C3_LES:
        return "EP1C3"
    if les <= CYCLONE_EP1C12_LES:
        return "EP1C12"
    if les <= CYCLONE_EP1C20_LES:
        return "EP1C20"
    return "> Cyclone I"


def test_a2_report(benchmark):
    def build():
        cfg = FrameworkConfig()
        rows = []
        for n in SIZES:
            costs = measure_xisort_step_costs(n)
            est = area_case_study_system(cfg, n_cells=n)
            clock = estimate_clock(cfg, n_cells=n)
            rows.append([
                n, costs.split_cycles, tree_depth(n), est.total,
                _device(est.total), round(clock.fmax_mhz, 1),
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    report(
        "A2: χ-sort machine scaling in the cell count",
        format_table(
            ["cells", "split cycles", "tree depth", "total LEs", "smallest device",
             "est. fmax MHz"],
            rows,
            title="cycles flat; area linear; depth log; the paper's 'small "
                  "Cyclone' holds up to a few dozen cells",
        ),
    )
    assert len({r[1] for r in rows}) == 1              # flat cycles
    assert rows[-1][3] > 30 * rows[0][3] / SIZES[-1] * SIZES[0]  # ~linear area
    assert rows[0][4] in ("EP1C3", "EP1C12")


def test_a2_vector_vs_structural_simulation(benchmark):
    """The HPC-Python choice: vectorise the hot loop, keep the netlist as oracle."""

    def build():
        values = random.Random(1).sample(range(1 << 16), 12)
        rows = []
        for kind in ("vector", "structural"):
            t0 = time.perf_counter()
            machine = DirectXiSortMachine(16, array_kind=kind)
            out = machine.sort(values)
            elapsed = time.perf_counter() - t0
            assert out == sorted(values)
            rows.append([kind, machine.cycles, round(elapsed * 1000, 1)])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    report(
        "A2b: simulation engineering — vectorised vs structural cell array "
        "(same cycle counts, different wall-clock)",
        format_table(["implementation", "simulated cycles", "host ms"], rows),
    )
    assert rows[0][1] == rows[1][1], "implementations must be cycle-equivalent"

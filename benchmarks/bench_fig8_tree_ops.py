"""Experiment F8 — the χ-sort tree network (paper Fig. 8 / thesis Fig. 3.9).

"Both operations are associative and can therefore be realised with
logarithmic delay in hardware."  Regenerated series:

* microprogram cycle counts for the tree-using operations (flag count,
  pivot select, retrieval) are flat across n — the log-depth fold fits in
  one clock;
* the price is paid in the clock period: estimated fmax falls ~log n;
* the vectorised simulation of the fold itself scales ~linearly in n
  (NumPy reductions), which is the simulation hot path the HPC guides
  target.
"""

import random
import time

import numpy as np
import pytest

from conftest import report
from repro.analysis import estimate_clock, format_table, measure_xisort_step_costs
from repro.config import FrameworkConfig
from repro.xisort import TreeNetwork, fold_reduce, tree_depth, tree_node_count

SIZES = (16, 64, 256, 1024)


@pytest.mark.parametrize("n", SIZES)
def test_f8_tree_ops_cycles_flat(benchmark, n):
    costs = benchmark.pedantic(lambda: measure_xisort_step_costs(n),
                               rounds=1, iterations=1)
    base = measure_xisort_step_costs(16)
    assert costs.find_pivot_cycles == base.find_pivot_cycles
    assert costs.read_at_cycles == base.read_at_cycles


def test_f8_vectorised_fold_throughput(benchmark):
    rng = np.random.default_rng(1)
    n = 4096
    sel = rng.random(n) < 0.3
    data = rng.integers(0, 1 << 30, n).astype(np.uint64)
    tree = TreeNetwork(n)

    def run():
        return tree.count(sel), tree.leftmost(sel)

    benchmark(run)


def test_f8_fold_matches_structural(benchmark):
    def run():
        rng = random.Random(3)
        n = 257
        sel = [rng.random() < 0.2 for _ in range(n)]
        data = [rng.randrange(1 << 20) for _ in range(n)]
        folded = fold_reduce(sel, data)
        tree = TreeNetwork(n)
        npsel = np.array(sel)
        npdata = np.array(data, dtype=np.uint64)
        assert tree.count(npsel) == folded.count
        assert tree.leftmost(npsel) == folded.leftmost
        return folded.count

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_f8_report(benchmark):
    def build():
        rows = []
        for n in SIZES:
            costs = measure_xisort_step_costs(n)
            clock = estimate_clock(FrameworkConfig(), n_cells=n)
            rows.append([
                n,
                tree_node_count(n),
                tree_depth(n),
                costs.find_pivot_cycles,
                costs.read_at_cycles,
                round(clock.fmax_mhz, 1),
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    report(
        "F8: tree network — logarithmic delay, constant cycles",
        format_table(
            ["cells", "tree nodes", "gate depth", "pivot-select cycles",
             "retrieval cycles", "est. fmax MHz"],
            rows,
            title="cycles flat in n; fmax falls with the log-depth fold "
                  "(the paper's 'logarithmic delay in hardware')",
        ),
    )
    assert len({r[3] for r in rows}) == 1
    assert rows[-1][-1] < rows[0][-1]
    assert rows[-1][2] == rows[0][2] + 6  # 16 → 1024 : +6 levels

"""Experiment F6b — the performance-optimised pipelined skeleton (thesis
Fig. 2.19): one instruction per cycle sustained, FIFO sizing effects, and
graceful degradation when the write arbiter becomes the bottleneck.
"""

import pytest

from conftest import report
from repro.analysis import format_table
from repro.fu import FuComputation, PipelinedFunctionalUnit, UnitOp, run_unit

W = 32
N = 64


class Mac(PipelinedFunctionalUnit):
    """A multiply-accumulate-style deep pipeline."""

    def compute(self, s):
        return FuComputation(data1=(s.op_a * s.op_b + s.flag_in) & 0xFFFF_FFFF)


def _cpi(depth: int, fifo: int | None = None, ack_every: int = 1) -> float:
    ops = [UnitOp(0, i, 3, dst1=1) for i in range(N)]
    tb, cycles = run_unit(
        lambda nm, p: Mac(nm, W, p, pipeline_depth=depth, fifo_depth=fifo),
        ops, ack_every=ack_every,
    )
    assert tb.completed == N
    assert [t.data_value for t in tb.collected] == [(i * 3) & 0xFFFF_FFFF for i in range(N)]
    return cycles / N


@pytest.mark.parametrize("depth", [1, 3, 6])
def test_f6b_depth_sweep(benchmark, depth):
    cpi = benchmark.pedantic(lambda: _cpi(depth), rounds=1, iterations=1)
    # throughput is depth-independent (≈1/cycle); only fill latency grows
    assert cpi == pytest.approx(1.0, abs=0.3)


def test_f6b_arbiter_bound(benchmark):
    cpi = benchmark.pedantic(lambda: _cpi(3, ack_every=4), rounds=1, iterations=1)
    assert cpi == pytest.approx(4.0, abs=0.5)  # drain rate dominates


def test_f6b_report(benchmark):
    def build():
        rows = []
        for depth in (1, 2, 4, 8):
            free = _cpi(depth)
            contended = _cpi(depth, ack_every=3)
            rows.append([depth, depth + 2, round(free, 2), round(contended, 2)])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    report(
        "F6b (thesis Fig. 2.19): pipelined FU — sustained cycles/instruction",
        format_table(
            ["pipeline depth", "FIFO depth", "uncontended", "arbiter 1-in-3"],
            rows,
            title="thesis: 'able to receive a new instruction every clock cycle'; "
                  "FIFOs sized beyond depth keep the pipeline from ever stalling",
        ),
    )
    assert all(r[2] < 1.4 for r in rows)
    assert all(r[3] >= 2.5 for r in rows)

"""Experiment C1 — system speed is bounded by link latency + FPGA clock (§III).

"The speed of the system is determined by two factors: the latency of the
communication interface to the host computer, and the clock speed of the
FPGA.  Our implementation used a prototyping board ... only a very slow
connection ... was available.  However, this is not a limitation of the
approach: there are FPGAs that are tightly integrated with processors,
offering extremely high transfer rates."

Reproduced shapes:
* a single write+GET round trip costs orders of magnitude more cycles over
  the prototyping-class link than over an integrated one;
* for a fixed arithmetic workload, the fraction of time attributable to
  the channel collapses as the link improves;
* in real units (115200-baud serial vs PCIe-class vs integrated) the same
  workload spans ~5 orders of magnitude of wall-clock.
"""

import pytest

from conftest import report
from repro.analysis import (
    DEFAULT_CLOCKS,
    INTEGRATED_LINK,
    PCIE_CLASS_LINK,
    SERIAL_PROTOTYPE_LINK,
    format_table,
    make_system,
    measure_issue_rate,
    roundtrip_cycles,
)
from repro.messages import FAST_BUS, INTEGRATED, SLOW_PROTOTYPE

CHANNELS = (INTEGRATED, FAST_BUS, SLOW_PROTOTYPE)


@pytest.mark.parametrize("channel", CHANNELS, ids=lambda c: c.name)
def test_c1_roundtrip(benchmark, channel):
    cycles = benchmark.pedantic(
        lambda: roundtrip_cycles(make_system(channel=channel)), rounds=1, iterations=1
    )
    assert cycles > 0


def test_c1_report(benchmark):
    def build():
        rows = []
        for channel in CHANNELS:
            rt = roundtrip_cycles(make_system(channel=channel))
            r = measure_issue_rate(make_system(channel=channel), 32)
            rows.append([channel.name, channel.latency_cycles,
                         channel.cycles_per_word, rt,
                         round(r.cycles_per_instruction, 2)])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    report(
        "C1: link dependence — write+GET round trip and sustained instruction "
        "cost (coprocessor cycles)",
        format_table(
            ["link", "latency (cyc)", "cyc/word", "roundtrip", "cycles/instr"],
            rows,
            title="paper: system speed set by interface latency + FPGA clock",
        ),
    )
    by_name = {r[0]: r for r in rows}
    assert by_name["slow-prototype"][3] > 20 * by_name["integrated"][3]
    assert by_name["slow-prototype"][4] > by_name["integrated"][4]


def test_c1_uart_roundtrip(benchmark):
    """C1c: the prototyping link at bit level — a write+GET round trip over
    a real 8N1 UART wire (divisor 2, i.e. the *fastest* possible serial
    clocking) still costs ~2 orders of magnitude more than the integrated
    fabric, purely from serialising 32-bit words to 40-bit frame times."""
    from repro.config import FrameworkConfig
    from repro.hdl import Component, Simulator
    from repro.host import CoprocessorDriver
    from repro.messages.transceiver import HostPort, Receiver, Transmitter
    from repro.messages.uart import UartLink
    from repro.rtm.rtm import RegisterTransferMachine, _connect

    class SerialSoc(Component):
        def __init__(self):
            super().__init__("soc")
            cfg = FrameworkConfig()
            self.config = cfg
            self.host = HostPort("host", parent=self)
            self.link = UartLink("link", divisor=2, parent=self)
            self.receiver = Receiver("receiver", parent=self)
            self.transmitter = Transmitter("transmitter", parent=self)
            self.rtm = RegisterTransferMachine("rtm", cfg, parent=self)
            _connect(self, self.host.tx, self.link.tx_down.inp)
            _connect(self, self.link.rx_down.out, self.receiver.chan)
            _connect(self, self.receiver.out, self.rtm.words_in)
            _connect(self, self.rtm.words_out, self.transmitter.inp)
            _connect(self, self.transmitter.chan, self.link.tx_up.inp)
            _connect(self, self.link.rx_up.out, self.host.rx)

        @property
        def busy(self):
            return bool(self.host.tx_pending or self.link.tx_down.busy
                        or self.link.tx_up.busy)

    def run():
        soc = SerialSoc()
        sim = Simulator(soc)
        sim.reset()

        class Built:
            pass

        built = Built()
        built.soc, built.sim, built.config = soc, sim, soc.config
        d = CoprocessorDriver(built)
        d.write_reg(1, 42)
        start = d.cycles
        assert d.read_reg(1, max_cycles=500_000) == 42
        return d.cycles - start

    cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    integrated = roundtrip_cycles(make_system(channel=INTEGRATED))
    report(
        "C1c: bit-level UART (8N1, divisor 2) vs integrated fabric — one "
        "write+GET round trip",
        format_table(["physical layer", "roundtrip cycles"],
                     [["UART wire", cycles], ["integrated", integrated]]),
    )
    assert cycles > 20 * integrated


def test_c1_real_units_report(benchmark):
    """Analytic model over the paper-era real links (the full 115200-baud
    penalty is recovered analytically; the cycle-accurate presets are
    deliberately 64× milder for simulation tractability)."""

    def build():
        clocks = DEFAULT_CLOCKS
        # workload: ship 256 operands + collect 128 results, compute 512 cycles
        words_each_way = (256 * 2, 128 * 2)
        compute_s = clocks.fpga_seconds(512)
        rows = []
        for link in (SERIAL_PROTOTYPE_LINK, PCIE_CLASS_LINK, INTEGRATED_LINK):
            xfer = link.transfer_seconds(words_each_way[0]) + link.transfer_seconds(
                words_each_way[1]
            )
            total = xfer + compute_s
            rows.append([
                link.name,
                f"{xfer * 1e6:.1f}",
                f"{compute_s * 1e6:.1f}",
                f"{100 * xfer / total:.1f}%",
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    report(
        "C1b: real-unit link models — transfer vs compute time for a 256-operand "
        "workload (µs)",
        format_table(["link", "transfer µs", "compute µs", "link share"], rows),
    )
    serial_share = float(rows[0][3].rstrip("%"))
    integrated_share = float(rows[-1][3].rstrip("%"))
    assert serial_share > 99.0          # prototyping link: entirely link-bound
    assert integrated_share < 70.0      # integrated: compute is a first-order term
    # the serial link costs ~4 orders of magnitude more wall-clock
    assert float(rows[0][1]) > 1e3 * float(rows[-1][1])

"""Experiment C4 — complete χ-sort runs: coprocessor vs software (§IV.B).

Measures whole sorts (and selections) on the simulated machine — core-only
and through the full framework with message traffic — against the software
χ-sort and classic quicksort/quickselect, converted to wall-clock with the
paper's clock model (50 MHz Cyclone vs 2 GHz CPU).

Expected shapes: coprocessor total cycles grow ~n·(split+readout) ≈ O(n)
up to O(n log n) rounds while software χ-sort grows ~n per step × n steps
= O(n²); the speedup therefore widens with n.  Selection touches only one
refinement path on both sides and stays much cheaper than sorting.
"""

import random

import pytest

from conftest import report
from repro.analysis import DEFAULT_CLOCKS, format_table, measure_end_to_end_sort
from repro.host import OpCounter
from repro.xisort import DirectXiSortMachine, SoftwareXiSort, quicksort_counted

SIZES = (8, 32, 128, 512)


def _core_sort_cycles(n: int) -> int:
    values = random.Random(n).sample(range(1 << 20), n)
    machine = DirectXiSortMachine(n)
    out = machine.sort(values)
    assert out == sorted(values)
    return machine.cycles


def _sw_xisort_ops(n: int) -> int:
    values = random.Random(n).sample(range(1 << 20), n)
    sw = SoftwareXiSort(values)
    assert sw.sort() == sorted(values)
    return sw.counter.ops


def _quicksort_ops(n: int) -> int:
    values = random.Random(n).sample(range(1 << 20), n)
    counter = OpCounter()
    quicksort_counted(values, counter)
    return counter.ops


@pytest.mark.parametrize("n", SIZES)
def test_c4_core_sort(benchmark, n):
    cycles = benchmark.pedantic(lambda: _core_sort_cycles(n), rounds=1, iterations=1)
    assert cycles > 0


def test_c4_framework_sort(benchmark):
    cycles, out = benchmark.pedantic(
        lambda: measure_end_to_end_sort(16, 16), rounds=1, iterations=1
    )
    assert out == sorted(out)


def test_c4_report(benchmark):
    clocks = DEFAULT_CLOCKS

    def build():
        rows = []
        for n in SIZES:
            hw = _core_sort_cycles(n)
            sw_xi = _sw_xisort_ops(n)
            sw_qs = _quicksort_ops(n)
            hw_us = clocks.fpga_seconds(hw) * 1e6
            xi_us = clocks.cpu_seconds(sw_xi) * 1e6
            qs_us = clocks.cpu_seconds(sw_qs) * 1e6
            rows.append([n, hw, round(hw_us, 2), sw_xi, round(xi_us, 2),
                         sw_qs, round(qs_us, 2), round(xi_us / hw_us, 2)])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    report(
        "C4: complete χ-sort — coprocessor core vs software (wall-clock model: "
        "50 MHz FPGA, 2 GHz CPU)",
        format_table(
            ["n", "hw cycles", "hw µs", "sw χ-sort ops", "sw µs",
             "quicksort ops", "qs µs", "speedup vs sw χ-sort"],
            rows,
        ),
    )
    speedups = [r[-1] for r in rows]
    assert speedups[-1] > speedups[0], "advantage must widen with n"
    # the crossover falls inside this sweep: hardware wins by n = 512
    assert speedups[-1] > 1.0


def test_c4_framework_overhead_report(benchmark):
    """Framework message/pipeline overhead on top of the bare core."""

    def build():
        rows = []
        for n in (8, 16, 32):
            core = _core_sort_cycles(n)
            full, _ = measure_end_to_end_sort(n, n)
            rows.append([n, core, full, round(full / core, 2)])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    report(
        "C4b: framework overhead — bare ξ-sort core vs full coprocessor path "
        "(instructions, scoreboard, messages)",
        format_table(["n", "core cycles", "full-system cycles", "ratio"], rows,
                     title="the paper: system speed is set by interface latency + "
                           "FPGA clock (§III)"),
    )
    assert all(r[2] > r[1] for r in rows)


def test_c4_selection_vs_sort(benchmark):
    def build():
        n = 32
        values = random.Random(5).sample(range(1 << 20), n)
        m_sort = DirectXiSortMachine(n)
        m_sort.sort(values)
        m_sel = DirectXiSortMachine(n)
        m_sel.select(values, n // 2)
        return m_sort.cycles, m_sel.cycles

    sort_c, sel_c = benchmark.pedantic(build, rounds=1, iterations=1)
    report(
        "C4c: selection refines one path only",
        format_table(["operation", "cycles"],
                     [["full sort (n=32)", sort_c], ["select median (n=32)", sel_c]]),
    )
    assert sel_c < sort_c

"""Experiment E1 — host-engine pipelining: in-flight window vs round trips.

The seed's host API was strictly stop-and-wait: every GET blocked until its
data record came back, so a batch of dependent-free computations paid one
full link round trip each.  The host engine overlaps those round trips up
to its in-flight window.  This benchmark measures the effect in simulated
coprocessor cycles for a dependent-free compute batch across the link
spectrum, asserting identical results at every window.

Expected physics — windowing hides *latency*, never manufactures bandwidth:

* **serial-bridge** is latency-dominated (768-cycle pipe, 12 cycles/word):
  a window >= 4 must cut the compute batch cost by >= 2x.
* **integrated** has almost no latency to hide (2 cycles) — a compute
  batch there is bound by its 10 downstream words/call, so the sweep shows
  only a modest gain.  The round-trip-dominated workload on that link is a
  *read* batch (2 words each way), where windowing again yields >= 2x.
* **slow-prototype** is bandwidth-bound outright (256 cycles/word dwarfs
  its 64-cycle latency): reported honestly at ~1x, not asserted as 2x.
"""

import pytest

from conftest import report
from repro.analysis import engine_counters_for, format_table
from repro.config import FrameworkConfig
from repro.host import Session
from repro.isa import ArithOp
from repro.messages import INTEGRATED, SLOW_PROTOTYPE, ChannelSpec
from repro.system import build_system

#: A 3 Mbaud USB-UART bridge class link at the 50 MHz coprocessor clock,
#: with the same 64x tractability scaling the slow-prototype preset uses:
#: high round-trip latency (USB frame scheduling) but decent streaming
#: bandwidth — the latency-dominated corner of the serial spectrum, where
#: request windowing pays off most.  Local to the benchmark: the preset
#: inventory is part of the public API and pinned by the channel tests.
SERIAL_BRIDGE = ChannelSpec("serial-bridge", latency_cycles=768, cycles_per_word=12)

LINKS = {
    "integrated": INTEGRATED,
    "serial-bridge": SERIAL_BRIDGE,
    "slow-prototype": SLOW_PROTOTYPE,
}

N_CALLS = 16
WINDOWS = (1, 4, 8)
# compute_async parks 3 registers per call until its result streams back,
# so the register file must hold a whole batch: 3 * N_CALLS + slack.
CONFIG = FrameworkConfig(n_regs=64)


def _batch(channel: ChannelSpec, window: int):
    """Run the dependent-free batch; returns (cycles, results, engine stats)."""
    session = Session(build_system(CONFIG, channel=channel, window=window))
    driver = session.driver
    start = driver.cycles
    with session.pipeline() as p:
        futures = [p.compute(ArithOp.ADD, i, 1000 + i) for i in range(N_CALLS)]
    cycles = driver.cycles - start
    results = [f.result() for f in futures]
    return cycles, results, engine_counters_for(driver)


@pytest.mark.parametrize("link_name", list(LINKS))
def test_e1_window_speedup(benchmark, link_name):
    link = LINKS[link_name]

    def run():
        out = {w: _batch(link, w) for w in WINDOWS}
        base_cycles, base_results, _ = out[1]
        for w in WINDOWS[1:]:
            assert out[w][1] == base_results, f"window={w} changed results"
        return {w: base_cycles / out[w][0] for w in WINDOWS}

    speedup = benchmark.pedantic(run, rounds=1, iterations=1)
    if link_name == "serial-bridge":
        # latency-dominated: a window of 4 must at least halve the batch cost
        assert speedup[4] >= 2.0, f"window=4 speedup {speedup[4]:.2f}"
        assert speedup[8] >= speedup[4] * 0.9  # deeper window never hurts
    else:
        # bandwidth-bound (for this 10-words-per-call workload): identical
        # results and a gain, however small, is the honest claim
        assert speedup[4] >= 1.0


def _read_batch(channel: ChannelSpec, window: int):
    """GET-dominated workload: n pre-written registers read back in one batch."""
    session = Session(build_system(CONFIG, channel=channel, window=window))
    driver = session.driver
    for reg in range(N_CALLS):
        driver.write_reg(reg, 3 * reg + 1)
    driver.run_until_quiet()
    start = driver.cycles
    with session.pipeline() as p:
        futures = [p.read(reg) for reg in range(N_CALLS)]
    return driver.cycles - start, [f.result() for f in futures]


def test_e1_integrated_read_overlap(benchmark):
    """Round trips overlap on the integrated link too, once the workload is
    round-trip-dominated: a pure read batch is 2 words each way around the
    full link + RTM latency, and windowing collapses it >= 2x."""

    def run():
        out = {w: _read_batch(INTEGRATED, w) for w in WINDOWS}
        base_cycles, base_results = out[1]
        assert base_results == [3 * reg + 1 for reg in range(N_CALLS)]
        for w in WINDOWS[1:]:
            assert out[w][1] == base_results
        return {w: base_cycles / out[w][0] for w in WINDOWS}

    speedup = benchmark.pedantic(run, rounds=1, iterations=1)
    assert speedup[4] >= 2.0, f"window=4 read speedup {speedup[4]:.2f}"


def test_e1_report(benchmark):
    def build():
        rows = []
        for name, link in LINKS.items():
            cycles = {}
            for w in WINDOWS:
                c, results, stats = _batch(link, w)
                assert results == [1000 + 2 * i for i in range(N_CALLS)]
                cycles[w] = (c, stats)
            base = cycles[1][0]
            for w in WINDOWS:
                c, stats = cycles[w]
                rows.append([
                    name, w, c, round(base / c, 2),
                    stats["in_flight_highwater"], stats["window_stalls"],
                ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    report(
        "E1: host-engine window sweep "
        f"({N_CALLS} dependent-free computes, cycles incl. drain)",
        format_table(
            ["link", "window", "cycles", "speedup", "in-flight hw", "win stalls"],
            rows,
            title="windowing hides round-trip latency; bandwidth-bound links "
                  "(slow-prototype) see little",
        ),
    )
    by_key = {(r[0], r[1]): r[3] for r in rows}
    assert by_key[("serial-bridge", 4)] >= 2.0

"""Experiment A3 — local handshaking vs a global stall (design decision 1).

"Handshaking is used to control transmission of data between pipeline
stages.  This allows local control to stall the transmission when
necessary; there is no global control for stalling the pipeline" (§III).

Two regenerated effects:

* **throughput** — with independently bursty producer and consumer, the
  elastic (handshaked) pipeline buffers phase mismatches and approaches
  min(p, q) transfers/cycle, while a globally stalled pipeline only moves
  when *both* ends are willing in the same cycle (≈ p·q);
* **clock** — the global stall is a wide fan-in net crossing every stage
  and unit, lengthening the critical path (timing model).
"""

import random

import pytest

from conftest import report
from repro.analysis import format_table, rtm_paths
from repro.analysis.timing import PathReport, REG_OVERHEAD_NS, _levels_mux
from repro.config import FrameworkConfig
from repro.hdl import Component, PipeStage, Simulator

DEPTH = 4
ITEMS = 300


class GlobalStallPipeline(Component):
    """A rigid pipeline: every stage advances only when the sink accepts."""

    def __init__(self, name, depth):
        super().__init__(name)
        self.depth = depth
        self.in_valid = self.signal("in_valid", 1, 0)
        self.in_ready = self.signal("in_ready", 1, 0)
        self.in_data = self.signal("in_data", 32, 0)
        self.out_valid = self.signal("out_valid", 1, 0)
        self.out_ready = self.signal("out_ready", 1, 0)
        self.out_data = self.signal("out_data", 32, 0)
        self._full = [self.reg(f"full{i}", 1, 0) for i in range(depth)]
        self._data = [self.reg(f"data{i}", 32, 0) for i in range(depth)]
        self._advance = self.signal("advance", 1, 0)

        @self.comb
        def _drive():
            last_full = self._full[-1].value
            self.out_valid.set(last_full)
            self.out_data.set(self._data[-1].value)
            # the single global stall decision
            advance = (not last_full) or bool(self.out_ready.value)
            self._advance.set(1 if advance else 0)
            self.in_ready.set(1 if advance else 0)

        @self.seq
        def _tick():
            if not self._advance.value:
                return
            for i in reversed(range(1, self.depth)):
                self._full[i].nxt = self._full[i - 1].value
                self._data[i].nxt = self._data[i - 1].value
            self._full[0].nxt = self.in_valid.value
            self._data[0].nxt = self.in_data.value


class ElasticPipeline(Component):
    """The framework's style: chained handshaked stages."""

    def __init__(self, name, depth):
        super().__init__(name)
        self.stages = []
        prev = None
        for i in range(depth):
            st = PipeStage(f"s{i}", parent=self, width=32)
            if prev is not None:
                st.inp.connect_from(self, prev.out)
            self.stages.append(st)
            prev = st
        self.first, self.last = self.stages[0], self.stages[-1]


def _burst_pattern(seed: int, length: int, duty: float) -> list[int]:
    rng = random.Random(seed)
    return [1 if rng.random() < duty else 0 for _ in range(length)]


def _run_elastic(p: float, q: float, items: int = ITEMS) -> int:
    class H(Component):
        def __init__(self):
            super().__init__("h")
            self.pipe = ElasticPipeline("pipe", DEPTH)
            self.child(self.pipe)
            self.sent = 0
            self.got = 0
            self.cycle = 0
            self.src = _burst_pattern(11, 100_000, p)
            self.snk = _burst_pattern(22, 100_000, q)

            @self.comb(always=True)
            def _drive():
                offering = self.sent < items and self.src[self.cycle]
                self.pipe.first.inp.valid.set(1 if offering else 0)
                self.pipe.first.inp.payload.set(self.sent)
                self.pipe.last.out.ready.set(self.snk[self.cycle])

            @self.seq
            def _tick():
                if self.pipe.first.inp.fires():
                    self.sent += 1
                if self.pipe.last.out.fires():
                    self.got += 1
                self.cycle += 1

    top = H()
    sim = Simulator(top)
    sim.run_until(lambda: top.got >= items, max_cycles=100_000)
    return sim.now


def _run_global(p: float, q: float, items: int = ITEMS) -> int:
    class H(Component):
        def __init__(self):
            super().__init__("h")
            self.pipe = GlobalStallPipeline("pipe", DEPTH)
            self.child(self.pipe)
            self.sent = 0
            self.got = 0
            self.cycle = 0
            self.src = _burst_pattern(11, 200_000, p)
            self.snk = _burst_pattern(22, 200_000, q)

            @self.comb(always=True)
            def _drive():
                offering = self.sent < items and self.src[self.cycle]
                self.pipe.in_valid.set(1 if offering else 0)
                self.pipe.in_data.set(self.sent)
                self.pipe.out_ready.set(self.snk[self.cycle])

            @self.seq
            def _tick():
                if self.pipe.in_valid.value and self.pipe.in_ready.value:
                    self.sent += 1
                if self.pipe.out_valid.value and self.pipe.out_ready.value:
                    self.got += 1
                self.cycle += 1

    top = H()
    sim = Simulator(top)
    sim.run_until(lambda: top.got >= items, max_cycles=200_000)
    return sim.now


def _global_stall_fmax(cfg: FrameworkConfig, n_units: int) -> float:
    """Timing model: the global stall net spans all stages and units."""
    paths = list(rtm_paths(cfg, n_units))
    fanin = 6 + n_units  # stages + unit-busy terms feeding one AND tree
    stall = PathReport("global_stall_net", _levels_mux(cfg.n_regs) + _levels_mux(fanin) + 3)
    paths.append(stall)
    worst = max(paths, key=lambda x: x.delay_ns)
    return 1000.0 / worst.delay_ns


def _elastic_fmax(cfg: FrameworkConfig, n_units: int) -> float:
    worst = max(rtm_paths(cfg, n_units), key=lambda x: x.delay_ns)
    return 1000.0 / worst.delay_ns


@pytest.mark.parametrize("style", ["elastic", "global"])
def test_a3_bursty_throughput(benchmark, style):
    run = _run_elastic if style == "elastic" else _run_global
    cycles = benchmark.pedantic(lambda: run(0.7, 0.7), rounds=1, iterations=1)
    assert cycles > 0


def test_a3_report(benchmark):
    def build():
        rows = []
        for p, q in ((0.9, 0.9), (0.7, 0.7), (0.5, 0.9), (0.9, 0.5)):
            e = _run_elastic(p, q)
            g = _run_global(p, q)
            rows.append([f"p={p} q={q}", e, g, round(g / e, 2)])
        cfg = FrameworkConfig()
        clock_rows = []
        for units in (2, 4, 8, 16):
            clock_rows.append([
                units,
                round(_elastic_fmax(cfg, units), 1),
                round(_global_stall_fmax(cfg, units), 1),
            ])
        return rows, clock_rows

    rows, clock_rows = benchmark.pedantic(build, rounds=1, iterations=1)
    report(
        "A3: handshaked (elastic) vs global-stall pipeline",
        format_table(
            ["burstiness", "elastic cycles", "global-stall cycles", "penalty"],
            rows,
            title=f"cycles to move {ITEMS} items through a {DEPTH}-stage pipeline "
                  "with bursty producer/consumer",
        )
        + "\n"
        + format_table(
            ["functional units", "elastic fmax MHz", "global-stall fmax MHz"],
            clock_rows,
            title="the global stall net lengthens the critical path as units are "
                  "added; local handshaking keeps the controller path short (§III)",
        ),
    )
    assert all(r[3] > 1.0 for r in rows), "global stall must cost throughput"
    assert all(c[2] < c[1] for c in clock_rows), "global stall must cost clock"

"""Experiment C2 — functional-unit issue rates (thesis §3.2.2, §2.3.4).

Paper claims reproduced:
* the simple case-study units "are able to accept an instruction every
  second clock cycle" (area-optimised skeleton → 2.0 cycles/instr);
* "this could be improved to a theoretical maximum throughput of one
  instruction every clock cycle by intelligent forwarding of the write
  arbiter acknowledgement signals" (minimal skeleton with ack forwarding
  → ~1.0);
* the performance-optimised pipelined skeleton sustains ~1.0.
"""

import pytest

from conftest import report
from repro.analysis import format_table
from repro.fu import (
    ArithmeticUnit,
    FuComputation,
    MinimalFunctionalUnit,
    PipelinedArithmeticUnit,
    UnitOp,
    run_unit,
)
from repro.isa import ArithOp

N_OPS = 64
W = 32


class _MinimalAdd(MinimalFunctionalUnit):
    def compute(self, s):
        return FuComputation(data1=(s.op_a + s.op_b) & 0xFFFF_FFFF)


def _ops(n=N_OPS):
    return [UnitOp(int(ArithOp.ADD), i, 1, dst1=3, dst_flag=1) for i in range(n)]


def _cpi(factory, ack_every=1) -> float:
    tb, cycles = run_unit(factory, _ops(), ack_every=ack_every)
    assert tb.completed == N_OPS
    return cycles / N_OPS


CONFIGS = {
    "area-optimised (case study)": lambda n, p: ArithmeticUnit(n, W, p),
    "pipelined (Fig 2.19)": lambda n, p: PipelinedArithmeticUnit(n, W, p),
    "minimal + ack fwd (Fig 2.16)": lambda n, p: _MinimalAdd(n, W, p, ack_forwarding=True),
    "minimal, no fwd": lambda n, p: _MinimalAdd(n, W, p, ack_forwarding=False),
}


@pytest.mark.parametrize("name", list(CONFIGS), ids=lambda n: n.split(" ")[0])
def test_c2_issue_rate(benchmark, name):
    factory = CONFIGS[name]
    cpi = benchmark(lambda: _cpi(factory))
    if "area-optimised" in name or "no fwd" in name:
        assert cpi == pytest.approx(2.0, abs=0.2), f"{name}: expected 2 cycles/instr"
    else:
        assert cpi == pytest.approx(1.0, abs=0.2), f"{name}: expected 1 cycle/instr"


def test_c2_report(benchmark):
    def build():
        rows = []
        for name, factory in CONFIGS.items():
            free = _cpi(factory)
            contended = _cpi(factory, ack_every=3)
            rows.append([name, round(free, 3), round(contended, 3)])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    report(
        "C2: unit issue rate (cycles/instruction)",
        format_table(
            ["configuration", "uncontended", "arbiter 1-in-3"],
            rows,
            title="paper: 'every second clock cycle'; 1/cycle with ack forwarding "
                  "or pipelining",
        ),
    )
    assert rows[0][1] == pytest.approx(2.0, abs=0.2)

"""Experiment F1b — several CPUs sharing one coprocessor (paper Fig. 1.1).

"...a common interface to hardware accelerators accessible by one or more
host CPUs" (thesis §1.2).  Regenerated shape: with m CPUs sharing the
channel at frame granularity, each CPU's share of the instruction
bandwidth is ≈1/m (the link is the shared resource), while per-CPU work
remains correct and isolated.
"""

import pytest

from conftest import report
from repro.analysis import format_table
from repro.host import drivers_for
from repro.config import FrameworkConfig
from repro.isa import instructions as ins
from repro.system import build_multihost_system

OPS_PER_CPU = 24


def _run(n_hosts: int) -> tuple[int, list[int]]:
    system = build_multihost_system(FrameworkConfig(n_regs=64), n_hosts=n_hosts)
    cpus = drivers_for(system)
    base = 0
    for i, cpu in enumerate(cpus):
        cpu.write_reg(i * 8, 0)
        cpu.write_reg(i * 8 + 1, 1)
    cpus[0].run_until_quiet()
    start = system.sim.now
    for _ in range(OPS_PER_CPU):
        for i, cpu in enumerate(cpus):
            cpu.execute(ins.add(i * 8, i * 8, i * 8 + 1, dst_flag=i % 4))
    cpus[0].run_until_quiet(max_cycles=2_000_000)
    elapsed = system.sim.now - start
    finals = [system.soc.rtm.register_value(i * 8) for i in range(n_hosts)]
    return elapsed, finals


@pytest.mark.parametrize("n_hosts", [1, 2, 4])
def test_f1b_sharing(benchmark, n_hosts):
    elapsed, finals = benchmark.pedantic(lambda: _run(n_hosts), rounds=1, iterations=1)
    assert finals == [OPS_PER_CPU] * n_hosts  # every CPU's work is intact


def test_f1b_report(benchmark):
    def build():
        rows = []
        for n_hosts in (1, 2, 4):
            elapsed, _ = _run(n_hosts)
            total_ops = OPS_PER_CPU * n_hosts
            rows.append([
                n_hosts,
                total_ops,
                elapsed,
                round(elapsed / total_ops, 2),
                round(elapsed / OPS_PER_CPU, 2),
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    report(
        "F1b (Fig. 1.1): m CPUs sharing one coprocessor over one channel",
        format_table(
            ["CPUs", "total instrs", "cycles", "cycles/instr (aggregate)",
             "cycles per CPU's workload"],
            rows,
            title="aggregate throughput is channel-bound and stays flat; each "
                  "CPU sees ≈1/m of it",
        ),
    )
    # aggregate cycles/instr roughly constant (the channel is the bottleneck)
    aggregate = [r[3] for r in rows]
    assert max(aggregate) < 1.6 * min(aggregate)
    # each CPU's wall-clock grows with the number of sharers
    per_cpu = [r[4] for r in rows]
    assert per_cpu[-1] > 2.5 * per_cpu[0]

"""Experiment R1b — state-fault tolerance: detection latency and recovery cost.

The state-fault stack (ECC shadows + guards + scrubber + machine check +
host checkpoint/rollback-replay) buys "identical or raises" under seeded
bit upsets in architectural state; this benchmark measures what that
insurance costs, in simulated coprocessor cycles, on the standard add
round-trip workload:

* **protection overhead** — the guarded build at zero faults vs the bare
  build: the price of shadow updates, background scrubbing and the
  per-quiescent-point checkpoints.
* **correction cost** — the same workload under a heavy seeded single-bit
  upset rate: singles are corrected in place, results identical, no
  rollbacks.
* **recovery cost** — a pinned double-bit upset forces the full path
  (machine check → rollback → journal replay); the extra cycles are the
  price of the replay, and the detection latency (injection to machine
  check, in cycles) is reported from the fault-domain stats.

Results are recorded in the ``state_faults`` section of
``BENCH_reliability.json``.  ``--quick`` shortens the workload (CI smoke).
"""

import pytest

from conftest import report
from repro.analysis import format_table
from repro.faults import StateFaultSpec
from repro.host import CoprocessorDriver
from repro.isa import instructions as ins
from repro.system import build_system

#: heavy single-upset rate on the register files — every run injects many
#: correctable flips.  Targeted deliberately: the lock scoreboard is one
#: word, so at this rate untargeted flips would accumulate a 2-bit
#: divergence there between queries and escalate to the rollback path
#: (measured separately by the "double" row).
SINGLES = StateFaultSpec(seed=71, flip_rate=0.3,
                         targets=("rtm.regfile", "rtm.flagfile"))


def _double(index):
    return StateFaultSpec(seed=71, schedule=(("rtm.regfile", index, "double"),))


def _run(n_ops, **kwargs):
    drv = CoprocessorDriver(build_system(lint="off", **kwargs))
    results = []
    for i in range(n_ops):
        drv.write_reg(1, i)
        drv.write_reg(2, 7000 + i)
        drv.execute(ins.add(3, 1, 2, dst_flag=1))
        results.append(drv.read_reg(3))
    drv.run_until_quiet()
    built = drv.system
    domain = getattr(built.soc, "state_domain", None)
    return drv.cycles, results, drv.engine.stats, domain


@pytest.fixture
def n_ops(request) -> int:
    return 4 if request.config.getoption("--quick") else 12


def test_r1b_state_fault_cost(benchmark, n_ops):
    def run():
        out = {
            "bare": _run(n_ops),
            "protected": _run(n_ops, state_protection=True),
            "singles": _run(n_ops, state_faults=SINGLES),
            # pin the double a few writes in, past the first checkpoint
            "double": _run(n_ops, state_faults=_double(3)),
        }
        reference = out["bare"][1]
        for name, (_, results, _, _) in out.items():
            assert results == reference, (
                f"{name}: state-fault machinery changed results")
        assert out["singles"][3].stats.injected_single > 0
        assert out["singles"][2].rollbacks == 0
        assert out["double"][2].rollbacks >= 1
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)

    bare_cycles = out["bare"][0]
    rows = []
    for name, (cycles, _, est, domain) in out.items():
        stats = domain.stats if domain is not None else None
        rows.append([
            name, cycles, round(cycles / n_ops, 1),
            round(cycles / bare_cycles, 2),
            stats.corrected if stats else 0,
            est.machine_checks, est.rollbacks, est.replayed,
        ])
    d = out["double"][3].stats.as_dict()
    report(
        f"R1b — state-fault tolerance cost ({n_ops} add round trips)",
        format_table(
            ["build", "cycles", "cycles/op", "vs bare",
             "corrected", "mach checks", "rollbacks", "replayed"],
            rows,
        ) + (
            f"\ndetection latency (double run): mean {d['detect_latency_mean']}"
            f" cycles, max {d['detect_latency_max']} cycles"
        ),
    )

    # protection on a fault-free run is bounded overhead, not a new regime
    assert out["protected"][0] <= bare_cycles * 3.0
    # recovery is bounded: one rollback replays a journal suffix, it does
    # not restart the world (generous: an order of magnitude)
    assert out["double"][0] <= bare_cycles * 10.0

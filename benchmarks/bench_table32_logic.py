"""Experiment T2 — the Table 3.2 logic instruction family.

Same regeneration as T1 for the logic unit's bitwise operations.
"""

import pytest

from conftest import report
from repro.analysis import format_table, make_system
from repro.fu import logic_datapath
from repro.host import CoprocessorDriver
from repro.isa import LogicOp, instructions as ins
from repro.isa.opcodes import Opcode

A, B = 0b1100_1010_1111_0000, 0b1010_0110_0000_1111
MASK = 0xFFFF_FFFF

EXPECTED = {
    LogicOp.AND: A & B,
    LogicOp.OR: A | B,
    LogicOp.XOR: A ^ B,
    LogicOp.NOT: ~A & MASK,
    LogicOp.NAND: ~(A & B) & MASK,
    LogicOp.NOR: ~(A | B) & MASK,
    LogicOp.XNOR: ~(A ^ B) & MASK,
    LogicOp.ANDN: A & ~B & MASK,
    LogicOp.ORN: (A | (~B & MASK)) & MASK,
    LogicOp.PASS: A,
}


def _run_row(op: LogicOp) -> tuple[int, int]:
    driver = CoprocessorDriver(make_system())
    driver.write_reg(1, A)
    driver.write_reg(2, B)
    driver.run_until_quiet()
    start = driver.cycles
    driver.execute(
        ins.dispatch(Opcode.LOGIC, int(op), dst1=3, src1=1, src2=2, dst_flag=1)
    )
    driver.execute(ins.fence())
    driver.run_until_quiet()
    return driver.cycles - start, driver.read_reg(3)


@pytest.mark.parametrize("op", list(LogicOp), ids=lambda o: o.name)
def test_t2_row(benchmark, op):
    cycles, result = benchmark.pedantic(lambda: _run_row(op), rounds=1, iterations=1)
    assert result == EXPECTED[op]


def test_t2_datapath_throughput(benchmark):
    def run():
        acc = 0
        for i in range(1000):
            acc ^= logic_datapath(int(LogicOp.XOR), i, i * 3, 32)[0]
        return acc

    benchmark(run)


def test_t2_report(benchmark):
    def build():
        rows = []
        for op in LogicOp:
            cycles, result = _run_row(op)
            arity = 1 if op in (LogicOp.NOT, LogicOp.PASS) else 2
            rows.append([op.name, f"{int(op):#04x}", arity, cycles, f"{result:#010x}"])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    report(
        "T2 (thesis Table 3.2): logic unit — bitwise operations; "
        f"a={A:#x}, b={B:#x}",
        format_table(["mnemonic", "variety", "inputs", "cycles", "result"], rows),
    )
    assert len({r[3] for r in rows}) <= 2  # uniform cost through one datapath

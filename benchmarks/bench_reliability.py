"""Experiment R1 — reliability layer: goodput vs injected fault rate.

The reliable message layer (sequence-numbered checksummed trailers, NACK +
retransmission, request deadlines) buys correctness on a damaged link; this
benchmark measures what that insurance costs, in simulated coprocessor
cycles, across the channel presets:

* **framing overhead** — a clean link pays one trailer word per frame plus
  checksum bookkeeping; compare plain vs reliable framing at zero faults.
* **recovery overhead** — the same workload at 1% and 2% word-fault rates
  (drops + bit-flips downstream, drops upstream) must complete with results
  identical to the fault-free run; the extra cycles are the price of the
  retransmissions that hid the damage.

Like every benchmark here the workload is deterministic: fault schedules
are seeded, so the numbers are reproducible cycle-for-cycle.
"""

import pytest

from conftest import report
from repro.analysis import format_table
from repro.host import CoprocessorDriver
from repro.isa import instructions as ins
from repro.messages import FAST_BUS, INTEGRATED, SLOW_PROTOTYPE, FaultSpec
from repro.system import build_system

LINKS = {
    "integrated": (INTEGRATED, 20),
    "fast-bus": (FAST_BUS, 20),
    "slow-prototype": (SLOW_PROTOTYPE, 6),   # 256 cycles/word: keep it short
}

#: symmetric word-fault rates per direction (drops + flips down, drops up)
RATES = (0.0, 0.01, 0.02)


def _run(channel, n_ops, rate, reliable=True, seed=71):
    kwargs = dict(channel=channel, reliable=reliable)
    if rate:
        kwargs["faults"] = FaultSpec(seed=seed, drop_rate=rate,
                                     flip_rate=rate / 2)
        kwargs["upstream_faults"] = FaultSpec(seed=seed + 1, drop_rate=rate)
    drv = CoprocessorDriver(build_system(**kwargs))
    results = []
    for i in range(n_ops):
        drv.write_reg(1, i)
        drv.write_reg(2, 7000 + i)
        drv.execute(ins.add(3, 1, 2))
        results.append(drv.read_reg(3))
    drv.run_until_quiet()
    return drv.cycles, results, drv.engine.stats


@pytest.mark.parametrize("link_name", list(LINKS))
def test_r1_goodput_vs_fault_rate(benchmark, link_name):
    channel, n_ops = LINKS[link_name]

    def run():
        plain_cycles, plain_results, _ = _run(channel, n_ops, rate=0.0,
                                              reliable=False)
        out = {rate: _run(channel, n_ops, rate) for rate in RATES}
        clean_cycles, clean_results, _ = out[0.0]
        for rate in RATES:
            assert out[rate][1] == clean_results == plain_results, (
                f"{link_name} @ {rate:.0%}: reliability layer changed results")
        assert out[RATES[-1]][2].retransmits > 0, (
            f"{link_name} @ {RATES[-1]:.0%}: fault rate never exercised "
            "recovery")
        return plain_cycles, out

    plain_cycles, out = benchmark.pedantic(run, rounds=1, iterations=1)

    clean_cycles = out[0.0][0]
    rows = [["plain framing", "0%", plain_cycles,
             round(plain_cycles / n_ops, 1), 1.0, 0, 0]]
    for rate in RATES:
        cycles, _, stats = out[rate]
        rows.append([
            "reliable", f"{rate:.0%}", cycles, round(cycles / n_ops, 1),
            round(cycles / plain_cycles, 2), stats.retransmits, stats.nacks,
        ])
    report(
        f"R1 — reliability cost on {link_name} ({n_ops} add round trips)",
        format_table(
            ["framing", "fault rate", "cycles", "cycles/op",
             "vs plain", "retransmits", "NACKs"],
            rows,
        ),
    )

    # framing overhead on a clean link is bounded: one trailer word per
    # frame on top of 2-3 word frames, plus settle noise
    assert clean_cycles <= plain_cycles * 2.0
    # recovery at 1% keeps the link usable (generous: an order of magnitude)
    assert out[0.01][0] <= clean_cycles * 10

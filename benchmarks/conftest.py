"""Shared benchmark infrastructure.

Each benchmark module measures its experiment with pytest-benchmark and
registers a paper-style table via :func:`report`; the tables are printed in
the terminal summary so ``pytest benchmarks/ --benchmark-only | tee ...``
captures the regenerated figures alongside the timing statistics.
"""

from __future__ import annotations

_REPORTS: list[tuple[str, str]] = []


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="smoke mode: one measurement round per scenario — checks the "
             "benchmark scripts still run end to end without paying for "
             "statistically stable timings (used by the CI smoke job)",
    )


def report(title: str, text: str) -> None:
    """Register a formatted experiment table for the terminal summary."""
    _REPORTS.append((title, text))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    tr = terminalreporter
    tr.section("reproduced experiment tables (paper: Koltes & O'Donnell, IPPS 2010)")
    for title, text in _REPORTS:
        tr.write_line("")
        tr.write_line(f"=== {title} ===")
        for line in text.splitlines():
            tr.write_line(line)
    tr.write_line("")

"""Experiment F5 — the minimal functional-unit skeleton (paper Fig. 5 /
thesis Fig. 2.16), including the ack-forwarding trade-off the thesis calls
out: forwarding doubles throughput but lengthens the critical path (the
timing model quantifies the clock penalty), so the *work rate* in real time
is the interesting comparison.
"""

import pytest

from conftest import report
from repro.analysis import estimate_clock, format_table
from repro.config import FrameworkConfig
from repro.fu import FuComputation, MinimalFunctionalUnit, UnitOp, run_unit

W = 32


class BitReverse(MinimalFunctionalUnit):
    """The Fig. 5 pattern: a pure Boolean function behind output registers."""

    def compute(self, s):
        return FuComputation(data1=int(f"{s.op_a:032b}"[::-1], 2))


def _cpi(forwarding: bool, n=48) -> float:
    ops = [UnitOp(0, i * 2654435761 & 0xFFFF_FFFF, dst1=1) for i in range(n)]
    tb, cycles = run_unit(
        lambda nm, p: BitReverse(nm, W, p, ack_forwarding=forwarding), ops
    )
    assert tb.completed == n
    return cycles / n


@pytest.mark.parametrize("forwarding", [True, False], ids=["fwd", "no-fwd"])
def test_f5_throughput(benchmark, forwarding):
    cpi = benchmark.pedantic(lambda: _cpi(forwarding), rounds=1, iterations=1)
    expected = 1.0 if forwarding else 2.0
    assert cpi == pytest.approx(expected, abs=0.2)


def test_f5_correctness(benchmark):
    def run():
        ops = [UnitOp(0, 0b1, dst1=1), UnitOp(0, 0xFFFF_0000, dst1=2)]
        tb, _ = run_unit(lambda nm, p: BitReverse(nm, W, p), ops)
        return [t.data_value for t in tb.collected]

    values = benchmark.pedantic(run, rounds=1, iterations=1)
    assert values == [1 << 31, 0x0000_FFFF]


def test_f5_report(benchmark):
    def build():
        cfg = FrameworkConfig()
        rows = []
        for fwd in (False, True):
            cpi = _cpi(fwd)
            clock = estimate_clock(cfg, ack_forwarding=fwd)
            ops_per_us = clock.fmax_mhz / cpi
            rows.append([
                "with ack forwarding" if fwd else "registered idle",
                round(cpi, 2),
                round(clock.fmax_mhz, 1),
                clock.critical.name,
                round(ops_per_us, 1),
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    report(
        "F5: minimal FU — throughput vs critical path (thesis §2.3.4 warning: "
        "'combinational feedback ... only recommended for simple designs')",
        format_table(
            ["configuration", "cycles/instr", "est. fmax MHz", "critical path",
             "ops/µs"],
            rows,
        ),
    )
    # forwarding halves CPI but costs clock speed — both effects visible
    assert rows[1][1] < rows[0][1]
    assert rows[1][2] < rows[0][2]

"""Experiment C3 — the headline χ-sort claim (§IV.B).

"Each operation takes a fixed number of clock cycles with the FPGA; with a
CPU each operation requires an iteration that takes time proportional to
the number of data elements."

Reproduced shape: hardware cycles per split step are flat across n; the
software model's per-step operation count grows linearly; with the paper's
clock ratio (50 MHz FPGA vs 2 GHz CPU ≈ 40×) the hardware overtakes at a
modest n and the gap then grows linearly.
"""

import random

import pytest

from conftest import report
from repro.analysis import DEFAULT_CLOCKS, format_table, measure_xisort_step_costs
from repro.xisort import SoftwareXiSort

SIZES = (8, 16, 32, 64, 128, 256)


def _hw_split_cycles(n: int) -> int:
    return measure_xisort_step_costs(n).split_cycles


def _sw_split_ops(n: int) -> int:
    values = random.Random(n).sample(range(1 << 20), n)
    sw = SoftwareXiSort(values)
    pivot = sw.find_pivot()
    before = sw.counter.ops
    sw.split(pivot)
    return sw.counter.ops - before


@pytest.mark.parametrize("n", SIZES)
def test_c3_hw_split_step(benchmark, n):
    cycles = benchmark.pedantic(lambda: _hw_split_cycles(n), rounds=1, iterations=1)
    assert cycles == _hw_split_cycles(8), "hardware step must be independent of n"


def test_c3_sw_split_step(benchmark):
    ops = benchmark.pedantic(lambda: [_sw_split_ops(n) for n in SIZES],
                             rounds=1, iterations=1)
    # linear growth: ops scale with n
    assert ops[-1] > 16 * ops[0] / 2


def test_c3_report(benchmark):
    clocks = DEFAULT_CLOCKS

    def build():
        rows = []
        for n in SIZES:
            hw = _hw_split_cycles(n)
            sw = _sw_split_ops(n)
            hw_s = clocks.fpga_seconds(hw)
            sw_s = clocks.cpu_seconds(sw)
            rows.append([n, hw, sw, round(sw_s / hw_s, 2)])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    report(
        "C3: one χ-sort split step — FPGA fixed cycles vs CPU Θ(n) operations",
        format_table(
            ["n", "FPGA cycles (50 MHz)", "CPU ops (2 GHz, 3 cyc/op)", "speedup"],
            rows,
            title="paper: fixed cycles per op in hardware; Θ(n) per op in software",
        ),
    )
    hw_cycles = [r[1] for r in rows]
    speedups = [r[3] for r in rows]
    assert len(set(hw_cycles)) == 1, "hardware cost must be flat in n"
    assert speedups[-1] > speedups[0], "speedup must grow with n"
    # crossover: hardware wins somewhere in this sweep
    assert any(s > 1.0 for s in speedups)

"""Experiment C2-OoO — out-of-order issue vs the in-order scoreboard.

The ablation the OoO engine was built for: the same pipelined FP workload
as two instruction streams —

* **independent** — ``fadd`` ops over disjoint destination registers, all
  sharing the default destination flag.  The in-order dispatcher
  serializes on the WAW flag hazard at one result per pipeline latency;
  renaming dissolves the hazard and the machine runs at the link's
  instruction arrival rate.
* **chained** — a single ``fmadd`` accumulator chain (every op reads and
  writes r3).  A true dependency chain: renaming can't help, and the
  criterion is that it doesn't *hurt* (≤ 5% cycle regression).

Both streams run on the in-order and the OoO machine across all three
simulation backends.  CPU-side GET results are asserted identical in
every configuration, and simulated cycle counts are asserted identical
across backends (the backends are one machine, differently scheduled).

Deeper-than-default FP pipelines (10/11/12 stages) stand in for real FPU
latency; the functional-unit table's ``latency`` column picks the depths
up automatically.  Results are recorded in ``BENCH_issue.json``.
``--quick`` shortens the streams (CI smoke).
"""

import struct

import pytest

from conftest import report
from repro.analysis import format_table
from repro.analysis.counters import counters_for
from repro.host import CoprocessorDriver
from repro.isa import instructions as ins
from repro.system import SystemBuilder

#: deep FP pipelines: the latency source that makes issue order matter
DEPTHS = {"add_depth": 10, "mul_depth": 11, "fma_depth": 12}

BACKENDS = {
    "event": {},
    "event+wheel-off": {"wheel": False},
    "compiled": {"backend": "compiled"},
}


def f32(x: float) -> int:
    return struct.unpack("<I", struct.pack("<f", x))[0]


def _program(stream: str, n: int):
    prog = [ins.loadi(1, f32(1.5)), ins.loadi(2, f32(0.25))]
    if stream == "independent":
        prog += [ins.fadd(3 + (i % 8), 1, 2) for i in range(n)]
        prog += [ins.get(3 + i, tag=i) for i in range(8)]
    else:  # chained: every fmadd reads and writes the r3 accumulator
        prog += [ins.loadi(3, f32(1.0))]
        prog += [ins.fmadd(3, 1, 2) for i in range(n)]
        prog += [ins.get(3, tag=0)]
    return prog


def _run(stream: str, n: int, ooo: bool, backend_kwargs: dict):
    builder = SystemBuilder().with_fp_units(**DEPTHS)
    if ooo:
        builder.with_ooo()
    for key, value in backend_kwargs.items():
        builder = getattr(builder, f"with_{key}")(value)
    built = builder.with_lint("off").build()
    drv = CoprocessorDriver(built)
    program = _program(stream, n)
    n_gets = sum(1 for i in program if i.opcode == ins.get(0).opcode)
    for instr in program:
        drv.execute(instr)
    msgs = drv.wait_for(n_gets)
    drv.run_until_quiet()
    counters = counters_for(built, drv)
    return {
        "cycles": drv.cycles,
        "results": [(m.tag, m.value) for m in msgs],
        "ipc": round(counters.ipc, 3),
        "issue": counters.issue,
    }


@pytest.fixture
def n_ops(request) -> int:
    return 24 if request.config.getoption("--quick") else 256


def test_c2_ooo_ablation(benchmark, n_ops, request):
    quick = request.config.getoption("--quick")

    def run():
        out = {}
        for stream in ("independent", "chained"):
            for mode, ooo in (("in-order", False), ("ooo", True)):
                per_backend = {
                    name: _run(stream, n_ops, ooo, kwargs)
                    for name, kwargs in BACKENDS.items()
                }
                baseline = per_backend["event"]
                for name, res in per_backend.items():
                    assert res["results"] == baseline["results"], (
                        f"{stream}/{mode}: {name} diverged from event")
                    assert res["cycles"] == baseline["cycles"], (
                        f"{stream}/{mode}: {name} cycle count diverged")
                out[(stream, mode)] = baseline
            assert (
                out[(stream, "ooo")]["results"]
                == out[(stream, "in-order")]["results"]
            ), f"{stream}: renaming changed the host-visible results"
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)

    indep_speedup = (
        out[("independent", "in-order")]["cycles"]
        / out[("independent", "ooo")]["cycles"]
    )
    chained_ratio = (
        out[("chained", "ooo")]["cycles"]
        / out[("chained", "in-order")]["cycles"]
    )

    rows = []
    for (stream, mode), res in out.items():
        stats = res["issue"]
        rows.append([
            stream, mode, res["cycles"],
            round(res["cycles"] / n_ops, 2), res["ipc"],
            stats.get("stall_raw", 0), stats.get("stall_waw", 0),
            stats.get("window_occupancy_max", 1),
        ])
    report(
        f"C2-OoO: issue ablation ({n_ops} FP ops, pipeline depths "
        f"{DEPTHS['add_depth']}/{DEPTHS['mul_depth']}/{DEPTHS['fma_depth']})",
        format_table(
            ["stream", "issue", "cycles", "cyc/op", "ipc",
             "raw stalls", "waw stalls", "window max"],
            rows,
            title=f"independent speedup {indep_speedup:.2f}x, "
                  f"chained ooo/in-order {chained_ratio:.3f}",
        ),
    )

    # acceptance: ≥2x on the independent stream (full workload; the quick
    # smoke run is too short to amortize pipeline fill), ≤5% chained cost
    if not quick:
        assert indep_speedup >= 2.0, (
            f"OoO speedup {indep_speedup:.2f}x < 2x on independent stream")
    else:
        assert indep_speedup > 1.0
    assert chained_ratio <= 1.05, (
        f"renaming slowed the dependency chain by {chained_ratio:.3f}x")

"""Experiment A1 — the word-size generic (§II).

"The word size used for the register file is adjustable, so the interface
can meet the requirements of the functional units while requiring as small
a portion of the FPGA as possible."

Regenerated trade-off for 128-bit addition:
* narrow machine (32-bit words): 4-instruction ADC carry chain — cheap in
  area, expensive in instructions and channel words;
* wide machine (128-bit words): single ADD — one instruction, larger
  register file and adder.
"""

import pytest

from conftest import report
from repro.analysis import area_framework, estimate_clock, format_table
from repro.config import FrameworkConfig
from repro.host import Session
from repro.system import build_system

A = 0xDEAD_BEEF_0123_4567_89AB_CDEF_1111_2222
B = 0x0FED_CBA9_8765_4321_0F0F_0F0F_3333_4444
TOTAL_BITS = 128


def _narrow_add_cycles() -> int:
    s = Session(build_system(FrameworkConfig(word_bits=32)))
    ra = s.write_wide(A, 4)
    rb = s.write_wide(B, 4)
    s.drain()
    start = s.driver.cycles
    out, cf = s.add_wide(ra, rb)
    s.drain()
    cycles = s.driver.cycles - start
    assert s.read_wide(out) == (A + B) & ((1 << 128) - 1)
    return cycles


def _wide_add_cycles() -> int:
    from repro.isa import ArithOp

    s = Session(build_system(FrameworkConfig(word_bits=128)))
    ra, rb = s.put(A), s.put(B)
    s.drain()
    start = s.driver.cycles
    rd = s.arith(ArithOp.ADD, ra, rb)
    s.drain()
    cycles = s.driver.cycles - start
    assert s.read(rd) == (A + B) & ((1 << 128) - 1)
    return cycles


def test_a1_narrow(benchmark):
    cycles = benchmark.pedantic(_narrow_add_cycles, rounds=1, iterations=1)
    assert cycles > 0


def test_a1_wide(benchmark):
    cycles = benchmark.pedantic(_wide_add_cycles, rounds=1, iterations=1)
    assert cycles > 0


def test_a1_report(benchmark):
    def build():
        rows = []
        for bits in (32, 64, 96, 128):
            cfg = FrameworkConfig(word_bits=bits)
            area = area_framework(cfg).total
            clock = estimate_clock(cfg)
            limbs = TOTAL_BITS // bits
            rows.append([bits, limbs, area, round(clock.fmax_mhz, 1)])
        narrow = _narrow_add_cycles()
        wide = _wide_add_cycles()
        return rows, narrow, wide

    rows, narrow, wide = benchmark.pedantic(build, rounds=1, iterations=1)
    report(
        "A1: word-size generic — framework area/clock vs configuration, and the "
        "128-bit-addition trade-off",
        format_table(
            ["word bits", "instrs per 128-bit add", "framework LEs", "est. fmax MHz"],
            rows,
        )
        + "\n"
        + format_table(
            ["machine", "cycles for one 128-bit add (execution phase)"],
            [["32-bit words, ADC chain", narrow], ["128-bit words, single ADD", wide]],
        ),
    )
    areas = [r[2] for r in rows]
    assert areas == sorted(areas), "area must grow with word size"
    clocks = [r[3] for r in rows]
    assert clocks[-1] <= clocks[0], "wider carry chains slow the clock"
    assert wide < narrow, "one wide instruction beats the 4-limb chain"

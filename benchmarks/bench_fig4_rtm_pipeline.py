"""Experiment F4 — the RTM pipeline (paper Fig. 4).

Measures the controller pipeline as a whole: sustained instruction cost
for different mixes (independent vs serially dependent vs GET-heavy),
showing (a) the pipeline overlaps instruction handling with unit execution
and (b) the front-end (3 channel words per instruction) sets the sustained
rate, exactly the "speed determined by the communication interface" point
of §III.
"""

import pytest

from conftest import report
from repro.analysis import format_table, make_system, measure_issue_rate
from repro.host import CoprocessorDriver
from repro.isa import instructions as ins

N = 48


def _mix_cycles(kind: str) -> float:
    driver = CoprocessorDriver(make_system())
    driver.write_reg(1, 3)
    driver.write_reg(2, 5)
    driver.run_until_quiet()
    start = driver.cycles
    for i in range(N):
        if kind == "independent":
            driver.execute(ins.add(3 + i % 4, 1, 2, dst_flag=1))
        elif kind == "dependent":
            driver.execute(ins.add(3, 3, 2, dst_flag=1))
        elif kind == "alternating-units":
            if i % 2:
                driver.execute(ins.xor(4, 1, 2, dst_flag=2))
            else:
                driver.execute(ins.add(3, 1, 2, dst_flag=1))
        elif kind == "get-heavy":
            driver.execute(ins.add(3, 1, 2, dst_flag=1))
            driver.execute(ins.get(3, tag=i & 0xFF))
        elif kind == "primitives":
            driver.execute(ins.copy(3 + i % 4, 1))
    driver.execute(ins.fence())
    driver.run_until_quiet()
    consumed = len(driver.inbox)
    driver.inbox.clear()
    instrs = N * (2 if kind == "get-heavy" else 1)
    return (driver.cycles - start) / instrs


MIXES = ("independent", "dependent", "alternating-units", "get-heavy", "primitives")


@pytest.mark.parametrize("mix", MIXES)
def test_f4_mix(benchmark, mix):
    cpi = benchmark.pedantic(lambda: _mix_cycles(mix), rounds=1, iterations=1)
    assert cpi > 0


def test_f4_report(benchmark):
    def build():
        return [[m, round(_mix_cycles(m), 2)] for m in MIXES]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    report(
        "F4: RTM pipeline sustained cost per instruction (integrated link)",
        format_table(
            ["instruction mix", "cycles/instr"],
            rows,
            title="front-end framing (3 words/instr) bounds the rate; hazards "
                  "add little because units overlap the pipeline",
        ),
    )
    by = dict(rows)
    # the pipeline hides unit latency: dependent ≈ independent (front-end bound)
    assert by["dependent"] <= by["independent"] * 1.5
    # front-end bound: ≥ 3 words per instruction at 1 word/cycle
    assert by["independent"] >= 3.0


def test_f4_pipeline_depth_latency(benchmark):
    """Single-instruction latency through the whole pipe (fill time)."""

    def run():
        driver = CoprocessorDriver(make_system())
        driver.write_reg(1, 20)
        driver.write_reg(2, 22)
        driver.run_until_quiet()
        start = driver.cycles
        driver.execute(ins.add(3, 1, 2, dst_flag=1))
        driver.execute(ins.get(3))
        driver.wait_for(1)
        return driver.cycles - start

    latency = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "F4b: single instruction end-to-end latency",
        format_table(
            ["path", "cycles"],
            [["EXEC(add) → GET → data record at host", latency]],
        ),
    )
    assert latency > 10  # frames + pipeline + unit + serialisation

"""Experiment T1 — the Table 3.1 arithmetic instruction family.

Regenerates the table as executed behaviour: every row (ADD…CMPB) runs
through the full coprocessor, reporting its end-to-end cycle cost and
verifying its datapath identity; plus a raw-datapath throughput benchmark.
"""

import pytest

from conftest import report
from repro.analysis import format_table, make_system
from repro.fu import arith_datapath
from repro.host import CoprocessorDriver
from repro.isa import (
    ARITH_COMPL_SECOND,
    ARITH_FIRST_ZERO,
    ARITH_FIXED_CARRY,
    ARITH_OUTPUT_DATA,
    ARITH_SECOND_ZERO,
    ARITH_USE_CARRY,
    ArithOp,
    instructions as ins,
)
from repro.isa.opcodes import Opcode

A, B = 1000, 58
MASK = 0xFFFF_FFFF

EXPECTED = {
    ArithOp.ADD: (A + B) & MASK,
    ArithOp.ADC: (A + B) & MASK,      # carry flag starts 0
    ArithOp.SUB: (A - B) & MASK,
    ArithOp.SBB: (A - B - 1) & MASK,  # carry 0 ⇒ borrow
    ArithOp.INC: (A + 1) & MASK,
    ArithOp.DEC: (A - 1) & MASK,
    ArithOp.NEG: (-B) & MASK,
    ArithOp.CMP: None,
    ArithOp.CMPB: None,
}


def _run_row(op: ArithOp) -> tuple[int, int | None]:
    """Execute one Table 3.1 row end-to-end; returns (cycles, result)."""
    driver = CoprocessorDriver(make_system())
    driver.write_reg(1, A)
    driver.write_reg(2, B)
    driver.run_until_quiet()
    start = driver.cycles
    driver.execute(
        ins.dispatch(Opcode.ARITH, int(op), dst1=3, src1=1, src2=2, dst_flag=1)
    )
    driver.execute(ins.fence())
    driver.run_until_quiet()
    cycles = driver.cycles - start
    result = driver.read_reg(3) if EXPECTED[op] is not None else None
    return cycles, result


@pytest.mark.parametrize("op", list(ArithOp), ids=lambda o: o.name)
def test_t1_row(benchmark, op):
    cycles, result = benchmark.pedantic(lambda: _run_row(op), rounds=1, iterations=1)
    assert result == EXPECTED[op]


def test_t1_datapath_throughput(benchmark):
    """Raw combinational datapath evaluation rate (simulation hot path)."""

    def run():
        acc = 0
        for i in range(1000):
            acc ^= arith_datapath(ArithOp.ADD, i, i * 7, 0, 32).value
        return acc

    benchmark(run)


def _variety_bits(op: ArithOp) -> str:
    bits = [
        ("C", ARITH_USE_CARRY),
        ("1", ARITH_FIXED_CARRY),
        ("O", ARITH_OUTPUT_DATA),
        ("Az", ARITH_FIRST_ZERO),
        ("Bz", ARITH_SECOND_ZERO),
        ("~B", ARITH_COMPL_SECOND),
    ]
    return " ".join(name for name, bit in bits if op & bit) or "-"


def test_t1_report(benchmark):
    def build():
        rows = []
        for op in ArithOp:
            cycles, result = _run_row(op)
            rows.append([
                op.name,
                f"{int(op):#04x}",
                _variety_bits(op),
                cycles,
                "flags only" if result is None else result,
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    report(
        "T1 (thesis Table 3.1): arithmetic unit — one adder datapath steered by "
        f"variety bits; operands a={A}, b={B}",
        format_table(
            ["mnemonic", "variety", "modifier bits", "cycles (instr+fence)", "result"],
            rows,
            title="C=use carry, 1=fixed carry, O=output data, Az/Bz=zero input, "
                  "~B=complement second",
        ),
    )
    # every instruction costs the same through the one shared datapath
    assert len({r[3] for r in rows}) <= 2

"""Experiment K — settle scheduling, time-wheel fast-forward and the
compiled backend vs the exhaustive reference kernel.

Measures simulation throughput (simulated cycles per host second) across
four kernel modes — the exhaustive reference, the event-driven settle
scheduler with the time wheel off, the full interpreted kernel with
cycle-skipping fast-forward, and the compiled (codegen) backend — on the
designs the paper actually exercises:

* the fig. 4 RTM pipeline under four deployment scenarios —
  back-to-back instruction streaming over the integrated link (the
  kernel's worst case: every stage busy every cycle), the paper's serial
  prototype link (words arrive every 256 cycles, the pipeline mostly
  waits), a latency-dominated serial-prototype round trip with host
  think-time (the wheel's home turf: almost every cycle is a certified
  countdown), and the offload duty cycle of the paper's usage model
  (bursts of work followed by host think-time);
* the A2 ξ-sort cell-scaling design (structural array, event-tracked
  cells);
* a dense-logic scaling point: a fully structural 1024-cell ξ-sort array
  driven directly (no RTM), where every cycle touches every cell — the
  regular SIMD structure the compiled backend's vectorized executors
  target.  The exhaustive kernel is excluded from this scenario only
  because it needs minutes per round at this size; its equivalence on
  ξ-sort designs is pinned by the property suite at smaller sizes.

Every scenario asserts all measured modes agree on the exact cycle count
— the kernels must be indistinguishable at the waveform level (the
property suites additionally pin VCD-byte equality).  Acceptance: the
event scheduler clears ≥ 3× over exhaustive on the offload scenario, the
time wheel clears ≥ 5× over the wheel-off event kernel on the
serial-prototype scenarios without regressing the saturated stream, and
the compiled backend clears ≥ 8× over the interpreted event kernel on
the dense cell array without regressing the wheel-dominated scenarios.

``--quick`` (also via ``python benchmarks/bench_kernel_settle.py
--quick``) runs a single round per mode — the CI smoke setting that keeps
the script (compiled mode included) from bitrotting without paying for
stable timings.
"""

from __future__ import annotations

import time

import pytest

from conftest import report
from repro.analysis import counters_for, format_table, make_system
from repro.host import CoprocessorDriver
from repro.isa import instructions as ins
from repro.messages.channel import INTEGRATED, SLOW_PROTOTYPE

BURST = 48            # instructions per offload burst
THINK_CYCLES = 3000   # host-side gap between bursts (offload scenario)
SERIAL_THINK = 30000  # host think-time on the serial prototype (idle scenario)
DENSE_CELLS = 1024    # dense-logic scaling point (structural array)

#: kernel modes under comparison
MODES = {
    "exhaustive": {"scheduler": "exhaustive", "wheel": False},
    "event": {"scheduler": "event", "wheel": False},
    "event+wheel": {"scheduler": "event", "wheel": True},
    "compiled": {"scheduler": "event", "wheel": True, "backend": "compiled"},
}

ALL_MODES = tuple(MODES)
#: the exhaustive kernel needs minutes per round on the 1024-cell array
DENSE_MODES = ("event", "event+wheel", "compiled")


def _rtm_workload(mode: dict, channel, idle_cycles: int = 0, burst: int = BURST):
    """One offload round on the fig. 4 pipeline; returns (cycles, seconds)."""
    system = make_system(channel=channel, **mode)
    driver = CoprocessorDriver(system)
    driver.write_reg(1, 3)
    driver.write_reg(2, 5)
    driver.run_until_quiet()
    start = system.sim.now
    t0 = time.perf_counter()
    for i in range(burst):
        driver.execute(ins.add(3 + i % 4, 1, 2, dst_flag=1))
    driver.execute(ins.fence())
    driver.run_until_quiet()
    if idle_cycles:
        system.sim.step(idle_cycles)
    elapsed = time.perf_counter() - t0
    return system.sim.now - start, elapsed, system.sim


def _serial_idle_workload(mode: dict):
    """Latency-dominated round trip on the paper's own deployment: a short
    burst over the 256-cycles/word serial link, host think-time, then a
    synchronous read-back.  Nearly every simulated cycle is a link
    countdown or pure idle — the operating point §III describes."""
    system = make_system(channel=SLOW_PROTOTYPE, **mode)
    driver = CoprocessorDriver(system)
    driver.write_reg(1, 3)
    driver.write_reg(2, 5)
    driver.run_until_quiet()
    start = system.sim.now
    t0 = time.perf_counter()
    driver.execute(ins.add(3, 1, 2, dst_flag=1))
    driver.run_until_quiet()
    system.sim.step(SERIAL_THINK)
    assert driver.read_reg(3) == 8
    driver.run_until_quiet()
    elapsed = time.perf_counter() - t0
    return system.sim.now - start, elapsed, system.sim


def _xisort_workload(mode: dict, n_cells: int = 16):
    """A2 cell-scaling: sort through the full framework; (cycles, seconds)."""
    import random

    from repro.host.session import Session
    from repro.xisort import XiSortAccelerator

    system = make_system(xisort_cells=n_cells, **mode)
    session = Session(system)
    acc = XiSortAccelerator(session)
    values = random.Random(7).sample(range(1 << 16), n_cells)
    start = session.driver.cycles
    t0 = time.perf_counter()
    out = acc.sort(values)
    elapsed = time.perf_counter() - t0
    assert out == sorted(values)
    return session.driver.cycles - start, elapsed, system.sim


def _xisort_dense_workload(mode: dict, n_cells: int = DENSE_CELLS):
    """Dense-logic scaling: a bare structural 1k-cell array, driven direct.

    Every LOAD/SELECT/MATCH command touches every cell the same cycle —
    the SIMD-regular structure §IV's smart-memory units are built from,
    and the workload the vectorized cell-array executors exist for.
    """
    import random

    from repro.xisort import DirectXiSortMachine

    values = random.Random(7).sample(range(1 << 16), 48)
    machine = DirectXiSortMachine(n_cells, array_kind="structural", **mode)
    t0 = time.perf_counter()
    out = machine.sort(values)
    elapsed = time.perf_counter() - t0
    assert out == sorted(values)
    return machine.cycles, elapsed, machine.sim


#: scenario name → (workload, modes measured)
SCENARIOS = {
    "rtm stream (integrated)": (lambda m: _rtm_workload(m, INTEGRATED), ALL_MODES),
    "rtm serial prototype": (lambda m: _rtm_workload(m, SLOW_PROTOTYPE), ALL_MODES),
    "rtm serial prototype idle": (_serial_idle_workload, ALL_MODES),
    "rtm offload duty cycle":
        (lambda m: _rtm_workload(m, INTEGRATED, THINK_CYCLES), ALL_MODES),
    "a2 xisort cells": (_xisort_workload, ALL_MODES),
    "xisort cells 1k+ (dense)": (_xisort_dense_workload, DENSE_MODES),
}


def _measure(scenario, rounds: int = 3, modes=ALL_MODES):
    """Best-of-N cycles/sec per kernel mode; asserts identical cycle counts."""
    out = {}
    for name in modes:
        best = None
        for _ in range(rounds):
            cycles, elapsed, sim = scenario(MODES[name])
            if best is None or elapsed < best[1]:
                best = (cycles, elapsed, sim)
        out[name] = best
    counts = {name: out[name][0] for name in modes}
    assert len(set(counts.values())) == 1, (
        f"kernels disagree on cycle count: {counts}"
    )
    cycles = counts[modes[0]]

    def speedup(fast, slow):
        if fast not in out or slow not in out:
            return None
        return out[slow][1] / out[fast][1]

    return {
        "cycles": cycles,
        "cps": {name: cycles / t for name, (_, t, _s) in out.items()},
        "event_speedup": speedup("event", "exhaustive"),
        "wheel_speedup": speedup("event+wheel", "event"),
        "compiled_speedup": speedup("compiled", "event"),
        "kernel": out[modes[-1]][2].kernel_stats.as_dict(),
        "wheel_kernel": out["event+wheel"][2].kernel_stats.as_dict(),
    }


@pytest.fixture
def rounds(request) -> int:
    return 1 if request.config.getoption("--quick") else 3


@pytest.mark.parametrize("name", list(SCENARIOS))
def test_kernel_settle_scenario(benchmark, name, rounds):
    scenario, modes = SCENARIOS[name]
    result = benchmark.pedantic(lambda: _measure(scenario, rounds, modes),
                                rounds=1, iterations=1)
    if result["event_speedup"] is not None:
        assert result["event_speedup"] > 1.0
    assert result["compiled_speedup"] is not None  # compiled mode always runs


def test_kernel_settle_report(benchmark, rounds):
    def build():
        return {name: _measure(scenario, rounds, modes)
                for name, (scenario, modes) in SCENARIOS.items()}

    results = benchmark.pedantic(build, rounds=1, iterations=1)

    def fmt(x, pattern="{:.2f}x"):
        return pattern.format(x) if x is not None else "—"

    rows = [
        [name, r["cycles"],
         round(r["cps"]["exhaustive"]) if "exhaustive" in r["cps"] else "—",
         round(r["cps"]["event"]), round(r["cps"]["event+wheel"]),
         round(r["cps"]["compiled"]),
         fmt(r["event_speedup"]), fmt(r["wheel_speedup"]),
         fmt(r["compiled_speedup"])]
        for name, r in results.items()
    ]
    dense = results["xisort cells 1k+ (dense)"]
    k = dense["kernel"]
    report(
        "K: settle scheduling + time-wheel + compiled backend vs exhaustive kernel",
        format_table(
            ["scenario", "cycles", "exhaustive cyc/s", "event cyc/s",
             "wheel cyc/s", "compiled cyc/s", "event/exh", "wheel/event",
             "compiled/event"],
            rows,
            title=f"identical cycle counts asserted per scenario; speedups "
                  f"are wall-clock (best of {rounds}); exhaustive omitted "
                  f"on the dense 1k-cell scenario (minutes per round)",
        )
        + "\n"
        + format_table(
            ["kernel counter (dense, compiled)", "value"],
            [[key.replace("_", " "), value] for key, value in k.items()],
        ),
    )
    # Acceptance (event scheduler): ≥ 3× on the representative offload
    # scenario of the fig. 4 RTM pipeline (the paper's usage model).
    duty = results["rtm offload duty cycle"]
    assert duty["event_speedup"] >= 3.0, (
        f"offload speedup {duty['event_speedup']:.2f}x < 3x"
    )
    assert results["rtm serial prototype"]["event_speedup"] >= 2.5
    assert results["rtm stream (integrated)"]["event_speedup"] >= 1.5
    # Acceptance (time wheel): ≥ 5× over the wheel-off event kernel on the
    # idle-dominated serial-prototype scenarios, and the wheel must have
    # actually covered most of the idle scenario in jumps.
    idle = results["rtm serial prototype idle"]
    assert results["rtm serial prototype"]["wheel_speedup"] >= 5.0, (
        f"serial wheel speedup {results['rtm serial prototype']['wheel_speedup']:.2f}x < 5x"
    )
    assert idle["wheel_speedup"] >= 5.0, (
        f"serial idle wheel speedup {idle['wheel_speedup']:.2f}x < 5x"
    )
    wk = idle["wheel_kernel"]
    assert wk["skipped_cycles"] > wk["edge_calls"]
    # No regression where the wheel cannot engage: the saturated stream
    # must stay within measurement noise of the wheel-off kernel.
    assert results["rtm stream (integrated)"]["wheel_speedup"] >= 0.9
    # Acceptance (compiled backend): the dense SIMD-regular array is the
    # target workload — ≥ 8× over the interpreted event kernel, with the
    # vectorized executors actually engaged.
    assert dense["compiled_speedup"] >= 8.0, (
        f"dense compiled speedup {dense['compiled_speedup']:.2f}x < 8x"
    )
    assert k["vectorized_cells"] >= DENSE_CELLS
    # ... and no material regression on the saturated stream, where both
    # kernels are dominated by sequential processes that must run every
    # edge regardless: the wake-driven sweep holds the compiled backend at
    # measured ~0.9x of the event kernel (the interpreted queue and the
    # generated dispatch do the same minimal work; only constant factors
    # differ), with 0.75 as the noise-tolerant floor.
    assert results["rtm stream (integrated)"]["compiled_speedup"] >= 0.75
    assert idle["compiled_speedup"] is not None


#: per-preset ceiling for the whole dataflow pass (build_design + fixpoint);
#: measured ~10 ms locally — the bound is the CI no-regression backstop, not
#: a target
ANALYSIS_BUDGET_MS = 2000.0


def test_dataflow_analysis_per_preset(benchmark):
    """The dataflow verifier's wall-time rider: the abstract-interpretation
    pass runs on every ``build_system(lint=...)`` call, so its cost is part
    of every build — measure it per channel preset and hold the line."""
    from repro.analysis.dataflow import analyze
    from repro.messages.channel import PRESETS
    from repro.system import build_system

    def measure():
        out = {}
        for name in sorted(PRESETS):
            built = build_system(channel=PRESETS[name], lint="off")
            t0 = time.perf_counter()
            res = analyze(built.soc, sim=built.sim)
            out[name] = {
                "wall_ms": (time.perf_counter() - t0) * 1e3,
                "solve_ms": res.wall_ms,
                "tracked": len(res.tracked),
                "rounds": res.rounds,
                "widened": len(res.widened),
            }
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "K rider: dataflow verifier wall-time per preset",
        format_table(
            ["preset", "total ms", "solve ms", "tracked signals",
             "rounds", "widened"],
            [[name, f"{r['wall_ms']:.1f}", f"{r['solve_ms']:.1f}",
              r["tracked"], r["rounds"], r["widened"]]
             for name, r in results.items()],
            title="total = build_design + fixpoint; solve = fixpoint only",
        ),
    )
    for name, r in results.items():
        # the fixpoint must do real proving, converge, and stay cheap
        assert r["tracked"] > 0, f"{name}: nothing tracked"
        assert r["widened"] == 0, f"{name}: {r['widened']} signals widened"
        assert r["wall_ms"] < ANALYSIS_BUDGET_MS, (
            f"{name}: dataflow pass took {r['wall_ms']:.0f} ms "
            f"(budget {ANALYSIS_BUDGET_MS:.0f} ms)"
        )


def test_kernel_counters_surface():
    """counters_for folds scheduler stats into the framework counter report."""
    system = make_system(channel=INTEGRATED, **MODES["event+wheel"])
    driver = CoprocessorDriver(system)
    driver.write_reg(1, 3)
    driver.execute(ins.add(3, 1, 1))
    driver.run_until_quiet()
    rep = counters_for(system)
    assert rep.kernel["settle_calls"] > 0
    assert rep.kernel["activations"] > 0
    assert rep.kernel["tracked_procs"] > 0
    assert rep.settle_activations_per_cycle > 0
    assert "settle scheduler" in rep.kernel_table()
    assert "skipped_cycles" in rep.kernel

    compiled = make_system(channel=INTEGRATED, **MODES["compiled"])
    crep = counters_for(compiled)
    assert crep.kernel["compiled_procs"] > 0
    assert "compiled procs" in crep.kernel_table()


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main(
        [__file__, "-q", "-rA", "--benchmark-disable-gc",
         "--benchmark-min-rounds=1", *sys.argv[1:]]
    ))

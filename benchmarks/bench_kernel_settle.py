"""Experiment K — the event-driven settle scheduler vs the exhaustive kernel.

Measures simulation throughput (simulated cycles per host second) of the
dependency-tracked, fanout-driven settle scheduler against the retained
exhaustive reference kernel on the designs the paper actually exercises:

* the fig. 4 RTM pipeline under three deployment scenarios —
  back-to-back instruction streaming over the integrated link (the
  kernel's worst case: every stage busy every cycle), the paper's serial
  prototype link (words arrive every 256 cycles, the pipeline mostly
  waits), and the offload duty cycle of the paper's usage model (bursts
  of work followed by host think-time, during which the coprocessor sits
  quiescent);
* the A2 ξ-sort cell-scaling design (structural array, event-tracked
  cells).

Every scenario asserts the two schedulers agree on the exact cycle count —
the schedulers must be indistinguishable at the waveform level (the
property suite additionally pins VCD-byte equality).  The acceptance
criterion for the event kernel is ≥ 3× on the representative offload
scenario of the fig. 4 pipeline.
"""

from __future__ import annotations

import time

import pytest

from conftest import report
from repro.analysis import counters_for, format_table, make_system
from repro.host import CoprocessorDriver
from repro.isa import instructions as ins
from repro.messages.channel import INTEGRATED, SLOW_PROTOTYPE

BURST = 48            # instructions per offload burst
THINK_CYCLES = 3000   # host-side gap between bursts (offload scenario)

SCHEDULERS = ("exhaustive", "event")


def _rtm_workload(scheduler: str, channel, idle_cycles: int = 0):
    """One offload round on the fig. 4 pipeline; returns (cycles, seconds)."""
    system = make_system(scheduler=scheduler, channel=channel)
    driver = CoprocessorDriver(system)
    driver.write_reg(1, 3)
    driver.write_reg(2, 5)
    driver.run_until_quiet()
    start = system.sim.now
    t0 = time.perf_counter()
    for i in range(BURST):
        driver.execute(ins.add(3 + i % 4, 1, 2, dst_flag=1))
    driver.execute(ins.fence())
    driver.run_until_quiet()
    if idle_cycles:
        system.sim.step(idle_cycles)
    elapsed = time.perf_counter() - t0
    return system.sim.now - start, elapsed, system


def _xisort_workload(scheduler: str, n_cells: int = 16):
    """A2 cell-scaling: sort through the full framework; (cycles, seconds)."""
    import random

    from repro.host.session import Session
    from repro.xisort import XiSortAccelerator

    system = make_system(scheduler=scheduler, xisort_cells=n_cells)
    session = Session(system)
    acc = XiSortAccelerator(session)
    values = random.Random(7).sample(range(1 << 16), n_cells)
    start = session.driver.cycles
    t0 = time.perf_counter()
    out = acc.sort(values)
    elapsed = time.perf_counter() - t0
    assert out == sorted(values)
    return session.driver.cycles - start, elapsed, system


SCENARIOS = {
    "rtm stream (integrated)": lambda s: _rtm_workload(s, INTEGRATED),
    "rtm serial prototype": lambda s: _rtm_workload(s, SLOW_PROTOTYPE),
    "rtm offload duty cycle": lambda s: _rtm_workload(s, INTEGRATED, THINK_CYCLES),
    "a2 xisort cells": lambda s: _xisort_workload(s),
}


def _measure(scenario, rounds: int = 3):
    """Best-of-N cycles/sec per scheduler; asserts identical cycle counts."""
    out = {}
    for sched in SCHEDULERS:
        best = None
        for _ in range(rounds):
            cycles, elapsed, system = scenario(sched)
            if best is None or elapsed < best[1]:
                best = (cycles, elapsed, system)
        out[sched] = best
    cyc_ex, t_ex, _ = out["exhaustive"]
    cyc_ev, t_ev, system = out["event"]
    assert cyc_ex == cyc_ev, (
        f"schedulers disagree on cycle count: exhaustive {cyc_ex}, event {cyc_ev}"
    )
    return {
        "cycles": cyc_ex,
        "exhaustive_cps": cyc_ex / t_ex,
        "event_cps": cyc_ev / t_ev,
        "speedup": t_ex / t_ev,
        "kernel": system.sim.kernel_stats.as_dict(),
    }


@pytest.mark.parametrize("name", list(SCENARIOS))
def test_kernel_settle_scenario(benchmark, name):
    result = benchmark.pedantic(lambda: _measure(SCENARIOS[name]),
                                rounds=1, iterations=1)
    assert result["speedup"] > 1.0


def test_kernel_settle_report(benchmark):
    def build():
        return {name: _measure(scenario) for name, scenario in SCENARIOS.items()}

    results = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        [name, r["cycles"], round(r["exhaustive_cps"]), round(r["event_cps"]),
         f"{r['speedup']:.2f}x"]
        for name, r in results.items()
    ]
    duty = results["rtm offload duty cycle"]
    k = duty["kernel"]
    report(
        "K: event-driven settle scheduler vs exhaustive reference kernel",
        format_table(
            ["scenario", "cycles", "exhaustive cyc/s", "event cyc/s", "speedup"],
            rows,
            title="identical cycle counts asserted per scenario; speedup is "
                  "wall-clock (best of 3)",
        )
        + "\n"
        + format_table(
            ["kernel counter (offload scenario)", "value"],
            [[key.replace("_", " "), value] for key, value in k.items()],
        ),
    )
    # Acceptance: ≥ 3× on the representative offload scenario of the fig. 4
    # RTM pipeline (bursts + host think-time, the paper's usage model).
    assert duty["speedup"] >= 3.0, f"offload speedup {duty['speedup']:.2f}x < 3x"
    # The serial prototype link (the paper's actual hardware) should also
    # clear 3x; the saturated integrated stream is the documented worst case.
    assert results["rtm serial prototype"]["speedup"] >= 2.5
    assert results["rtm stream (integrated)"]["speedup"] >= 1.5


def test_kernel_counters_surface():
    """counters_for folds scheduler stats into the framework counter report."""
    cycles, _, system = _rtm_workload("event", INTEGRATED)
    rep = counters_for(system)
    assert rep.kernel["settle_calls"] > 0
    assert rep.kernel["activations"] > 0
    assert rep.kernel["tracked_procs"] > 0
    assert rep.settle_activations_per_cycle > 0
    assert "settle scheduler" in rep.kernel_table()

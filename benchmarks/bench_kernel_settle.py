"""Experiment K — settle scheduling and time-wheel fast-forward vs the
exhaustive reference kernel.

Measures simulation throughput (simulated cycles per host second) across
three kernel modes — the exhaustive reference, the event-driven settle
scheduler with the time wheel off, and the full kernel with cycle-skipping
fast-forward — on the designs the paper actually exercises:

* the fig. 4 RTM pipeline under four deployment scenarios —
  back-to-back instruction streaming over the integrated link (the
  kernel's worst case: every stage busy every cycle), the paper's serial
  prototype link (words arrive every 256 cycles, the pipeline mostly
  waits), a latency-dominated serial-prototype round trip with host
  think-time (the wheel's home turf: almost every cycle is a certified
  countdown), and the offload duty cycle of the paper's usage model
  (bursts of work followed by host think-time);
* the A2 ξ-sort cell-scaling design (structural array, event-tracked
  cells).

Every scenario asserts all three modes agree on the exact cycle count —
the kernels must be indistinguishable at the waveform level (the property
suite additionally pins VCD-byte equality).  Acceptance: the event
scheduler clears ≥ 3× over exhaustive on the offload scenario, and the
time wheel clears ≥ 5× over the wheel-off event kernel on the
serial-prototype scenarios without regressing the saturated stream.

``--quick`` (also via ``python benchmarks/bench_kernel_settle.py
--quick``) runs a single round per mode — the CI smoke setting that keeps
the script from bitrotting without paying for stable timings.
"""

from __future__ import annotations

import time

import pytest

from conftest import report
from repro.analysis import counters_for, format_table, make_system
from repro.host import CoprocessorDriver
from repro.isa import instructions as ins
from repro.messages.channel import INTEGRATED, SLOW_PROTOTYPE

BURST = 48            # instructions per offload burst
THINK_CYCLES = 3000   # host-side gap between bursts (offload scenario)
SERIAL_THINK = 30000  # host think-time on the serial prototype (idle scenario)

#: kernel modes under comparison: (scheduler, wheel)
MODES = {
    "exhaustive": {"scheduler": "exhaustive", "wheel": False},
    "event": {"scheduler": "event", "wheel": False},
    "event+wheel": {"scheduler": "event", "wheel": True},
}


def _rtm_workload(mode: dict, channel, idle_cycles: int = 0, burst: int = BURST):
    """One offload round on the fig. 4 pipeline; returns (cycles, seconds)."""
    system = make_system(channel=channel, **mode)
    driver = CoprocessorDriver(system)
    driver.write_reg(1, 3)
    driver.write_reg(2, 5)
    driver.run_until_quiet()
    start = system.sim.now
    t0 = time.perf_counter()
    for i in range(burst):
        driver.execute(ins.add(3 + i % 4, 1, 2, dst_flag=1))
    driver.execute(ins.fence())
    driver.run_until_quiet()
    if idle_cycles:
        system.sim.step(idle_cycles)
    elapsed = time.perf_counter() - t0
    return system.sim.now - start, elapsed, system


def _serial_idle_workload(mode: dict):
    """Latency-dominated round trip on the paper's own deployment: a short
    burst over the 256-cycles/word serial link, host think-time, then a
    synchronous read-back.  Nearly every simulated cycle is a link
    countdown or pure idle — the operating point §III describes."""
    system = make_system(channel=SLOW_PROTOTYPE, **mode)
    driver = CoprocessorDriver(system)
    driver.write_reg(1, 3)
    driver.write_reg(2, 5)
    driver.run_until_quiet()
    start = system.sim.now
    t0 = time.perf_counter()
    driver.execute(ins.add(3, 1, 2, dst_flag=1))
    driver.run_until_quiet()
    system.sim.step(SERIAL_THINK)
    assert driver.read_reg(3) == 8
    driver.run_until_quiet()
    elapsed = time.perf_counter() - t0
    return system.sim.now - start, elapsed, system


def _xisort_workload(mode: dict, n_cells: int = 16):
    """A2 cell-scaling: sort through the full framework; (cycles, seconds)."""
    import random

    from repro.host.session import Session
    from repro.xisort import XiSortAccelerator

    system = make_system(xisort_cells=n_cells, **mode)
    session = Session(system)
    acc = XiSortAccelerator(session)
    values = random.Random(7).sample(range(1 << 16), n_cells)
    start = session.driver.cycles
    t0 = time.perf_counter()
    out = acc.sort(values)
    elapsed = time.perf_counter() - t0
    assert out == sorted(values)
    return session.driver.cycles - start, elapsed, system


SCENARIOS = {
    "rtm stream (integrated)": lambda m: _rtm_workload(m, INTEGRATED),
    "rtm serial prototype": lambda m: _rtm_workload(m, SLOW_PROTOTYPE),
    "rtm serial prototype idle": _serial_idle_workload,
    "rtm offload duty cycle": lambda m: _rtm_workload(m, INTEGRATED, THINK_CYCLES),
    "a2 xisort cells": _xisort_workload,
}


def _measure(scenario, rounds: int = 3):
    """Best-of-N cycles/sec per kernel mode; asserts identical cycle counts."""
    out = {}
    for name, mode in MODES.items():
        best = None
        for _ in range(rounds):
            cycles, elapsed, system = scenario(mode)
            if best is None or elapsed < best[1]:
                best = (cycles, elapsed, system)
        out[name] = best
    cyc_ex, t_ex, _ = out["exhaustive"]
    cyc_ev, t_ev, _ = out["event"]
    cyc_wh, t_wh, system = out["event+wheel"]
    assert cyc_ex == cyc_ev == cyc_wh, (
        f"kernels disagree on cycle count: exhaustive {cyc_ex}, "
        f"event {cyc_ev}, event+wheel {cyc_wh}"
    )
    return {
        "cycles": cyc_ex,
        "exhaustive_cps": cyc_ex / t_ex,
        "event_cps": cyc_ev / t_ev,
        "wheel_cps": cyc_wh / t_wh,
        "event_speedup": t_ex / t_ev,
        "wheel_speedup": t_ev / t_wh,
        "kernel": system.sim.kernel_stats.as_dict(),
    }


@pytest.fixture
def rounds(request) -> int:
    return 1 if request.config.getoption("--quick") else 3


@pytest.mark.parametrize("name", list(SCENARIOS))
def test_kernel_settle_scenario(benchmark, name, rounds):
    result = benchmark.pedantic(lambda: _measure(SCENARIOS[name], rounds),
                                rounds=1, iterations=1)
    assert result["event_speedup"] > 1.0


def test_kernel_settle_report(benchmark, rounds):
    def build():
        return {name: _measure(scenario, rounds)
                for name, scenario in SCENARIOS.items()}

    results = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        [name, r["cycles"], round(r["exhaustive_cps"]), round(r["event_cps"]),
         round(r["wheel_cps"]), f"{r['event_speedup']:.2f}x",
         f"{r['wheel_speedup']:.2f}x"]
        for name, r in results.items()
    ]
    idle = results["rtm serial prototype idle"]
    k = idle["kernel"]
    report(
        "K: settle scheduling + time-wheel fast-forward vs exhaustive kernel",
        format_table(
            ["scenario", "cycles", "exhaustive cyc/s", "event cyc/s",
             "wheel cyc/s", "event/exh", "wheel/event"],
            rows,
            title=f"identical cycle counts asserted per scenario; speedups "
                  f"are wall-clock (best of {rounds})",
        )
        + "\n"
        + format_table(
            ["kernel counter (serial prototype idle)", "value"],
            [[key.replace("_", " "), value] for key, value in k.items()],
        ),
    )
    # Acceptance (event scheduler): ≥ 3× on the representative offload
    # scenario of the fig. 4 RTM pipeline (the paper's usage model).
    duty = results["rtm offload duty cycle"]
    assert duty["event_speedup"] >= 3.0, (
        f"offload speedup {duty['event_speedup']:.2f}x < 3x"
    )
    assert results["rtm serial prototype"]["event_speedup"] >= 2.5
    assert results["rtm stream (integrated)"]["event_speedup"] >= 1.5
    # Acceptance (time wheel): ≥ 5× over the wheel-off event kernel on the
    # idle-dominated serial-prototype scenarios, and the wheel must have
    # actually covered most of the idle scenario in jumps.
    assert results["rtm serial prototype"]["wheel_speedup"] >= 5.0, (
        f"serial wheel speedup {results['rtm serial prototype']['wheel_speedup']:.2f}x < 5x"
    )
    assert idle["wheel_speedup"] >= 5.0, (
        f"serial idle wheel speedup {idle['wheel_speedup']:.2f}x < 5x"
    )
    assert k["skipped_cycles"] > k["edge_calls"]
    # No regression where the wheel cannot engage: the saturated stream
    # must stay within measurement noise of the wheel-off kernel.
    assert results["rtm stream (integrated)"]["wheel_speedup"] >= 0.9


def test_kernel_counters_surface():
    """counters_for folds scheduler stats into the framework counter report."""
    cycles, _, system = _rtm_workload(MODES["event+wheel"], INTEGRATED)
    rep = counters_for(system)
    assert rep.kernel["settle_calls"] > 0
    assert rep.kernel["activations"] > 0
    assert rep.kernel["tracked_procs"] > 0
    assert rep.settle_activations_per_cycle > 0
    assert "settle scheduler" in rep.kernel_table()
    assert "skipped_cycles" in rep.kernel


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main(
        [__file__, "-q", "-rA", "--benchmark-disable-gc",
         "--benchmark-min-rounds=1", *sys.argv[1:]]
    ))

"""Experiment E1 (extension) — active-data-structure queries (§IV.B).

"With circuit parallelism, data structures can be active ... This
capability enables ... a richer set of primitive operations."  Beyond the
χ-sort steps themselves, the same cell/tree machinery answers rank (order
statistic) and multiplicity (membership) queries in constant cycles, where
software scans all n elements.  This is an extension experiment: the shape
is the paper's claim applied to two further primitives.
"""

import bisect
import random

import pytest

from conftest import report
from repro.analysis import DEFAULT_CLOCKS, format_table
from repro.xisort import DirectXiSortMachine

SIZES = (16, 64, 256, 1024)


def _hw_rank_cycles(n: int) -> int:
    values = random.Random(n).sample(range(1 << 20), n)
    m = DirectXiSortMachine(n)
    m.reset_array()
    m.load(values)
    before = m.cycles
    m.rank(1 << 19)
    return m.cycles - before


def _sw_rank_ops(n: int) -> int:
    # an unsorted software container must touch every element
    return n


@pytest.mark.parametrize("n", SIZES)
def test_e1_rank_cycles_flat(benchmark, n):
    cycles = benchmark.pedantic(lambda: _hw_rank_cycles(n), rounds=1, iterations=1)
    assert cycles == _hw_rank_cycles(16)


def test_e1_rank_correct_at_scale(benchmark):
    def run():
        n = 256
        values = random.Random(4).sample(range(1 << 20), n)
        m = DirectXiSortMachine(n)
        m.reset_array()
        m.load(values)
        ordered = sorted(values)
        for probe in random.Random(5).sample(range(1 << 20), 10):
            assert m.rank(probe) == bisect.bisect_left(ordered, probe)
        return True

    assert benchmark.pedantic(run, rounds=1, iterations=1)


def test_e1_report(benchmark):
    clocks = DEFAULT_CLOCKS

    def build():
        rows = []
        for n in SIZES:
            hw = _hw_rank_cycles(n)
            sw = _sw_rank_ops(n)
            speedup = clocks.cpu_seconds(sw) / clocks.fpga_seconds(hw)
            rows.append([n, hw, sw, round(speedup, 2)])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    report(
        "E1 (extension): rank query on unsorted data — smart memory vs CPU scan",
        format_table(
            ["n", "FPGA cycles", "CPU element touches", "speedup (50 MHz vs 2 GHz)"],
            rows,
            title="every cell compares in parallel, the tree counts: constant "
                  "cycles vs Θ(n) — the paper's active-data-structure claim on a "
                  "second primitive",
        ),
    )
    assert len({r[1] for r in rows}) == 1
    assert rows[-1][3] > 1.0  # crossover well inside the sweep

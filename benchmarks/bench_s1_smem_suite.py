"""Experiment S1 — the smart-memory suite: scan, histogram, string match.

Drives the three kit-native machines (:mod:`repro.smem`) at a production
size (256 cells, vectorized array) through the same kernel-mode ladder
the kernel benchmark uses — interpreted event kernel (wheel off), wheel
on, and the compiled backend — and records, per machine:

* the exact operation cycle counts (identical across modes, asserted),
* simulation throughput (simulated cycles per host second) and the
  compiled-over-interpreted speedup,
* a CPU software baseline doing the same job natively (numpy prefix
  sum, ``collections.Counter`` histogram, ``str.find`` match scan) —
  the paper-style reference point: hardware cycle counts are what an
  FPGA deployment would pay, the baseline is what the host would pay
  in software.

The compiled runs additionally assert the ISSUE acceptance facts: zero
interpreted fallbacks and the full column vectorized at 256 cells.

Results are recorded in ``BENCH_smem.json`` at the repo root.
``--quick`` runs one measurement round per mode (CI smoke).
"""

from __future__ import annotations

import time
from collections import Counter

import numpy as np
import pytest

from conftest import report
from repro.analysis import format_table
from repro.smem.histogram import DirectHistMachine
from repro.smem.match import DirectMatchMachine
from repro.smem.scan import DirectScanMachine

N_CELLS = 256

#: kernel modes under comparison (the exhaustive oracle is pinned on these
#: machines by the conformance property suite at smaller sizes)
MODES = {
    "event": {"scheduler": "event", "wheel": False},
    "event+wheel": {"scheduler": "event", "wheel": True},
    "compiled": {"scheduler": "event", "wheel": True, "backend": "compiled"},
}
ALL_MODES = tuple(MODES)

RNG_VALUES = [(v * 2654435761) % (1 << 20) for v in range(200)]
RNG_SAMPLES = [(v * 40503) % 512 for v in range(400)]
MATCH_TEXT = (b"abacabadabacabae" * 32)[:500]
MATCH_PATTERN = b"abacabad"


def _scan_workload(mode: dict):
    m = DirectScanMachine(N_CELLS, **mode)
    t0 = time.perf_counter()
    m.reset_column()
    m.load(RNG_VALUES)
    total = m.prefix_sum()
    checks = (m.total(), m.minimum(), m.maximum(), m.count(),
              m.read_at(0), m.read_at(len(RNG_VALUES) - 1))
    elapsed = time.perf_counter() - t0
    ref = np.cumsum(np.asarray(RNG_VALUES, dtype=np.uint64))
    assert total == int(ref[-1]) and checks[4] == int(ref[0])
    return m.cycles, elapsed, m.sim


def _scan_baseline() -> None:
    arr = np.asarray(RNG_VALUES, dtype=np.uint64)
    out = np.cumsum(arr)
    assert int(out[-1]) == sum(RNG_VALUES)


def _hist_workload(mode: dict):
    m = DirectHistMachine(N_CELLS, **mode)
    t0 = time.perf_counter()
    m.reset_bins()
    m.load(RNG_SAMPLES)
    obs = (m.total(), m.peak(), m.nonzero_bins())
    elapsed = time.perf_counter() - t0
    ref = Counter(s % N_CELLS for s in RNG_SAMPLES)
    assert obs[0] == len(RNG_SAMPLES)
    assert obs[1][1] == max(ref.values())
    return m.cycles, elapsed, m.sim


def _hist_baseline() -> None:
    ref = Counter(s % N_CELLS for s in RNG_SAMPLES)
    assert sum(ref.values()) == len(RNG_SAMPLES)


def _match_occurrences(text: bytes, pattern: bytes) -> list[int]:
    """Overlapping-occurrence end positions via str.find (the baseline)."""
    ends, start = [], text.find(pattern)
    while start != -1:
        ends.append(start + len(pattern) - 1)
        start = text.find(pattern, start + 1)
    return ends


def _match_workload(mode: dict):
    m = DirectMatchMachine(N_CELLS, **mode)
    t0 = time.perf_counter()
    m.reset_machine()
    m.set_pattern(MATCH_PATTERN)
    ends = m.feed(MATCH_TEXT)
    hits = m.hits()
    elapsed = time.perf_counter() - t0
    ref = _match_occurrences(MATCH_TEXT, MATCH_PATTERN)
    assert ends == ref and hits == len(ref)
    return m.cycles, elapsed, m.sim


def _match_baseline() -> None:
    assert _match_occurrences(MATCH_TEXT, MATCH_PATTERN)


MACHINES = {
    "scan/reduce (200 pushes + scan)": (_scan_workload, _scan_baseline),
    "histogram (400 samples)": (_hist_workload, _hist_baseline),
    "string match (500-char stream)": (_match_workload, _match_baseline),
}


def _measure(workload, baseline, rounds: int):
    out = {}
    for name in ALL_MODES:
        best = None
        for _ in range(rounds):
            cycles, elapsed, sim = workload(MODES[name])
            if best is None or elapsed < best[1]:
                best = (cycles, elapsed, sim)
        out[name] = best
    counts = {name: out[name][0] for name in ALL_MODES}
    assert len(set(counts.values())) == 1, (
        f"kernels disagree on cycle count: {counts}"
    )
    stats = out["compiled"][2].kernel_stats
    assert stats.fallback_procs == 0, "compiled run left interpreted fallbacks"
    assert stats.vectorized_cells == N_CELLS

    best_base = None
    for _ in range(max(rounds, 3) * 10):
        t0 = time.perf_counter()
        baseline()
        dt = time.perf_counter() - t0
        best_base = dt if best_base is None else min(best_base, dt)

    cycles = counts["event"]
    return {
        "cycles": cycles,
        "cps": {name: cycles / t for name, (_, t, _s) in out.items()},
        "wheel_speedup": out["event"][1] / out["event+wheel"][1],
        "compiled_speedup": out["event"][1] / out["compiled"][1],
        "cpu_baseline_sec": best_base,
        "kernel": stats.as_dict(),
    }


@pytest.fixture
def rounds(request) -> int:
    return 1 if request.config.getoption("--quick") else 3


@pytest.mark.parametrize("name", list(MACHINES))
def test_smem_machine_scenario(benchmark, name, rounds):
    workload, baseline = MACHINES[name]
    result = benchmark.pedantic(lambda: _measure(workload, baseline, rounds),
                                rounds=1, iterations=1)
    assert result["compiled_speedup"] > 1.0, (
        f"{name}: compiled backend slower than the interpreted kernel"
    )


def test_smem_suite_report(benchmark, rounds):
    def build():
        return {name: _measure(w, b, rounds)
                for name, (w, b) in MACHINES.items()}

    results = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        [name, r["cycles"], round(r["cps"]["event"]),
         round(r["cps"]["event+wheel"]), round(r["cps"]["compiled"]),
         f"{r['compiled_speedup']:.2f}x",
         f"{r['cpu_baseline_sec'] * 1e6:.0f}us"]
        for name, r in results.items()
    ]
    report(
        "S1: smart-memory suite — kernel modes and CPU software baselines",
        format_table(
            ["machine workload", "cycles", "event cyc/s", "wheel cyc/s",
             "compiled cyc/s", "compiled/event", "cpu baseline"],
            rows,
            title=f"{N_CELLS}-cell vectorized arrays; identical cycle counts "
                  f"asserted across modes; zero compiled fallbacks asserted; "
                  f"best of {rounds} (baselines best of {max(rounds, 3) * 10})",
        ),
    )


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main(
        [__file__, "-q", "-rA", "--benchmark-disable-gc",
         "--benchmark-min-rounds=1", *sys.argv[1:]]
    ))

#!/usr/bin/env python
"""Pipelined floating point + out-of-order issue, end to end.

The latency story of PR 9 in one runnable file:

1. build the coprocessor with the pipelined FP family (add/mul/FMA,
   multi-cycle II=1 pipelines) — once in order, once with the renaming
   issue engine,
2. run the same two instruction streams on both — an *independent* fadd
   burst (disjoint destinations, shared destination flag) and a
   *dependency-chained* FMA accumulator loop,
3. check both machines return bit-identical results, then compare the
   simulated cycle counts and the per-cause stall counters.

Run:  python examples/fp_pipeline.py
"""

import struct

from repro import Session, build_system
from repro.analysis import counters_for
from repro.isa import instructions as ins

N = 32


def f32(x: float) -> int:
    return struct.unpack("<I", struct.pack("<f", x))[0]


def to_f32(bits: int) -> float:
    return struct.unpack("<f", struct.pack("<I", bits))[0]


def run(ooo: bool):
    with Session(system=build_system(ooo=ooo, fp_units=True)) as s:
        a = s.put(f32(1.5))
        b = s.put(f32(0.25))

        # --- independent burst: N fadds over 8 rotating destinations ------
        dsts = s.alloc_many(8)
        for i in range(N):
            s.driver.execute(ins.fadd(dsts[i % 8], a, b))
        burst = [to_f32(s.read(d)) for d in dsts]
        burst_cycles = s.driver.cycles

        # --- dependency chain: acc := acc + a*b, N times ------------------
        acc = s.put(f32(0.0))
        for _ in range(N):
            s.driver.execute(ins.fmadd(acc, a, b))
        chain = to_f32(s.read(acc))
        chain_cycles = s.driver.cycles - burst_cycles

        counters = counters_for(s.system, s.driver)
        return burst, chain, burst_cycles, chain_cycles, counters


def main() -> None:
    results = {}
    for ooo in (False, True):
        results[ooo] = run(ooo)

    burst_io, chain_io, bc_io, cc_io, ctr_io = results[False]
    burst_oo, chain_oo, bc_oo, cc_oo, ctr_oo = results[True]

    assert burst_io == burst_oo == [1.75] * 8, "fadd burst result"
    assert chain_io == chain_oo == N * 1.5 * 0.25, "fmadd chain result"
    print(f"results identical on both machines: burst={burst_oo[0]}, "
          f"chain={chain_oo}")
    print()
    print(f"independent burst  in-order {bc_io:5d} cycles | "
          f"ooo {bc_oo:5d} cycles | speedup {bc_io / bc_oo:.2f}x")
    print(f"dependency chain   in-order {cc_io:5d} cycles | "
          f"ooo {cc_oo:5d} cycles | speedup {cc_io / cc_oo:.2f}x")
    print()
    print("why: the in-order machine serializes the burst on the shared")
    print("destination flag (WAW); renaming gives each op a fresh physical")
    print("flag register.  The chain is a true RAW dependency — no issue")
    print("order can beat it.")
    print()
    print("in-order counters:")
    print(ctr_io.issue_table())
    print("ooo counters:")
    print(ctr_oo.issue_table())


def build_for_lint():
    """Design-rule-check target: the system this example runs against."""
    return build_system(ooo=True, fp_units=True, lint="off")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The stateful case study: χ-sort on the smart-memory machine (§IV.B).

Demonstrates the paper's data-parallel argument live:

* sorting and selection on the ξ-sort functional unit through the full
  coprocessor (messages → RTM → unit dispatch → microcode → SIMD cells);
* the fixed-cycles-per-operation property: a split step costs the same at
  n = 8 and n = 256;
* the software comparison: the same algorithm on a "CPU" touches every
  element per step.

Run:  python examples/xisort_demo.py
"""

import random

from repro import Session, build_system
from repro.analysis import DEFAULT_CLOCKS
from repro.fu import default_registry
from repro.isa import Opcode
from repro.xisort import (
    DirectXiSortMachine,
    SoftwareXiSort,
    XiSortAccelerator,
    xisort_factory,
)


def full_framework_demo() -> None:
    print("=== χ-sort through the complete coprocessor ===")
    registry = default_registry()
    registry.register(Opcode.XISORT, xisort_factory(n_cells=32))
    session = Session(build_system(registry=registry))
    accel = XiSortAccelerator(session)

    values = random.Random(42).sample(range(10_000), 20)
    print("input :", values)
    print("sorted:", accel.sort(values))
    print("median:", accel.select(values, len(values) // 2))
    print("(duplicates are fine — keys are augmented with their position)")
    print("dup   :", accel.sort([5, 3, 5, 1, 3]))
    print(f"coprocessor cycles so far: {session.driver.cycles}")
    print()


def fixed_cycles_demo() -> None:
    print("=== the headline property: fixed cycles per operation ===")
    print(f"{'n cells':>8} {'split (cyc)':>12} {'pivot (cyc)':>12} {'sw ops/step':>12}")
    for n in (8, 32, 128, 256):
        machine = DirectXiSortMachine(n)
        values = random.Random(n).sample(range(1 << 20), max(2, n // 2))
        machine.reset_array()
        machine.load(values)
        t0 = machine.cycles
        pivot = machine.find_pivot()
        pivot_cycles = machine.cycles - t0
        t0 = machine.cycles
        machine.split(*pivot)
        split_cycles = machine.cycles - t0

        sw = SoftwareXiSort(values)
        sw_pivot = sw.find_pivot()
        before = sw.counter.ops
        sw.split(sw_pivot)
        sw_ops = sw.counter.ops - before

        print(f"{n:>8} {split_cycles:>12} {pivot_cycles:>12} {sw_ops:>12}")
    clocks = DEFAULT_CLOCKS
    print(f"\n(FPGA at {clocks.fpga_mhz:.0f} MHz vs CPU at {clocks.cpu_mhz:.0f} MHz "
          f"→ hardware wins once n × ops/element outruns the {clocks.clock_ratio:.0f}× "
          "clock gap)\n")


def main() -> None:
    full_framework_demo()
    fixed_cycles_demo()


def build_for_lint():
    """Design-rule-check target: the coprocessor with the χ-sort unit."""
    registry = default_registry()
    registry.register(Opcode.XISORT, xisort_factory(n_cells=32))
    return build_system(registry=registry, lint="off")


if __name__ == "__main__":
    main()

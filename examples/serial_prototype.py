#!/usr/bin/env python
"""The paper's actual experimental setup: the coprocessor behind a UART.

"Our implementation used a prototyping board which is intended for
experimentation and software development, but not for high speed.  In
particular, only a very slow connection from the FPGA board to the
processor was available" (§III).

This example runs the complete framework behind a **bit-level 8N1 UART**
(start/stop bits on a 1-bit wire, `repro.messages.uart`), does some real
work, and breaks down where the cycles go — reproducing the experience the
authors describe, then contrasting it with the integrated-fabric limit.

Run:  python examples/serial_prototype.py
"""

from repro.config import FrameworkConfig
from repro.hdl import Component, Simulator
from repro.host import CoprocessorDriver
from repro.isa import instructions as ins
from repro.messages.transceiver import HostPort, Receiver, Transmitter
from repro.messages.uart import BITS_PER_FRAME, BYTES_PER_WORD, UartLink
from repro.rtm.rtm import RegisterTransferMachine, _connect
from repro.system import build_system


class SerialPrototype(Component):
    """The development-board system: host ↔ UART wire ↔ framework."""

    def __init__(self, divisor: int = 4):
        super().__init__("proto")
        cfg = FrameworkConfig()
        self.config = cfg
        self.host = HostPort("host", parent=self)
        self.link = UartLink("link", divisor=divisor, parent=self)
        self.receiver = Receiver("receiver", parent=self)
        self.transmitter = Transmitter("transmitter", parent=self)
        self.rtm = RegisterTransferMachine("rtm", cfg, parent=self)
        _connect(self, self.host.tx, self.link.tx_down.inp)
        _connect(self, self.link.rx_down.out, self.receiver.chan)
        _connect(self, self.receiver.out, self.rtm.words_in)
        _connect(self, self.rtm.words_out, self.transmitter.inp)
        _connect(self, self.transmitter.chan, self.link.tx_up.inp)
        _connect(self, self.link.rx_up.out, self.host.rx)

    @property
    def busy(self):
        return bool(self.host.tx_pending or self.link.tx_down.busy
                    or self.link.tx_up.busy)


class _Built:
    def __init__(self, soc, sim):
        self.soc, self.sim, self.config = soc, sim, soc.config


def main() -> None:
    divisor = 4
    soc = SerialPrototype(divisor)
    sim = Simulator(soc)
    sim.reset()
    driver = CoprocessorDriver(_Built(soc, sim))

    word_time = BYTES_PER_WORD * BITS_PER_FRAME * divisor
    print(f"UART: 8N1, {divisor} clocks/bit → {word_time} cycles per 32-bit word")
    print(f"(at the paper's 50 MHz fabric: {50e6 / word_time / 1e3:.1f}k words/s)\n")

    # the workload: sum 1..16 on the coprocessor
    start = driver.cycles
    driver.write_reg(1, 0)
    for v in range(1, 17):
        driver.write_reg(2, v)
        driver.execute(ins.add(1, 1, 2, dst_flag=1))
    total = driver.read_reg(1, max_cycles=2_000_000)
    serial_cycles = driver.cycles - start
    assert total == sum(range(1, 17))

    # the same workload on an integrated fabric
    fast = CoprocessorDriver(build_system())
    start = fast.cycles
    fast.write_reg(1, 0)
    for v in range(1, 17):
        fast.write_reg(2, v)
        fast.execute(ins.add(1, 1, 2, dst_flag=1))
    assert fast.read_reg(1) == total
    fast_cycles = fast.cycles - start

    words_moved = 16 * (1 + 2) + 2 + 1 + 3 + 2   # frames in both directions
    wire_budget = words_moved * word_time

    print(f"sum(1..16) = {total}")
    print(f"serial prototype : {serial_cycles:>8} cycles "
          f"(wire-time lower bound ≈ {wire_budget})")
    print(f"integrated fabric: {fast_cycles:>8} cycles")
    print(f"link penalty     : {serial_cycles / fast_cycles:>8.1f}×")
    print("\n→ §III: 'this is not a limitation of the approach' — identical "
          "framework,\n  identical program, only the transceiver changed.")


def build_for_lint():
    """Design-rule-check target: the hand-wired UART prototype itself."""
    return SerialPrototype(divisor=4)


if __name__ == "__main__":
    main()

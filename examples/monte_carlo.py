#!/usr/bin/env python
"""Composing stateful units: a Monte-Carlo π estimator on the coprocessor.

Uses three functional units together — the paper's §IV.B stateful examples
(a pseudorandom number generator and a histogram calculator) plus the
stateless arithmetic unit — to estimate π by the classic quarter-circle
method, with all the per-sample work on the coprocessor:

1. the PRNG unit produces x and y coordinates (no host entropy needed),
2. the arithmetic unit compares x² + y² against the radius — here the
   square is computed host-side for brevity; the comparison flag comes from
   the coprocessor's CMP,
3. the histogram unit counts hits/misses in two bins.

The host's only steady-state traffic is the dispatch stream — results stay
on-device until the end, which is exactly the usage pattern the framework
is designed for.

Run:  python examples/monte_carlo.py
"""

from repro import SystemBuilder
from repro.fu.stateful import (
    HIST_CLEAR,
    HIST_READ,
    HIST_SAMPLE,
    PRNG_NEXT,
    PRNG_SEED,
    histogram_factory,
    prng_factory,
)
from repro.host import CoprocessorDriver
from repro.isa import FLAG_CARRY, instructions as ins

PRNG, HIST = 0x31, 0x30
SAMPLES = 300
SCALE = 1 << 15                       # coordinates in [0, 2^15)


def main() -> None:
    built = (
        SystemBuilder()
        .with_config(n_regs=16)
        .with_unit(HIST, histogram_factory(n_bins=2))
        .with_unit(PRNG, prng_factory())
        .build()
    )
    d = CoprocessorDriver(built)

    R_X, R_Y, R_RR, R_LIMIT, R_BIN = 1, 2, 3, 4, 5

    d.write_reg(R_LIMIT, SCALE * SCALE)
    d.write_reg(14, 2024)
    d.execute(ins.dispatch(PRNG, PRNG_SEED, src1=14))
    d.execute(ins.dispatch(HIST, HIST_CLEAR))

    inside = 0
    for _ in range(SAMPLES):
        # two fresh pseudorandom words, truncated to 15-bit coordinates
        d.execute(ins.dispatch(PRNG, PRNG_NEXT, dst1=R_X))
        d.execute(ins.dispatch(PRNG, PRNG_NEXT, dst1=R_Y))
        x = d.read_reg(R_X) % SCALE
        y = d.read_reg(R_Y) % SCALE
        # ship x²+y² back and let the coprocessor do the compare
        d.write_reg(R_RR, x * x + y * y)
        d.execute(ins.cmp(R_RR, R_LIMIT, dst_flag=1))
        hit = 0 if d.read_flags(1) & FLAG_CARRY else 1   # rr < limit ⇒ borrow
        d.write_reg(R_BIN, hit)
        d.execute(ins.dispatch(HIST, HIST_SAMPLE, src1=R_BIN))
        inside += hit

    d.write_reg(14, 1)
    d.execute(ins.dispatch(HIST, HIST_READ, src1=14, dst1=6))
    counted = d.read_reg(6)
    assert counted == inside, "on-device histogram must agree with the host tally"

    pi = 4.0 * counted / SAMPLES
    print(f"samples              : {SAMPLES}")
    print(f"inside quarter circle: {counted}")
    print(f"π estimate           : {pi:.3f}")
    print(f"coprocessor cycles   : {d.cycles}")


def build_for_lint():
    """Design-rule-check target: the three-unit stateful composition."""
    return (
        SystemBuilder()
        .with_config(n_regs=16)
        .with_unit(HIST, histogram_factory(n_bins=2))
        .with_unit(PRNG, prng_factory())
        .with_lint("off")
        .build()
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Asynchronous host engine: overlap round trips with futures and pipelines.

The paper's host "sends one or more packets of data ... and [the
controller] returns the final results" (§II) — but a stop-and-wait host
pays the full link round trip for every result.  The host engine submits
requests as *futures*, tags each GET, routes completions back by tag, and
keeps a configurable window of requests in flight, so dependent-free
operations share the link latency instead of queueing behind it.

This example runs the same batch of computations three ways on a serial
bridge class link (latency-dominated, where windowing matters most):

1. synchronous, one blocking round trip per call,
2. explicit futures via ``compute_async``,
3. a ``session.pipeline()`` block that defers all waits to its exit,

then prints the cycle counts and the engine's own counters.

Run:  python examples/async_pipeline.py
"""

from repro import FrameworkConfig, Session, build_system
from repro.analysis import counters_for
from repro.isa import ArithOp
from repro.messages import ChannelSpec

# a USB-UART bridge class link: deep pipe, decent streaming bandwidth
SERIAL_BRIDGE = ChannelSpec("serial-bridge", latency_cycles=768, cycles_per_word=12)

N = 8
CONFIG = FrameworkConfig(n_regs=64)   # 3 registers parked per in-flight call


def new_session(window: int) -> Session:
    return Session(build_system(CONFIG, channel=SERIAL_BRIDGE, window=window))


def main() -> None:
    # --- 1. stop-and-wait baseline: every compute blocks ---------------------
    s = new_session(window=1)
    start = s.driver.cycles
    sync_results = [s.compute(ArithOp.ADD, i, 100) for i in range(N)]
    sync_cycles = s.driver.cycles - start
    print(f"synchronous      : {sync_cycles:6d} cycles  results={sync_results}")

    # --- 2. explicit futures: submit first, resolve later ---------------------
    s = new_session(window=8)
    start = s.driver.cycles
    futures = [s.compute_async(ArithOp.ADD, i, 100) for i in range(N)]
    async_results = [f.result() for f in futures]
    async_cycles = s.driver.cycles - start
    print(f"compute_async    : {async_cycles:6d} cycles  results={async_results}")

    # --- 3. pipeline block: waits deferred to exit ----------------------------
    s = new_session(window=8)
    start = s.driver.cycles
    with s.pipeline() as p:
        batch = [p.compute(ArithOp.ADD, i, 100) for i in range(N)]
    piped_results = [f.result() for f in batch]   # already resolved: instant
    piped_cycles = s.driver.cycles - start
    print(f"session.pipeline : {piped_cycles:6d} cycles  results={piped_results}")

    assert sync_results == async_results == piped_results
    print(f"\nspeedup from windowing: {sync_cycles / piped_cycles:.2f}x")

    # --- the engine's own accounting ------------------------------------------
    print()
    print(counters_for(s.system, s.driver).engine_table())


def build_for_lint():
    """Design-rule-check target: the windowed serial-bridge system."""
    return build_system(CONFIG, channel=SERIAL_BRIDGE, window=8, lint="off")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Defining your own functional unit — the framework's whole point.

The paper: "The interface framework allows several functional units to be
incorporated on the FPGA ... the designer has complete freedom in the
internal structure of a functional unit" (§IV), as long as it speaks the
dispatch/result protocol.  The skeletons of thesis §2.3.4 take care of the
protocol; you supply the datapath.

This example builds a CRC-32 unit two ways — area-optimised (one op in
flight) and fully pipelined — registers both on one coprocessor, and
offloads a message checksum, comparing against Python's binascii.

Run:  python examples/custom_functional_unit.py
"""

import binascii

from repro import SystemBuilder
from repro.fu import AreaOptimizedFU, FuComputation, PipelinedFunctionalUnit
from repro.host import CoprocessorDriver
from repro.isa import instructions as ins

CRC_POLY = 0xEDB88320


def _crc32_step(crc: int, word: int) -> int:
    """Consume one 32-bit word into a running CRC-32 (bitwise datapath)."""
    crc ^= word
    for _ in range(32):
        crc = (crc >> 1) ^ (CRC_POLY if crc & 1 else 0)
    return crc


class Crc32Unit(AreaOptimizedFU):
    """op_a = running CRC, op_b = next data word → new CRC.

    A real implementation is an unrolled XOR network; 32 'execute' cycles
    model the bit-serial variant a frugal designer might synthesise.
    """

    def __init__(self, name, word_bits, parent=None):
        super().__init__(name, word_bits, parent, execute_cycles=32)

    def compute(self, s):
        return FuComputation(data1=_crc32_step(s.op_a, s.op_b), flags=0)


class Crc32PipelinedUnit(PipelinedFunctionalUnit):
    """The same datapath, unrolled into a 4-stage pipeline (Fig. 2.19 style).

    This unit writes no flags, and must say so: the decoder locks exactly
    the destinations the ``write_profile`` declares, and the write arbiter
    releases exactly what the unit writes back — a profile/compute mismatch
    deadlocks the scoreboard (the framework's one hard contract).
    """

    write_profile = staticmethod(lambda variety: (True, False, False))

    def __init__(self, name, word_bits, parent=None):
        super().__init__(name, word_bits, parent, pipeline_depth=4)

    def compute(self, s):
        return FuComputation(data1=_crc32_step(s.op_a, s.op_b))


CRC_AREA = 0x20       # function codes for the new units
CRC_PIPE = 0x21


def crc32_on_coprocessor(driver: CoprocessorDriver, data: bytes, unit: int) -> int:
    """Stream a buffer through the CRC unit, one 32-bit word per instruction."""
    assert len(data) % 4 == 0, "pad the buffer to a word multiple"
    R_CRC, R_WORD = 1, 2
    driver.write_reg(R_CRC, 0xFFFF_FFFF)          # CRC-32 init
    for i in range(0, len(data), 4):
        word = int.from_bytes(data[i : i + 4], "little")
        driver.write_reg(R_WORD, word)
        # the scoreboard serialises the chain: each step reads the last CRC
        driver.execute(ins.dispatch(unit, 0, dst1=R_CRC, src1=R_CRC, src2=R_WORD,
                                    dst_flag=1))
    return driver.read_reg(R_CRC) ^ 0xFFFF_FFFF  # CRC-32 final xor


def main() -> None:
    built = (
        SystemBuilder()
        .with_unit(CRC_AREA, lambda n, w, p: Crc32Unit(n, w, p))
        .with_unit(CRC_PIPE, lambda n, w, p: Crc32PipelinedUnit(n, w, p))
        .build()
    )
    driver = CoprocessorDriver(built)

    message = b"A framework for FPGA functional units in HPC ... "
    message += b"\x00" * (-len(message) % 4)

    expected = binascii.crc32(message) & 0xFFFF_FFFF

    start = driver.cycles
    got_area = crc32_on_coprocessor(driver, message, CRC_AREA)
    area_cycles = driver.cycles - start

    start = driver.cycles
    got_pipe = crc32_on_coprocessor(driver, message, CRC_PIPE)
    pipe_cycles = driver.cycles - start

    print(f"buffer bytes        : {len(message)}")
    print(f"binascii.crc32      : {expected:#010x}")
    print(f"area-optimised unit : {got_area:#010x}  ({area_cycles} cycles)")
    print(f"pipelined unit      : {got_pipe:#010x}  ({pipe_cycles} cycles)")
    assert got_area == got_pipe == expected
    print("checksums agree ✓")


def build_for_lint():
    """Design-rule-check target: both custom CRC units on one coprocessor."""
    return (
        SystemBuilder()
        .with_unit(CRC_AREA, lambda n, w, p: Crc32Unit(n, w, p))
        .with_unit(CRC_PIPE, lambda n, w, p: Crc32PipelinedUnit(n, w, p))
        .with_lint("off")
        .build()
    )


if __name__ == "__main__":
    main()

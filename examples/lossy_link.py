#!/usr/bin/env python
"""Lossy links: fault injection and the reliable host↔RTM message layer.

A real FPGA functional unit hangs off a real cable — and "the communication
between the host computer and the FPGA" (§II) is only as trustworthy as
that cable.  This example turns on the framework's reliability layer
(sequence-numbered, checksummed frames with NACK + retransmission) and then
abuses the link on purpose:

1. a clean run for reference,
2. the same workload over a link that drops 1% of words and bit-flips
   another 1% in each direction — results must be identical, with the
   recovery traffic visible in the counters,
3. a link that dies mid-workload — the host gives up loudly with
   ``LinkDownError`` instead of hanging forever.

Run:  python examples/lossy_link.py
"""

from repro.analysis import counters_for
from repro.host import CoprocessorDriver, LinkDownError
from repro.isa import instructions as ins
from repro.messages import FAST_BUS, FaultSpec
from repro.system import build_system

N_OPS = 25


def run_workload(drv) -> list[int]:
    results = []
    for i in range(N_OPS):
        drv.write_reg(1, i)
        drv.write_reg(2, 3 * i)
        drv.execute(ins.add(3, 1, 2))
        results.append(drv.read_reg(3))
    drv.run_until_quiet()
    return results


def main() -> None:
    # --- 1. clean reference over a reliable link -----------------------------
    clean = CoprocessorDriver(build_system(channel=FAST_BUS, reliable=True))
    reference = run_workload(clean)
    print(f"clean link:  {N_OPS} ops in {clean.cycles} cycles, "
          f"{clean.engine.stats.retransmits} retransmits")

    # --- 2. the same workload over a 1%-drop, 1%-flip link -------------------
    lossy = CoprocessorDriver(build_system(
        channel=FAST_BUS,
        reliable=True,
        faults=FaultSpec(seed=31, drop_rate=0.01, flip_rate=0.01),
        upstream_faults=FaultSpec(seed=32, drop_rate=0.01, flip_rate=0.01),
    ))
    lossy_results = run_workload(lossy)
    assert lossy_results == reference, "reliability layer must hide the loss"
    stats = lossy.engine.stats
    print(f"lossy link:  {N_OPS} ops in {lossy.cycles} cycles, "
          f"{stats.retransmits} retransmits, {stats.nacks} NACKs, "
          f"results identical")
    print()
    print(counters_for(lossy.system, lossy).link_table())

    # --- 3. a link that falls off the bus ------------------------------------
    dying = CoprocessorDriver(build_system(
        channel=FAST_BUS,
        reliable=True,
        faults=FaultSpec(seed=7, dead_after_words=40),
    ))
    print()
    try:
        run_workload(dying)
    except LinkDownError as err:
        print(f"dead link:   gave up at cycle {dying.cycles}: {err}")
    else:
        raise AssertionError("a dead link must raise LinkDownError")


def build_for_lint():
    """Design-rule-check target: reliable framing plus fault injectors."""
    return build_system(
        channel=FAST_BUS,
        reliable=True,
        faults=FaultSpec(seed=31, drop_rate=0.01, flip_rate=0.01),
        upstream_faults=FaultSpec(seed=32, drop_rate=0.01, flip_rate=0.01),
        lint="off",
    )


if __name__ == "__main__":
    main()

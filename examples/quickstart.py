#!/usr/bin/env python
"""Quickstart: build a coprocessor, run accelerated operations, read results.

This walks the paper's workflow (§II) end to end in ~40 lines:

1. configure the interface framework (register-file size parameters,
   transceiver/link selection),
2. talk to the coprocessor through the session API — write registers,
   dispatch instructions to the arithmetic and logic units, read results,
3. observe cost in coprocessor clock cycles.

Run:  python examples/quickstart.py
"""

from repro import FrameworkConfig, Session, build_system
from repro.isa import ArithOp, LogicOp
from repro.messages import INTEGRATED

def main() -> None:
    # --- configure the framework ("the VHDL generics") -----------------------
    config = FrameworkConfig(word_bits=32, n_regs=16, n_flag_regs=8)
    system = build_system(config, channel=INTEGRATED)

    with Session(system) as s:
        # --- scalar operations on the arithmetic unit (Table 3.1) -----------
        print("20 + 22        =", s.compute(ArithOp.ADD, 20, 22))
        print("100 - 58       =", s.compute(ArithOp.SUB, 100, 58))
        print("0xF0 XOR 0xFF  =", hex(s.compute(LogicOp.XOR, 0xF0, 0xFF)))

        # --- registers stay on the coprocessor between operations ------------
        a = s.put(1_000_000)            # load once...
        b = s.put(2_000_000)
        total = s.arith(ArithOp.ADD, a, b)   # ...operate on-device
        doubled = s.arith(ArithOp.ADD, total, total)
        print("on-device chain =", s.read(doubled))  # one readback

        # --- multi-word (128-bit) arithmetic via ADC carry chains ------------
        x = 0xDEAD_BEEF_0123_4567_89AB_CDEF_0000_FFFF
        y = 0x0000_1111_2222_3333_4444_5555_6666_7777
        rx = s.write_wide(x, limbs=4)
        ry = s.write_wide(y, limbs=4)
        out, carry_flag = s.add_wide(rx, ry)
        print("128-bit add ok  =", s.read_wide(out) == (x + y) % (1 << 128))

        print("coprocessor cycles used:", s.driver.cycles)


def build_for_lint():
    """Design-rule-check target: the system this example runs against."""
    config = FrameworkConfig(word_bits=32, n_regs=16, n_flag_regs=8)
    return build_system(config, channel=INTEGRATED, lint="off")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The smart-memory kit suite: scan, histogram and string match (§IV).

The ξ-sort case study generalizes: any array of identical SIMD cells
under a fold tree, driven by a microcoded controller, drops into the
framework as a functional unit.  This demo runs the three kit-native
machines (:mod:`repro.smem`) through the complete coprocessor — host
session → messages → RTM dispatch → microcode → SIMD cells — and shows
the property that justifies the hardware: every operation costs a fixed
number of cycles regardless of how many cells participate.

Run:  python examples/smem_suite.py
"""

from repro import Session, build_system
from repro.fu.registry import smem_suite_registry
from repro.smem import (
    DirectHistMachine,
    DirectMatchMachine,
    DirectScanMachine,
    HistogramAccelerator,
    MatchAccelerator,
    ScanAccelerator,
)


def full_framework_demo() -> None:
    print("=== the suite through the complete coprocessor ===")
    session = Session(build_system(registry=smem_suite_registry(n_cells=64)))

    scan = ScanAccelerator(session)
    scan.reset()
    scan.load([3, 1, 4, 1, 5, 9, 2, 6])
    print("scan  : pushed [3,1,4,1,5,9,2,6]")
    print(f"        total={scan.total()} min={scan.minimum()} "
          f"max={scan.maximum()}")
    print(f"        prefix_sum → {scan.prefix_sum()}; "
          f"column now {[scan.read_at(i) for i in range(8)]}")

    hist = HistogramAccelerator(session)
    hist.reset()
    hist.load([1, 2, 2, 5, 5, 5, 9, 9])
    print("hist  : sampled [1,2,2,5,5,5,9,9]")
    print(f"        total={hist.total()} peak={hist.peak()} "
          f"nonzero_bins={hist.nonzero_bins()}")

    match = MatchAccelerator(session)
    match.set_pattern(b"aba")
    ends = match.feed(b"abacabababa")
    print("match : pattern 'aba' over 'abacabababa'")
    print(f"        match ends at {ends} (overlaps included), "
          f"hits={match.hits()}")
    print(f"coprocessor cycles so far: {session.driver.cycles}\n")


def fixed_cycles_demo() -> None:
    print("=== fixed cycles per operation, at any column width ===")
    print(f"{'n cells':>8} {'scan (cyc)':>11} {'peak (cyc)':>11} "
          f"{'step (cyc)':>11}")
    for n in (8, 64, 256):
        scan = DirectScanMachine(n)
        scan.load([7] * (n // 2))
        t0 = scan.cycles
        scan.prefix_sum()
        scan_cyc = scan.cycles - t0

        hist = DirectHistMachine(n)
        hist.load([3, 3, 5])
        t0 = hist.cycles
        hist.peak()
        peak_cyc = hist.cycles - t0

        match = DirectMatchMachine(n)
        match.set_pattern(b"ab")
        t0 = match.cycles
        match.step(ord("a"))
        step_cyc = match.cycles - t0

        print(f"{n:>8} {scan_cyc:>11} {peak_cyc:>11} {step_cyc:>11}")
    print("\n(a CPU pays O(n) per scan and per histogram pass; the column "
          "pays the same few cycles at every width)\n")


def main() -> None:
    full_framework_demo()
    fixed_cycles_demo()


def build_for_lint():
    """Design-rule-check target: the coprocessor with the full suite."""
    return build_system(registry=smem_suite_registry(n_cells=32), lint="off")


if __name__ == "__main__":
    main()

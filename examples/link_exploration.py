#!/usr/bin/env python
"""Portability across hosts and links — the framework's design goal (§I).

"One of the strengths of the framework presented here is its flexibility:
it can work with a broad spectrum of microcontrollers and interconnection
systems."  This example runs the *same* workload over three link classes —
the paper's slow prototyping connection, a fast external bus and a
processor-integrated fabric — and shows where each system's time goes,
plus a waveform (VCD) dump for circuit-level inspection.

Run:  python examples/link_exploration.py
"""

import io

from repro.analysis import (
    DEFAULT_CLOCKS,
    INTEGRATED_LINK,
    PCIE_CLASS_LINK,
    SERIAL_PROTOTYPE_LINK,
)
from repro.hdl import VcdWriter
from repro.host import CoprocessorDriver
from repro.isa import instructions as ins
from repro.messages import FAST_BUS, INTEGRATED, SLOW_PROTOTYPE
from repro.system import build_system


def accumulate(driver: CoprocessorDriver, values) -> tuple[int, int]:
    """Sum a vector on the coprocessor; returns (result, cycles)."""
    start = driver.cycles
    driver.write_reg(1, 0)             # accumulator
    for v in values:
        driver.write_reg(2, v)
        driver.execute(ins.add(1, 1, 2, dst_flag=1))
    result = driver.read_reg(1, max_cycles=20_000_000)
    return result, driver.cycles - start


def cycle_accurate_comparison() -> None:
    print("=== same workload, three links (cycle-accurate) ===")
    values = list(range(1, 33))
    expected = sum(values)
    print(f"{'link':>16} {'cycles':>10} {'vs integrated':>14}")
    base = None
    for channel in (INTEGRATED, FAST_BUS, SLOW_PROTOTYPE):
        driver = CoprocessorDriver(build_system(channel=channel))
        result, cycles = accumulate(driver, values)
        assert result == expected
        base = base or cycles
        print(f"{channel.name:>16} {cycles:>10} {cycles / base:>13.1f}x")
    print()


def real_unit_model() -> None:
    print("=== the same transfer in real units (analytic link models) ===")
    clocks = DEFAULT_CLOCKS
    n_words = 3 * 32 + 2 * 32 + 4      # frames for the workload above
    compute_us = clocks.fpga_seconds(32 * 2) * 1e6
    print(f"{'link':>16} {'transfer':>12} {'compute':>10}")
    for link in (SERIAL_PROTOTYPE_LINK, PCIE_CLASS_LINK, INTEGRATED_LINK):
        us = link.transfer_seconds(n_words) * 1e6
        print(f"{link.name:>16} {us:>10.1f}µs {compute_us:>8.2f}µs")
    print("\nthe prototyping serial link is pure overhead; integrated fabrics\n"
          "make the FPGA clock the limit — exactly the paper's §III argument\n")


def waveform_dump() -> None:
    print("=== VCD waveform capture (view with GTKWave) ===")
    built = build_system()
    rtm = built.soc.rtm
    signals = [
        rtm.dispatcher.stalled,
        rtm.dispatcher._advancing,
        rtm.execution.halted,
        rtm.units[0].dp.dispatch,
        rtm.units[0].dp.idle,
        rtm.units[0].rp.ready,
        rtm.units[0].rp.ack,
    ]
    buf = io.StringIO()
    VcdWriter(built.sim, buf, signals)
    driver = CoprocessorDriver(built)
    driver.write_reg(1, 20)
    driver.write_reg(2, 22)
    driver.execute(ins.add(3, 1, 2, dst_flag=1))
    driver.read_reg(3)
    path = "xisort_framework_trace.vcd"
    with open(path, "w") as fh:
        fh.write(buf.getvalue())
    print(f"wrote {path} ({len(buf.getvalue())} bytes, "
          f"{len(signals)} signals, {built.sim.now} cycles)\n")


def main() -> None:
    cycle_accurate_comparison()
    real_unit_model()
    waveform_dump()


def build_for_lint():
    """Design-rule-check target: the slowest link (deepest transceivers)."""
    return build_system(channel=SLOW_PROTOTYPE, lint="off")


if __name__ == "__main__":
    main()
